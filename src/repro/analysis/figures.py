"""Figure regeneration: declarative curve specs, matplotlib optional.

A :class:`FigureSpec` is a plain description of one figure — title, axis
labels and a set of named curves — built from stored raw samples with **no
re-simulation** (:func:`delay_coverage_figure` produces the paper's
Fig. 3/4-style delay-vs-coverage CDF curves; :func:`timeseries_figure` plots
stored counter curves such as variance-by-connection-rank).

Rendering is two-tier:

* with matplotlib installed (the optional ``repro[plots]`` extra),
  :func:`render_figure` writes PNG/SVG files;
* always, :func:`figure_table` renders the same curves as a markdown table
  (shared x-grid, one column per curve), so reports degrade gracefully when
  matplotlib is absent — the environment this repository is developed in.

Everything here is deterministic: fixed grids, fixed precision, a fixed
categorical palette assigned to curves in order (never cycled — past eight
curves the remainder is listed in the caption and carried by the fallback
table, which has no series limit).
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.analysis.stats import Ecdf

#: Categorical palette (validated light-mode hex slots, assigned in fixed
#: order).  Taken from the reference data-viz palette: adjacent-pair
#: colorblind-safe and above the normal-vision separation floor.
PALETTE = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Maximum curves drawn in one rendered figure (palette slots are assigned in
#: fixed order and never cycled; the markdown fallback table has no limit).
MAX_CURVES = len(PALETTE)

_SURFACE = "#fcfcfb"
_GRID = "#e5e4e0"
_TEXT = "#0b0b0b"
_TEXT_SECONDARY = "#52514e"


@dataclass(frozen=True)
class Curve:
    """One named curve: ``(x, y)`` points in drawing order."""

    label: str
    points: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class FigureSpec:
    """A declarative, render-backend-independent figure description.

    Attributes:
        slug: file stem for rendered artifacts (``"fig3-delay-coverage"``).
        title: figure title.
        xlabel / ylabel: axis labels (units included).
        curves: the named curves, in legend order.
        caption: optional caption printed under the figure in reports.
    """

    slug: str
    title: str
    xlabel: str
    ylabel: str
    curves: tuple[Curve, ...]
    caption: str = ""


def matplotlib_available() -> bool:
    """Whether the optional plotting backend (``repro[plots]``) is importable."""
    return importlib.util.find_spec("matplotlib") is not None


def delay_coverage_figure(
    delays_by_label: Mapping[str, Sequence[float]],
    *,
    slug: str,
    title: str,
    caption: str = "",
    resolution: int = 40,
    x_unit: str = "ms",
    x_scale: float = 1e3,
) -> Optional[FigureSpec]:
    """Delay-vs-coverage CDF curves (the shape of the paper's Fig. 3/4).

    Every label's empirical CDF is evaluated on one shared delay grid
    spanning the pooled sample range, so the curves (and the fallback table)
    are directly comparable.  Labels without samples are skipped; returns
    None when no label has any.

    Args:
        delays_by_label: raw delay samples (seconds) per curve label.
        slug / title / caption: spec metadata.
        resolution: points on the shared grid.
        x_unit: displayed x-axis unit.
        x_scale: multiplier from sample units to displayed units.
    """
    populated = {
        label: list(values) for label, values in delays_by_label.items() if len(values)
    }
    if not populated:
        return None
    ecdfs = {label: Ecdf(values) for label, values in populated.items()}
    low = min(ecdf.min for ecdf in ecdfs.values())
    high = max(ecdf.max for ecdf in ecdfs.values())
    if resolution <= 1:
        raise ValueError(f"resolution must be at least 2, got {resolution}")
    step = (high - low) / (resolution - 1)
    grid = [low + index * step for index in range(resolution)]
    curves = tuple(
        Curve(
            label=label,
            points=tuple((x * x_scale, fraction) for x, fraction in ecdf.curve_on(grid)),
        )
        for label, ecdf in ecdfs.items()
    )
    return FigureSpec(
        slug=slug,
        title=title,
        xlabel=f"propagation delay ({x_unit})",
        ylabel="fraction of receivers covered",
        curves=curves,
        caption=caption,
    )


def timeseries_figure(
    points_by_label: Mapping[str, Sequence[tuple[float, float]]],
    *,
    slug: str,
    title: str,
    xlabel: str,
    ylabel: str,
    caption: str = "",
    y_scale: float = 1.0,
) -> Optional[FigureSpec]:
    """Stored counter curves (e.g. variance of Δt by connection rank)."""
    curves = tuple(
        Curve(label=label, points=tuple((x, y * y_scale) for x, y in points))
        for label, points in points_by_label.items()
        if len(points)
    )
    if not curves:
        return None
    return FigureSpec(
        slug=slug, title=title, xlabel=xlabel, ylabel=ylabel,
        curves=curves, caption=caption,
    )


def render_figure(
    spec: FigureSpec,
    out_dir: Path,
    *,
    formats: Sequence[str] = ("png", "svg"),
) -> list[Path]:
    """Render one spec as image files; returns [] when matplotlib is absent.

    At most :data:`MAX_CURVES` curves are drawn (palette slots are assigned
    in order, never cycled); any remainder is named in an on-figure note and
    still appears in the :func:`figure_table` fallback.
    """
    if not matplotlib_available():
        return []
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    drawn = spec.curves[:MAX_CURVES]
    omitted = spec.curves[MAX_CURVES:]
    fig, ax = plt.subplots(figsize=(7.2, 4.3), dpi=150)
    fig.patch.set_facecolor(_SURFACE)
    ax.set_facecolor(_SURFACE)
    for index, curve in enumerate(drawn):
        xs = [x for x, _ in curve.points]
        ys = [y for _, y in curve.points]
        ax.plot(xs, ys, color=PALETTE[index], linewidth=2.0, label=curve.label)
    ax.set_title(spec.title, color=_TEXT, fontsize=11)
    ax.set_xlabel(spec.xlabel, color=_TEXT_SECONDARY, fontsize=9)
    ax.set_ylabel(spec.ylabel, color=_TEXT_SECONDARY, fontsize=9)
    ax.grid(color=_GRID, linewidth=0.8)
    ax.tick_params(colors=_TEXT_SECONDARY, labelsize=8)
    for side in ("top", "right"):
        ax.spines[side].set_visible(False)
    for side in ("left", "bottom"):
        ax.spines[side].set_color(_GRID)
    if len(drawn) > 1:
        ax.legend(frameon=False, fontsize=8, labelcolor=_TEXT)
    if omitted:
        ax.annotate(
            f"(+{len(omitted)} series omitted — see the table view)",
            xy=(0.99, 0.01), xycoords="axes fraction",
            ha="right", va="bottom", fontsize=7, color=_TEXT_SECONDARY,
        )
    fig.tight_layout()
    out_dir.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for fmt in formats:
        path = out_dir / f"{spec.slug}.{fmt}"
        # Strip volatile metadata (the SVG writer stamps a creation date by
        # default) so repeated renders of the same run stay comparable.
        metadata = {"Date": None} if fmt == "svg" else None
        fig.savefig(path, format=fmt, facecolor=_SURFACE, metadata=metadata)
        written.append(path)
    plt.close(fig)
    return written


def figure_table(spec: FigureSpec, *, max_rows: int = 21) -> str:
    """The figure's curves as one markdown table (the no-matplotlib view).

    The table is ``x | curve1 | curve2 | ...`` over the sorted union of the
    curves' x values (a blank cell where a curve has no point); long grids
    are downsampled to at most ``max_rows`` evenly spaced rows (first and
    last always included).
    """
    # Imported here: the markdown-table renderer lives in the experiments
    # layer, which the heavyweight analysis modules sit above (samples/stats
    # stay leaves; see the package docstring).
    from repro.experiments.reporting import format_markdown_table

    if not spec.curves:
        return "(no data)"
    xs = sorted({x for curve in spec.curves for x, _ in curve.points})
    columns = {curve.label: dict(curve.points) for curve in spec.curves}
    indices = list(range(len(xs)))
    if len(indices) > max_rows:
        stride = (len(indices) - 1) / (max_rows - 1)
        indices = sorted({round(i * stride) for i in range(max_rows)})
    rows = []
    for index in indices:
        x = xs[index]
        row: list[object] = [f"{x:.4g}"]
        for curve in spec.curves:
            value = columns[curve.label].get(x)
            row.append("" if value is None else f"{value:.4g}")
        rows.append(row)
    header = [spec.xlabel] + [curve.label for curve in spec.curves]
    return format_markdown_table(header, rows)
