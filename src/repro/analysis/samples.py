"""Raw-sample capture: the ``samples`` field of the experiment envelope.

The paper's claims are distributional — Fig. 3/4 are propagation-delay curves
and BCBPT's win lives in the CDF tail — so scalar summaries are not enough to
regenerate a figure from a stored run.  :class:`SampleLog` is the versioned
structure experiments use to persist the raw material:

* **sample series** — flat lists of measurements (Δt samples, block delays),
  keyed by ``(label, metric, seed)`` so per-seed provenance survives and
  bootstrap confidence intervals over seeds stay possible after the fact;
* **time series** — named ``(x, y)`` counter curves (coverage per block,
  variance per connection rank).

Both round-trip losslessly through JSON (NaN included) via
:meth:`SampleLog.to_dict` / :meth:`SampleLog.from_dict`, and the envelope
stores exactly that plain form, so this module stays importable from every
layer (standard library only — no numpy, no experiments imports).

Determinism: series and points are stored in insertion order, experiments fill
the log from grid results merged in submission order, and
:meth:`SampleLog.merge` concatenates per key — so the persisted samples are
identical for every worker count, like every other aggregate in the
repository.

:class:`BlockArrivalRecorder` is the standard block-plane observer: it
attaches to ``BitcoinNode.block_listeners`` and records, per block hash, when
each node accepted the block — the raw material for block-propagation delay
series (used by the relay-comparison experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

#: Schema version of the ``samples`` envelope field, bumped on layout changes.
SAMPLES_SCHEMA_VERSION = 1


@dataclass
class SampleSeries:
    """One flat series of raw measurements.

    Attributes:
        label: sweep-point label (``"bcbpt"``, ``"compact/bcbpt"``,
            ``"bitcoin/heavy"`` ...), matching the envelope's summary keys.
        metric: measurement name (``"delay_s"``, ``"block_delay_s"``, ...).
        values: the raw samples, in capture order.
        unit: unit annotation (``"s"``, ``"fraction"``, ...), informational.
        seed: master seed the series was measured under, or None for series
            already pooled across seeds.
    """

    label: str
    metric: str
    values: list[float] = field(default_factory=list)
    unit: str = ""
    seed: Optional[int] = None


@dataclass
class TimeSeries:
    """One named ``(x, y)`` counter curve.

    Attributes:
        label: sweep-point label (as in :class:`SampleSeries`).
        metric: curve name (``"rank_variance_s2"``, ``"block_coverage"``, ...).
        points: ``(x, y)`` pairs in capture order.
        unit: unit of the ``y`` values, informational.
    """

    label: str
    metric: str
    points: list[tuple[float, float]] = field(default_factory=list)
    unit: str = ""


class SampleLog:
    """Ordered collection of raw sample series and time-series counters."""

    def __init__(self) -> None:
        self._series: dict[tuple[str, str, Optional[int]], SampleSeries] = {}
        self._timeseries: dict[tuple[str, str], TimeSeries] = {}

    # ------------------------------------------------------------- recording
    def add(
        self, label: str, metric: str, value: float, *, seed: Optional[int] = None, unit: str = ""
    ) -> None:
        """Append one sample to the ``(label, metric, seed)`` series."""
        self.extend(label, metric, (value,), seed=seed, unit=unit)

    def extend(
        self,
        label: str,
        metric: str,
        values: Iterable[float],
        *,
        seed: Optional[int] = None,
        unit: str = "",
    ) -> None:
        """Append samples to the ``(label, metric, seed)`` series."""
        key = (label, metric, seed)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = SampleSeries(
                label=label, metric=metric, unit=unit, seed=seed
            )
        series.values.extend(float(value) for value in values)

    def add_per_seed(
        self,
        label: str,
        metric: str,
        per_seed: Mapping[int, Iterable[float]],
        *,
        unit: str = "",
    ) -> None:
        """Record one series per master seed, in the mapping's order.

        The grid executor merges seed results in submission order, so a
        ``per_seed`` mapping built from that merge yields the same series —
        and the same pooled concatenation — for every worker count.
        """
        for seed, values in per_seed.items():
            self.extend(label, metric, values, seed=int(seed), unit=unit)

    def add_point(
        self, label: str, metric: str, x: float, y: float, *, unit: str = ""
    ) -> None:
        """Append one ``(x, y)`` point to the ``(label, metric)`` time series."""
        key = (label, metric)
        curve = self._timeseries.get(key)
        if curve is None:
            curve = self._timeseries[key] = TimeSeries(label=label, metric=metric, unit=unit)
        curve.points.append((float(x), float(y)))

    # ---------------------------------------------------------------- access
    def series(self) -> list[SampleSeries]:
        """All sample series, in insertion order."""
        return list(self._series.values())

    def timeseries(self) -> list[TimeSeries]:
        """All time series, in insertion order."""
        return list(self._timeseries.values())

    def labels(self) -> list[str]:
        """Distinct labels across series and time series, in insertion order."""
        seen: dict[str, None] = {}
        for series in self._series.values():
            seen.setdefault(series.label, None)
        for curve in self._timeseries.values():
            seen.setdefault(curve.label, None)
        return list(seen)

    def metrics(self) -> list[str]:
        """Distinct sample-series metric names, in insertion order."""
        seen: dict[str, None] = {}
        for series in self._series.values():
            seen.setdefault(series.metric, None)
        return list(seen)

    def values(self, label: str, metric: str) -> list[float]:
        """Samples for ``(label, metric)`` pooled across seeds, in stored order."""
        pooled: list[float] = []
        for series in self._series.values():
            if series.label == label and series.metric == metric:
                pooled.extend(series.values)
        return pooled

    def per_seed(self, label: str, metric: str) -> dict[int, list[float]]:
        """Per-seed samples for ``(label, metric)`` (seedless series omitted)."""
        return {
            series.seed: list(series.values)
            for series in self._series.values()
            if series.label == label and series.metric == metric and series.seed is not None
        }

    def points(self, label: str, metric: str) -> list[tuple[float, float]]:
        """The ``(label, metric)`` time-series points (empty when absent)."""
        curve = self._timeseries.get((label, metric))
        return list(curve.points) if curve else []

    def sample_count(self) -> int:
        """Total raw samples held across all series."""
        return sum(len(series.values) for series in self._series.values())

    def __len__(self) -> int:
        return len(self._series) + len(self._timeseries)

    def __bool__(self) -> bool:
        return bool(self._series or self._timeseries)

    # ----------------------------------------------------------------- merge
    def merge(self, other: "SampleLog") -> "SampleLog":
        """A new log holding both logs' data (same-key series concatenate).

        Merging logs built in a deterministic order is itself deterministic,
        preserving the worker-count invariance of the inputs.
        """
        merged = SampleLog()
        for log in (self, other):
            for series in log._series.values():
                merged.extend(
                    series.label, series.metric, series.values,
                    seed=series.seed, unit=series.unit,
                )
            for curve in log._timeseries.values():
                for x, y in curve.points:
                    merged.add_point(curve.label, curve.metric, x, y, unit=curve.unit)
        return merged

    # ------------------------------------------------------------- transport
    def to_dict(self) -> dict[str, Any]:
        """The log as plain JSON-safe data (the envelope's ``samples`` form)."""
        return {
            "schema_version": SAMPLES_SCHEMA_VERSION,
            "series": [
                {
                    "label": series.label,
                    "metric": series.metric,
                    "seed": series.seed,
                    "unit": series.unit,
                    "values": list(series.values),
                }
                for series in self._series.values()
            ],
            "timeseries": [
                {
                    "label": curve.label,
                    "metric": curve.metric,
                    "unit": curve.unit,
                    "points": [[x, y] for x, y in curve.points],
                }
                for curve in self._timeseries.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]]) -> "SampleLog":
        """Rebuild a log from :meth:`to_dict` output.

        ``None`` or an empty mapping (the legacy sample-less envelope path)
        yields an empty log.
        """
        log = cls()
        if not data:
            return log
        version = data.get("schema_version", SAMPLES_SCHEMA_VERSION)
        if version > SAMPLES_SCHEMA_VERSION:
            raise ValueError(
                f"samples schema v{version} is newer than supported v{SAMPLES_SCHEMA_VERSION}"
            )
        for entry in data.get("series", []):
            seed = entry.get("seed")
            log.extend(
                entry["label"],
                entry["metric"],
                entry.get("values", []),
                seed=None if seed is None else int(seed),
                unit=entry.get("unit", ""),
            )
        for entry in data.get("timeseries", []):
            for x, y in entry.get("points", []):
                log.add_point(
                    entry["label"], entry["metric"], x, y, unit=entry.get("unit", "")
                )
        return log


class BlockArrivalRecorder:
    """Records block acceptance times through ``BitcoinNode.block_listeners``.

    One recorder observes any number of nodes; per block hash it keeps an
    insertion-ordered ``node id -> acceptance time`` mapping (insertion order
    is simulation-event order, so everything derived from it is
    deterministic).  This is the single block-plane capture point experiments
    share instead of each wiring an ad-hoc listener.
    """

    def __init__(self) -> None:
        #: block hash -> (node id -> simulated acceptance time), event-ordered.
        self.arrivals: dict[str, dict[int, float]] = {}

    def attach(self, nodes: Iterable[Any]) -> None:
        """Register the recorder on every node's ``block_listeners``."""
        for node in nodes:
            node.block_listeners.append(self.observe)

    def observe(self, node_id: int, block: Any, accepted_at: float) -> None:
        """The listener body (signature of ``BitcoinNode.block_listeners``)."""
        self.arrivals.setdefault(block.block_hash, {})[node_id] = accepted_at

    def receivers(self, block_hash: str) -> dict[int, float]:
        """Acceptance times for one block (empty when nobody accepted it)."""
        return dict(self.arrivals.get(block_hash, {}))

    def delays(
        self, block_hash: str, since: float, *, exclude: Sequence[int] = ()
    ) -> list[float]:
        """Per-node ``acceptance - since`` delays, in acceptance-event order.

        Args:
            block_hash: the block to read.
            since: reference time (typically when the block was mined).
            exclude: node ids to skip (typically the miner itself).
        """
        skip = set(exclude)
        return [
            accepted_at - since
            for node_id, accepted_at in self.arrivals.get(block_hash, {}).items()
            if node_id not in skip
        ]
