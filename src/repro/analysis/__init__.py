"""Analysis plane: raw-sample capture, distribution statistics, figures, reports.

The experiments layer runs simulations and persists
:class:`~repro.experiments.results.ExperimentResult` envelopes; this package
turns those envelopes into *analysis* — the paper's figures regenerated from
raw samples, percentile tables, bootstrap confidence intervals and
self-contained markdown reports — with **no re-simulation**.

Public entry points, bottom-up:

* :mod:`repro.analysis.samples` — :class:`~repro.analysis.samples.SampleLog`,
  the versioned raw-sample capture structure experiments store under the
  envelope's ``samples`` field (per-seed delay series and named time-series
  counters), plus :class:`~repro.analysis.samples.BlockArrivalRecorder`, the
  reusable ``BitcoinNode.block_listeners`` observer.  Depends only on the
  standard library, so every layer may import it.
* :mod:`repro.analysis.stats` — the shared statistics core: percentiles,
  empirical CDFs (:class:`~repro.analysis.stats.Ecdf`), streaming P²
  percentile estimation and bootstrap confidence intervals over seeds.  This
  is the single implementation behind
  :class:`repro.measurement.stats.DelayDistribution` and the report tables.
* :mod:`repro.analysis.figures` — declarative
  :class:`~repro.analysis.figures.FigureSpec` curves (Fig. 3/4
  delay-vs-coverage CDFs) rendered as matplotlib PNG/SVG when the optional
  ``repro[plots]`` extra is installed, always with a markdown table fallback.
* :mod:`repro.analysis.report` — ``repro report``: renders one stored run (or
  a comparison of two) as a self-contained, byte-stable markdown report.

``figures`` and ``report`` sit *above* the experiments layer (they read
stored envelopes), so they are loaded lazily here; ``samples`` and ``stats``
are dependency-free leaves loaded eagerly.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.samples import (
    SAMPLES_SCHEMA_VERSION,
    BlockArrivalRecorder,
    SampleLog,
    SampleSeries,
    TimeSeries,
)
from repro.analysis.stats import (
    ConfidenceInterval,
    Ecdf,
    StreamingQuantile,
    bootstrap_ci,
    clamped_mean,
    mean,
    percentile,
    sample_std,
    sample_variance,
    summarize_values,
)

__all__ = [
    "SAMPLES_SCHEMA_VERSION",
    "BlockArrivalRecorder",
    "ConfidenceInterval",
    "Ecdf",
    "SampleLog",
    "SampleSeries",
    "StreamingQuantile",
    "TimeSeries",
    "bootstrap_ci",
    "clamped_mean",
    "mean",
    "percentile",
    "sample_std",
    "sample_variance",
    "summarize_values",
]

_LAZY_MODULES = ("figures", "report")


def __getattr__(name: str) -> Any:
    # figures/report import matplotlib (optionally) and the experiments layer;
    # loading them lazily keeps `repro.analysis.samples` importable from the
    # lower layers without a cycle.
    if name in _LAZY_MODULES:
        import importlib

        return importlib.import_module(f"repro.analysis.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
