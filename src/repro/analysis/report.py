"""``repro report``: self-contained markdown reports from stored runs.

This module turns one persisted
:class:`~repro.experiments.results.ExperimentResult` envelope into a
human-readable, machine-diffable markdown report — configuration provenance,
verdicts, percentile tables with bootstrap confidence intervals over seeds,
and the paper's figures regenerated from the envelope's raw ``samples``
(:mod:`repro.analysis.figures`) — with **no re-simulation**.

Byte-stability contract: rendering the same stored run twice produces
byte-identical markdown.  Everything in the report derives from the stored
envelope (the run's own ``created_at``, never the render time), iteration
orders are the envelope's stored orders, floats are formatted at fixed
precision, and the bootstrap uses a pinned generator seed.

Legacy envelopes (schema v1, no ``samples``) still render: the percentile
and figure sections fall back to the stored scalar summaries, tables only.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

from repro.analysis import figures as figures_mod
from repro.analysis.samples import SampleLog
from repro.analysis.stats import bootstrap_ci, percentile, summarize_values
from repro.experiments.reporting import format_markdown_table
from repro.experiments.results import ExperimentResult, ResultStore, diff_results

#: Figure titles for the metrics that correspond to actual paper figures.
_FIGURE_TITLES = {
    ("fig3", "delay_s"): (
        "Fig. 3 — propagation delay vs coverage (Bitcoin vs LBC vs BCBPT, d_t = 25 ms)"
    ),
    ("fig4", "delay_s"): (
        "Fig. 4 — propagation delay vs coverage for BCBPT by threshold d_t"
    ),
}

#: Known time-series metrics: metric -> (title, xlabel, ylabel, y scale).
_TIMESERIES_AXES = {
    "rank_variance_s2": (
        "Variance of Δt by connection rank",
        "connection rank",
        "variance of Δt (ms²)",
        1e6,
    ),
    "block_coverage": (
        "Per-block network coverage",
        "block index",
        "fraction of nodes reached",
        1.0,
    ),
    "coverage": (
        "Per-campaign measurement coverage",
        "campaign index",
        "fraction of connections reached",
        1.0,
    ),
    "mempool_backlog": (
        "Observer mempool backlog under sustained load",
        "simulated time (s)",
        "pending transactions",
        1.0,
    ),
}

#: Percentiles tabulated for every delay metric (columns of the main table).
_TABLE_PERCENTILES = (10, 25, 50, 75, 90, 95, 99)

#: Pinned bootstrap parameters — part of the byte-stability contract.
_BOOTSTRAP_RESAMPLES = 500
_BOOTSTRAP_SEED = 0
_BOOTSTRAP_CONFIDENCE = 0.95


@dataclass
class ReportArtifacts:
    """What one :func:`write_report` call produced."""

    run_id: str
    markdown_path: Path
    markdown: str
    figure_paths: list[Path] = dataclass_field(default_factory=list)


def _fmt(value: float) -> str:
    return f"{value:.6g}"


def _fmt_ms(value_s: float) -> str:
    return f"{value_s * 1e3:.6g}"


def _is_delay_metric(metric: str) -> bool:
    return metric.endswith("delay_s")


def sample_log_of(result: ExperimentResult) -> SampleLog:
    """The envelope's raw samples as a :class:`SampleLog` (empty for legacy runs)."""
    return SampleLog.from_dict(result.samples)


# ------------------------------------------------------------------ figures
def build_figures(result: ExperimentResult, log: SampleLog) -> list[figures_mod.FigureSpec]:
    """Figure specs regenerable from one envelope's raw samples.

    One delay-vs-coverage CDF figure per delay metric (Fig. 3/4 for the
    figure experiments), plus one curve figure per stored time-series metric.
    Envelopes without samples yield no figures.
    """
    specs: list[figures_mod.FigureSpec] = []
    labels = log.labels()
    for metric in log.metrics():
        if not _is_delay_metric(metric):
            continue
        delays = {label: log.values(label, metric) for label in labels}
        title = _FIGURE_TITLES.get(
            (result.experiment, metric),
            f"{result.experiment} — {metric} vs coverage",
        )
        slug = _slugify(f"{result.experiment}-{_strip_unit(metric)}-coverage")
        spec = figures_mod.delay_coverage_figure(
            delays, slug=slug, title=title,
            caption="Empirical CDF of the stored raw samples, pooled across seeds.",
        )
        if spec is not None:
            specs.append(spec)
    timeseries_metrics: dict[str, None] = {}
    for curve in log.timeseries():
        timeseries_metrics.setdefault(curve.metric, None)
    for metric in timeseries_metrics:
        title, xlabel, ylabel, y_scale = _TIMESERIES_AXES.get(
            metric, (f"{result.experiment} — {metric}", "x", metric, 1.0)
        )
        spec = figures_mod.timeseries_figure(
            {label: log.points(label, metric) for label in labels},
            slug=_slugify(f"{result.experiment}-{_strip_unit(metric)}"),
            title=title, xlabel=xlabel, ylabel=ylabel, y_scale=y_scale,
        )
        if spec is not None:
            specs.append(spec)
    return specs


def _strip_unit(metric: str) -> str:
    for suffix in ("_s2", "_s"):
        if metric.endswith(suffix):
            return metric[: -len(suffix)]
    return metric


def _slugify(text: str) -> str:
    return text.replace("_", "-").replace("/", "-")


# ----------------------------------------------------------------- markdown
def render_report(
    result: ExperimentResult,
    *,
    run_id: str = "",
    rendered_figures: Optional[Mapping[str, Sequence[Path]]] = None,
    figures_dir_name: str = "figures",
    log: Optional[SampleLog] = None,
    specs: Optional[Sequence[figures_mod.FigureSpec]] = None,
) -> str:
    """Render one envelope as self-contained markdown.

    Args:
        result: the loaded envelope.
        run_id: run identity printed in the header (stable, not a timestamp
            of this rendering).
        rendered_figures: slug -> image paths actually written for this
            report; specs without an entry fall back to the table view.
        figures_dir_name: directory name images are referenced under,
            relative to the markdown file.
        log: the envelope's parsed sample log, when the caller already built
            it (avoids re-parsing large sample sets); derived otherwise.
        specs: pre-built figure specs (same reason); derived otherwise.
    """
    if log is None:
        log = sample_log_of(result)
    rendered = dict(rendered_figures or {})
    lines: list[str] = []
    lines.append(f"# {result.experiment_id}: {result.title}")
    lines.append("")
    recorded = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime(result.created_at))
    identity = f"`{run_id}`" if run_id else f"`{result.experiment}` (unsaved)"
    lines.append(f"Experiment `{result.experiment}`, run {identity}, recorded {recorded}.")
    if log:
        lines.append(
            f"Raw samples: {log.sample_count()} measurements in "
            f"{len(log.series())} series."
        )
    else:
        lines.append(
            "Raw samples: none stored (legacy envelope) — percentiles and "
            "figures below come from the stored scalar summaries."
        )
    lines.append("")

    # Provenance -----------------------------------------------------------
    lines.append("## Provenance")
    lines.append("")
    provenance_rows = [[f"`{key}`", _plain(result.config[key])] for key in sorted(result.config)]
    lines.append(format_markdown_table(["config field", "value"], provenance_rows))
    lines.append("")
    if result.options:
        option_rows = [[f"`{key}`", _plain(result.options[key])] for key in sorted(result.options)]
        lines.append(format_markdown_table(["option", "value"], option_rows))
        lines.append("")
    lines.append(f"Seeds: {', '.join(str(seed) for seed in result.seeds) or '(none)'}.")
    lines.append("")

    # Verdicts -------------------------------------------------------------
    if result.verdicts:
        lines.append("## Verdicts")
        lines.append("")
        verdict_rows = [
            [name, "PASS" if value else "FAIL"] for name, value in result.verdicts.items()
        ]
        lines.append(format_markdown_table(["criterion", "outcome"], verdict_rows))
        lines.append("")

    # Percentile tables ----------------------------------------------------
    delay_metrics = [metric for metric in log.metrics() if _is_delay_metric(metric)]
    for metric in delay_metrics:
        lines.append(f"## Percentiles — `{metric}` (ms)")
        lines.append("")
        headers = (
            ["label", "n", "mean"]
            + [f"p{q}" for q in _TABLE_PERCENTILES]
            + ["max", "95% CI of mean"]
        )
        rows = []
        for label in log.labels():
            values = log.values(label, metric)
            if not values:
                continue
            summary = summarize_values(values)
            groups = list(log.per_seed(label, metric).values()) or [values]
            interval = bootstrap_ci(
                groups,
                n_resamples=_BOOTSTRAP_RESAMPLES,
                confidence=_BOOTSTRAP_CONFIDENCE,
                seed=_BOOTSTRAP_SEED,
            )
            rows.append(
                [label, str(int(summary["count"])), _fmt_ms(summary["mean_s"])]
                + [_fmt_ms(percentile(values, q)) for q in _TABLE_PERCENTILES]
                + [
                    _fmt_ms(summary["max_s"]),
                    f"[{_fmt_ms(interval.low)}, {_fmt_ms(interval.high)}]",
                ]
            )
        lines.append(format_markdown_table(headers, rows))
        lines.append("")
        lines.append(
            f"_Mean CI: {int(_BOOTSTRAP_CONFIDENCE * 100)}% percentile bootstrap "
            f"({_BOOTSTRAP_RESAMPLES} resamples over per-seed groups, seed "
            f"{_BOOTSTRAP_SEED})._"
        )
        lines.append("")

    # Load frontier ---------------------------------------------------------
    lines.extend(_render_load_frontier(result, log))

    # Stored scalar summaries (always present; the only table for legacy runs)
    if result.summaries:
        lines.append("## Stored summaries")
        lines.append("")
        summary_rows = []
        for label, metrics in result.summaries.items():
            for name in sorted(metrics):
                summary_rows.append([label, f"`{name}`", _plain(metrics[name])])
        lines.append(format_markdown_table(["label", "metric", "value"], summary_rows))
        lines.append("")

    # Figures --------------------------------------------------------------
    if specs is None:
        specs = build_figures(result, log)
    if specs:
        lines.append("## Figures")
        lines.append("")
        for spec in specs:
            lines.append(f"### {spec.title}")
            lines.append("")
            images = list(rendered.get(spec.slug, ()))
            # Embed the PNG when present, else the first rendered image of
            # any format (e.g. `--formats svg`); remaining formats are linked.
            embedded = next((p for p in images if p.suffix == ".png"), None)
            if embedded is None and images:
                embedded = images[0]
            if embedded is not None:
                lines.append(f"![{spec.title}]({figures_dir_name}/{embedded.name})")
                others = [p.name for p in images if p is not embedded]
                if others:
                    refs = ", ".join(
                        f"[{name}]({figures_dir_name}/{name})" for name in others
                    )
                    lines.append("")
                    lines.append(f"_Also rendered: {refs}._")
            else:
                lines.append(
                    "_matplotlib is not installed — table view shown "
                    "(install the `repro[plots]` extra for PNG/SVG)._"
                )
                lines.append("")
                lines.append(figures_mod.figure_table(spec))
            if spec.caption:
                lines.append("")
                lines.append(f"_{spec.caption}_")
            lines.append("")

    # Stored text report ---------------------------------------------------
    if result.sections:
        lines.append("## Stored report sections")
        lines.append("")
        for heading, body in result.sections:
            lines.append(f"### {heading}")
            lines.append("")
            lines.append("```text")
            lines.append(body)
            lines.append("```")
            lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def _render_load_frontier(result: ExperimentResult, log: SampleLog) -> list[str]:
    """The load-frontier experiment's latency-vs-offered-load table.

    Rendered from the envelope's stored per-seed streamed quantiles (one
    scalar per seed per cell — P² estimates finalised inside each worker), so
    the bootstrap here resamples *seeds*, never raw latencies; nothing is
    re-simulated.
    """
    if result.experiment != "load_frontier":
        return []
    labels = [
        label for label in log.labels() if log.values(label, "confirmation_p50_s")
    ]
    if not labels:
        return []

    def sort_key(label: str) -> tuple[str, float]:
        summary = result.summaries.get(label, {})
        return (label.split("@", 1)[0], float(summary.get("offered_tps", 0.0)))

    rows = []
    for label in sorted(labels, key=sort_key):
        summary = result.summaries.get(label, {})
        cells: list[str] = [
            label.split("@", 1)[0],
            _fmt(float(summary.get("offered_tps", float("nan")))),
            _fmt(float(summary.get("confirmed_tps", float("nan")))),
        ]
        for metric in ("confirmation_p50_s", "confirmation_p99_s"):
            groups = [
                values for values in log.per_seed(label, metric).values() if values
            ]
            if not groups:
                cells += ["—", "—"]
                continue
            interval = bootstrap_ci(
                groups,
                n_resamples=_BOOTSTRAP_RESAMPLES,
                confidence=_BOOTSTRAP_CONFIDENCE,
                seed=_BOOTSTRAP_SEED,
            )
            cells += [
                _fmt(interval.point),
                f"[{_fmt(interval.low)}, {_fmt(interval.high)}]",
            ]
        cells.append("yes" if summary.get("saturated") else "no")
        rows.append(cells)
    lines = ["## Latency vs offered load", ""]
    lines.append(
        format_markdown_table(
            [
                "policy",
                "offered tx/s",
                "confirmed tx/s",
                "p50 (s)",
                "p50 95% CI",
                "p99 (s)",
                "p99 95% CI",
                "saturated",
            ],
            rows,
        )
    )
    lines.append("")
    lines.append(
        "_Latency point estimates are across-seed means of per-seed streamed "
        f"P² quantiles; CIs bootstrap the seed groups ({_BOOTSTRAP_RESAMPLES} "
        f"resamples, seed {_BOOTSTRAP_SEED})._"
    )
    lines.append("")
    return lines


def _plain(value: Any) -> str:
    if isinstance(value, float):
        return _fmt(value)
    if isinstance(value, (list, tuple)):
        return ", ".join(_plain(item) for item in value) or "()"
    return str(value)


# ------------------------------------------------------------------ driving
def resolve_run_ref(store: ResultStore, ref: Optional[str]) -> str:
    """Resolve a CLI run reference to a loadable run id (or path).

    Accepted forms: None / ``"latest"`` (newest stored run across all
    experiments), an experiment name (its newest run), a run id
    (``fig3/<stamp>-001``) or a run directory path.
    """
    if ref in (None, "", "latest"):
        ids = store.run_ids()
        if not ids:
            raise FileNotFoundError(f"no stored runs under {store.root}")
        return max(ids, key=lambda run_id: run_id.split("/", 1)[1])
    assert ref is not None
    if "/" not in ref and not Path(ref).exists():
        latest = store.latest(ref)
        if latest is None:
            raise FileNotFoundError(
                f"no stored runs for experiment {ref!r} under {store.root}"
            )
        return latest
    return ref


def write_report(
    store: ResultStore,
    ref: Optional[str] = None,
    *,
    out_dir: Union[str, Path, None] = None,
    formats: Sequence[str] = ("png", "svg"),
    render_figures: bool = True,
) -> ReportArtifacts:
    """Render one stored run to ``report.md`` (+ figures) and return the paths.

    By default everything lands in the run's own directory, keeping it a
    self-contained artifact; ``out_dir`` overrides the destination.
    """
    run_id = resolve_run_ref(store, ref)
    result = store.load(run_id)
    destination = Path(out_dir) if out_dir is not None else store.run_dir(run_id)
    destination.mkdir(parents=True, exist_ok=True)
    log = sample_log_of(result)
    specs = build_figures(result, log)
    rendered: dict[str, list[Path]] = {}
    if render_figures and figures_mod.matplotlib_available():
        for spec in specs:
            paths = figures_mod.render_figure(
                spec, destination / "figures", formats=formats
            )
            if paths:
                rendered[spec.slug] = paths
    markdown = render_report(
        result, run_id=str(run_id), rendered_figures=rendered, log=log, specs=specs
    )
    markdown_path = destination / "report.md"
    markdown_path.write_text(markdown)
    return ReportArtifacts(
        run_id=str(run_id),
        markdown_path=markdown_path,
        markdown=markdown,
        figure_paths=[path for paths in rendered.values() for path in paths],
    )


# --------------------------------------------------------------- comparison
def render_comparison(
    store: ResultStore,
    baseline_ref: str,
    candidate_ref: str,
) -> str:
    """Side-by-side markdown comparison of two stored runs."""
    baseline_id = resolve_run_ref(store, baseline_ref)
    candidate_id = resolve_run_ref(store, candidate_ref)
    baseline = store.load(baseline_id)
    candidate = store.load(candidate_id)
    diff = diff_results(baseline, candidate)
    lines = [f"# Comparison: `{baseline_id}` vs `{candidate_id}`", ""]
    lines.append(f"Experiment `{baseline.experiment}`.")
    lines.append("")

    lines.append("## Config drift")
    lines.append("")
    if diff.config_changes:
        rows = [
            [f"`{key}`", _plain(old), _plain(new)]
            for key, (old, new) in sorted(diff.config_changes.items())
        ]
        lines.append(format_markdown_table(["field", "baseline", "candidate"], rows))
    else:
        lines.append("(none)")
    lines.append("")

    lines.append("## Verdicts")
    lines.append("")
    verdict_names = sorted(set(baseline.verdicts) | set(candidate.verdicts))
    if verdict_names:
        rows = []
        for name in verdict_names:
            old = baseline.verdicts.get(name)
            new = candidate.verdicts.get(name)
            flag = " ⟵ changed" if old != new else ""
            rows.append([name, _verdict(old), _verdict(new) + flag])
        lines.append(format_markdown_table(["criterion", "baseline", "candidate"], rows))
    else:
        lines.append("(none)")
    lines.append("")

    lines.append("## Metric deltas")
    lines.append("")
    if diff.metric_deltas or diff.labels_only_in_baseline or diff.labels_only_in_candidate:
        rows = []
        for label in diff.labels_only_in_baseline:
            rows.append([label, "_(whole label)_", "present", "absent", ""])
        for label in diff.labels_only_in_candidate:
            rows.append([label, "_(whole label)_", "absent", "present", ""])
        for label, metrics in sorted(diff.metric_deltas.items()):
            for metric, (old, new) in sorted(metrics.items()):
                delta = ""
                if (
                    isinstance(old, (int, float))
                    and isinstance(new, (int, float))
                    and old
                    and old == old  # NaN-safe
                    and new == new
                ):
                    delta = f"{(new - old) / abs(old):+.1%}"
                rows.append([label, f"`{metric}`", _plain(old), _plain(new), delta])
        lines.append(
            format_markdown_table(["label", "metric", "baseline", "candidate", "Δ"], rows)
        )
    else:
        lines.append("(summaries identical)")
    lines.append("")

    base_log = sample_log_of(baseline)
    cand_log = sample_log_of(candidate)
    shared_metrics = [
        metric
        for metric in base_log.metrics()
        if _is_delay_metric(metric) and metric in cand_log.metrics()
    ]
    for metric in shared_metrics:
        shared_labels = [
            label for label in base_log.labels() if cand_log.values(label, metric)
        ]
        rows = []
        for label in shared_labels:
            old_values = base_log.values(label, metric)
            new_values = cand_log.values(label, metric)
            if not old_values or not new_values:
                continue
            rows.append(
                [
                    label,
                    f"{len(old_values)} / {len(new_values)}",
                    f"{_fmt_ms(percentile(old_values, 50))} / {_fmt_ms(percentile(new_values, 50))}",
                    f"{_fmt_ms(percentile(old_values, 90))} / {_fmt_ms(percentile(new_values, 90))}",
                    f"{_fmt_ms(percentile(old_values, 99))} / {_fmt_ms(percentile(new_values, 99))}",
                ]
            )
        if rows:
            lines.append(f"## Percentiles — `{metric}` (ms, baseline / candidate)")
            lines.append("")
            lines.append(
                format_markdown_table(["label", "n", "p50", "p90", "p99"], rows)
            )
            lines.append("")
    return "\n".join(lines).rstrip("\n") + "\n"


def _verdict(value: Optional[bool]) -> str:
    if value is None:
        return "—"
    return "PASS" if value else "FAIL"
