"""The shared statistics core: percentiles, CDFs, streaming and bootstrap.

One place for the distribution math the repository previously scattered —
:class:`repro.measurement.stats.DelayDistribution` delegates its summary
statistics here, the experiment drivers use :func:`mean` instead of ad-hoc
``sum(x)/len(x)`` expressions, and the report/figure layer builds percentile
tables, :class:`Ecdf` curves and :func:`bootstrap_ci` confidence intervals
from stored raw samples.

Numerical contracts (relied on by golden-value tests):

* :func:`mean` is exactly ``sum(values) / len(values)`` — the expression it
  replaces — so swapping call sites changes no bits;
* :func:`clamped_mean` is numpy's mean clamped into ``[min, max]`` (pairwise
  summation can round the mean of near-identical samples one ulp outside the
  sample range, which would break downstream ordering invariants);
* :func:`sample_variance` is the ``ddof=1`` sample variance (0.0 below two
  samples), matching the quantity the paper's figures compare;
* :func:`bootstrap_ci` and :class:`StreamingQuantile` are deterministic: the
  bootstrap draws from a caller-seeded generator, and P² is a fixed
  recurrence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np


def _as_array(values: Iterable[float]) -> np.ndarray:
    data = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if data.size == 0:
        raise ValueError("no samples")
    return data


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, computed as ``sum(values) / len(values)``.

    Bit-identical to the inline expression it replaces in the drivers (numpy
    pairwise summation is *not* used here on purpose).
    """
    values = list(values)
    if not values:
        raise ValueError("no samples")
    return sum(values) / len(values)


def clamped_mean(values: Sequence[float]) -> float:
    """numpy mean clamped into ``[min, max]`` of the samples."""
    data = _as_array(values)
    value = float(np.mean(data))
    return min(max(value, float(np.min(data))), float(np.max(data)))


def sample_variance(values: Sequence[float]) -> float:
    """Sample variance (``ddof=1``); 0.0 below two samples."""
    data = _as_array(values)
    if data.size < 2:
        return 0.0
    return float(np.var(data, ddof=1))


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (square root of :func:`sample_variance`)."""
    return float(np.sqrt(sample_variance(values)))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (``0 <= q <= 100``, linear interpolation)."""
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(_as_array(values), q))


def summarize_values(values: Sequence[float], *, suffix: str = "_s") -> dict[str, float]:
    """The standard summary-statistics dictionary for one sample set.

    With the default ``suffix`` this is exactly the dictionary
    :meth:`repro.measurement.stats.DelayDistribution.summary` has always
    produced (``count``, ``mean_s``, ``median_s``, ``variance{suffix}2``, ...).
    """
    data = _as_array(values)
    return {
        "count": float(data.size),
        f"mean{suffix}": clamped_mean(data),
        f"median{suffix}": float(np.median(data)),
        f"variance{suffix}2": sample_variance(data),
        f"std{suffix}": sample_std(data),
        f"p10{suffix}": float(np.percentile(data, 10)),
        f"p25{suffix}": float(np.percentile(data, 25)),
        f"p75{suffix}": float(np.percentile(data, 75)),
        f"p90{suffix}": float(np.percentile(data, 90)),
        f"p95{suffix}": float(np.percentile(data, 95)),
        f"min{suffix}": float(np.min(data)),
        f"max{suffix}": float(np.max(data)),
    }


class Ecdf:
    """The empirical cumulative distribution function of a sample set.

    ``evaluate(x)`` is the right-continuous step function
    ``P(X <= x) = #{samples <= x} / n`` — the "fraction of connections covered
    within delay x" reading of the paper's Fig. 3/4 curves.
    """

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted = np.sort(_as_array(samples))

    def __len__(self) -> int:
        return int(self._sorted.size)

    @property
    def min(self) -> float:
        """Smallest sample."""
        return float(self._sorted[0])

    @property
    def max(self) -> float:
        """Largest sample."""
        return float(self._sorted[-1])

    def evaluate(self, x: float) -> float:
        """The cumulative fraction of samples at or below ``x``."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self._sorted.size

    def evaluate_many(self, points: Sequence[float]) -> list[float]:
        """:meth:`evaluate` over many points."""
        return [self.evaluate(point) for point in points]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``, linear interpolation)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def curve(self, resolution: int = 50) -> list[tuple[float, float]]:
        """(x, cumulative fraction) pairs on an even grid over the range."""
        if resolution <= 1:
            raise ValueError(f"resolution must be at least 2, got {resolution}")
        points = np.linspace(self.min, self.max, resolution)
        return [(float(point), self.evaluate(float(point))) for point in points]

    def curve_on(self, grid: Sequence[float]) -> list[tuple[float, float]]:
        """(x, cumulative fraction) pairs on a caller-supplied grid.

        A shared grid is what lets several distributions (one per protocol)
        be tabulated side by side in one figure-fallback table.
        """
        return [(float(point), self.evaluate(float(point))) for point in grid]


class StreamingQuantile:
    """P² streaming estimate of one quantile, without storing the samples.

    Jain & Chlamtac's P² algorithm keeps five markers whose positions are
    nudged toward the ideal quantile positions with a piecewise-parabolic
    update.  The estimate is exact while five or fewer samples have been
    seen, and converges for stationary streams — suitable for tracking
    percentiles of counters too large to persist.

    Args:
        q: the quantile to track, in ``(0, 1)``.
    """

    def __init__(self, q: float) -> None:
        if not 0 < q < 1:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1, 2, 3, 4, 5]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self._count = 0

    def add(self, value: float) -> None:
        """Consume one sample."""
        value = float(value)
        self._count += 1
        if len(self._heights) < 5:
            self._heights.append(value)
            self._heights.sort()
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = next(i for i in range(4) if heights[i] <= value < heights[i + 1])
        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if (delta >= 1 and positions[i + 1] - positions[i] > 1) or (
                delta <= -1 and positions[i - 1] - positions[i] < -1
            ):
                step = 1 if delta >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:  # parabolic estimate left the bracket; fall back to linear
                    heights[i] = heights[i] + step * (heights[i + step] - heights[i]) / (
                        positions[i + step] - positions[i]
                    )
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, p = self._heights, self._positions
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    @property
    def count(self) -> int:
        """Samples consumed so far."""
        return self._count

    def value(self) -> float:
        """The current quantile estimate.

        Raises:
            ValueError: before any sample has been consumed.
        """
        if not self._heights:
            raise ValueError("no samples")
        if self._count <= 5:
            # All samples seen so far are the (sorted) marker heights and no
            # marker has moved yet, so the exact quantile is available — this
            # keeps the documented "exact while five or fewer samples" promise
            # at exactly five, where the marker recurrence has not started.
            return float(np.quantile(np.asarray(self._heights), self.q))
        return self._heights[2]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A bootstrap confidence interval around a point estimate."""

    low: float
    high: float
    point: float
    confidence: float

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_ci(
    groups: Sequence[Sequence[float]],
    statistic: Optional[Callable[[Sequence[float]], float]] = None,
    *,
    n_resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap confidence interval, resampling whole groups.

    The experiments aggregate over master seeds, and seeds — not individual
    Δt samples — are the independent replicates, so the bootstrap resamples
    *groups* (one per seed) with replacement and evaluates ``statistic`` on
    the pooled resample.  With a single group it degrades to the ordinary
    per-sample bootstrap.  Deterministic for a fixed ``seed``.

    Args:
        groups: one sample sequence per independent replicate (per seed).
        statistic: pooled-sample statistic (default: :func:`clamped_mean`).
        n_resamples: bootstrap iterations.
        confidence: central interval mass, in ``(0, 1)``.
        seed: generator seed (reports pin this for byte-stable output).
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples <= 0:
        raise ValueError(f"n_resamples must be positive, got {n_resamples}")
    pools = [np.asarray(list(group), dtype=float) for group in groups if len(group) > 0]
    if not pools:
        raise ValueError("no samples")
    stat = statistic if statistic is not None else clamped_mean
    point = float(stat(np.concatenate(pools)))
    rng = np.random.default_rng(seed)
    estimates = np.empty(n_resamples)
    if len(pools) == 1:
        samples = pools[0]
        for i in range(n_resamples):
            draw = samples[rng.integers(samples.size, size=samples.size)]
            estimates[i] = stat(draw)
    else:
        for i in range(n_resamples):
            picks = rng.integers(len(pools), size=len(pools))
            resample = np.concatenate([pools[pick] for pick in picks])
            estimates[i] = stat(resample)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(estimates, [tail, 1.0 - tail])
    return ConfidenceInterval(
        low=float(low), high=float(high), point=point, confidence=confidence
    )
