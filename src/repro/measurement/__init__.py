"""Measurement infrastructure.

Implements the paper's evaluation methodology (Section V):

* :mod:`repro.measurement.stats` — delay-distribution statistics (mean,
  median, variance, percentiles, CDF) used to summarise Δt_{m,n};
* :mod:`repro.measurement.propagation` — the record of one measurement run
  (which neighbour received the transaction when);
* :mod:`repro.measurement.measuring_node` — the measuring node *m* of Fig. 2:
  creates a valid transaction, sends it to exactly one of its connected
  nodes, and records the time every other connection receives it;
* :mod:`repro.measurement.crawler` — a crawler that samples ping/pong RTTs
  across the network, standing in for the authors' real-network crawler used
  to parameterise and validate their simulator.

Public entry points: :class:`~repro.measurement.measuring_node.MeasuringNode`
and :class:`~repro.measurement.measuring_node.MeasurementCampaign` (run the
Fig. 2 methodology), :class:`~repro.measurement.stats.DelayDistribution`
(aggregate Δt samples; its math lives in :mod:`repro.analysis.stats`) and
:class:`~repro.measurement.crawler.NetworkCrawler`.
"""

from repro.measurement.crawler import CrawlerReport, NetworkCrawler
from repro.measurement.measuring_node import MeasurementCampaign, MeasuringNode
from repro.measurement.propagation import PropagationRun, ReceptionRecord
from repro.measurement.stats import DelayDistribution, summarize_delays

__all__ = [
    "CrawlerReport",
    "DelayDistribution",
    "MeasurementCampaign",
    "MeasuringNode",
    "NetworkCrawler",
    "PropagationRun",
    "ReceptionRecord",
    "summarize_delays",
]
