"""Records of individual propagation-measurement runs.

One :class:`PropagationRun` corresponds to one repetition of the paper's
Fig. 2 setup: the measuring node *m* sends a transaction at time ``T_m`` and
each of its connected nodes *n* receives it at time ``T_n``; the quantities of
interest are the differences Δt_{m,n} = T_n − T_m (Eq. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.measurement.stats import DelayDistribution


@dataclass(frozen=True)
class ReceptionRecord:
    """Reception of the measured transaction by one connected node."""

    node_id: int
    received_at: float
    delta_t_s: float
    rank: int

    def __post_init__(self) -> None:
        if self.delta_t_s < 0:
            raise ValueError(f"delta_t cannot be negative, got {self.delta_t_s}")
        if self.rank < 1:
            raise ValueError(f"rank starts at 1, got {self.rank}")


@dataclass
class PropagationRun:
    """The outcome of one measuring-node repetition.

    Attributes:
        run_index: repetition number within the campaign.
        txid: id of the measured transaction.
        sent_at: ``T_m``, when the measuring node pushed the transaction to its
            single chosen neighbour.
        first_recipient: the neighbour the transaction was pushed to.
        connected_nodes: ids of all the measuring node's connections at send time.
        receptions: per-node reception records, filled in as INVs come back.
        timed_out_nodes: connections that never received the transaction within
            the run horizon (loss of connection; the paper notes such errors
            are expected and simply averages over many runs).
    """

    run_index: int
    txid: str
    sent_at: float
    first_recipient: int
    connected_nodes: tuple[int, ...]
    receptions: list[ReceptionRecord] = field(default_factory=list)
    timed_out_nodes: tuple[int, ...] = ()

    # ---------------------------------------------------------------- intake
    def record_reception(self, node_id: int, received_at: float) -> Optional[ReceptionRecord]:
        """Record that ``node_id`` received the transaction at ``received_at``.

        Only the first reception per node is kept; nodes that are not among
        the measuring node's connections are ignored.
        """
        if node_id not in self.connected_nodes:
            return None
        if any(r.node_id == node_id for r in self.receptions):
            return None
        record = ReceptionRecord(
            node_id=node_id,
            received_at=received_at,
            delta_t_s=max(0.0, received_at - self.sent_at),
            rank=len(self.receptions) + 1,
        )
        self.receptions.append(record)
        return record

    # --------------------------------------------------------------- queries
    @property
    def complete(self) -> bool:
        """Whether every connected node has received the transaction."""
        return len(self.receptions) >= len(self.connected_nodes)

    @property
    def coverage(self) -> float:
        """Fraction of connected nodes that received the transaction."""
        if not self.connected_nodes:
            return 0.0
        return len(self.receptions) / len(self.connected_nodes)

    def delays(self) -> list[float]:
        """All Δt_{m,n} values of this run, in reception order."""
        return [r.delta_t_s for r in self.receptions]

    def delay_of(self, node_id: int) -> Optional[float]:
        """Δt for a specific connected node, or None if it never received."""
        for record in self.receptions:
            if record.node_id == node_id:
                return record.delta_t_s
        return None

    def last_delay(self) -> Optional[float]:
        """Δt of the last connection to receive (the run's total duration)."""
        if not self.receptions:
            return None
        return max(r.delta_t_s for r in self.receptions)

    def to_distribution(self) -> DelayDistribution:
        """The run's delays as a :class:`DelayDistribution`."""
        return DelayDistribution(self.delays())
