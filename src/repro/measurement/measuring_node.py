"""The measuring node *m* and measurement campaigns (Fig. 2 methodology).

"We implemented a measuring node m which is able to create a valid transaction
Tx and send to one node of its connected nodes, and then it tracks the
transaction in order to record the time by which each node of its connections
announces the transaction." (Section V.B)

:class:`MeasuringNode` wraps an ordinary :class:`~repro.protocol.node.BitcoinNode`
that already has connections established by whatever neighbour-selection
policy is under test.  One :meth:`measure_once` call performs a single
repetition; :class:`MeasurementCampaign` repeats it (the paper averages about
1000 runs) and aggregates the Δt_{m,n} samples into a
:class:`~repro.measurement.stats.DelayDistribution`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.measurement.propagation import PropagationRun
from repro.measurement.stats import DelayDistribution
from repro.protocol.messages import TxMessage
from repro.protocol.network import P2PNetwork
from repro.protocol.node import BitcoinNode
from repro.protocol.transaction import Transaction


class MeasuringNode:
    """Drives single propagation measurements from one network node.

    Args:
        node: the measuring node *m* (must be attached to a network and have
            funded, confirmed outputs to spend — see
            :func:`repro.workloads.generators.fund_nodes`).
        rng: random stream for choosing the first recipient and payment sizes.
        payment_satoshi: value of each measured transaction.
        run_timeout_s: how long to let one repetition run before declaring the
            missing connections timed out.
        exclude_long_links: when True, deliberate long-distance inter-cluster
            maintenance links are excluded from the measured connection set.
            The paper measures the client's "proximity based connections
            (1, 2, 3, ..., n)", i.e. the links the clustering protocol chose;
            the handful of random long links every node keeps for
            inter-cluster visibility are maintenance plumbing, not proximity
            connections.  Has no effect under the vanilla Bitcoin policy,
            which creates no long links.
    """

    def __init__(
        self,
        node: BitcoinNode,
        rng: np.random.Generator,
        *,
        payment_satoshi: int = 10_000,
        run_timeout_s: float = 120.0,
        exclude_long_links: bool = False,
    ) -> None:
        if payment_satoshi <= 0:
            raise ValueError(f"payment_satoshi must be positive, got {payment_satoshi}")
        if run_timeout_s <= 0:
            raise ValueError(f"run_timeout_s must be positive, got {run_timeout_s}")
        self.node = node
        self.rng = rng
        self.payment_satoshi = payment_satoshi
        self.run_timeout_s = run_timeout_s
        self.exclude_long_links = exclude_long_links
        self.runs: list[PropagationRun] = []
        self._active_run: Optional[PropagationRun] = None
        self._listeners_installed: set[int] = set()

    # ------------------------------------------------------------- plumbing
    def _network(self) -> P2PNetwork:
        if self.node.network is None:
            raise RuntimeError("the measuring node is not attached to a network")
        return self.node.network

    def _install_listener(self, peer_id: int) -> None:
        """Observe transaction acceptance at a connected node."""
        if peer_id in self._listeners_installed:
            return
        peer = self._network().node(peer_id)
        peer.transaction_listeners.append(self._on_peer_accepted)
        self._listeners_installed.add(peer_id)

    def _on_peer_accepted(self, node_id: int, tx: Transaction, accepted_at: float) -> None:
        run = self._active_run
        if run is None or tx.txid != run.txid:
            return
        run.record_reception(node_id, accepted_at)

    def _measured_connections(self) -> list[int]:
        """The connections whose reception times this node measures."""
        neighbors = self.node.neighbors()
        if not self.exclude_long_links:
            return neighbors
        topology = self._network().topology
        return [
            peer
            for peer in neighbors
            if not topology.link(self.node.node_id, peer).is_long_link
        ]

    # ------------------------------------------------------------- measuring
    def measure_once(self, run_index: int = 0) -> PropagationRun:
        """Perform one Fig. 2 repetition and return its (completed) run record.

        The call advances the simulator until every connection has received the
        transaction or ``run_timeout_s`` of simulated time has passed.

        Raises:
            RuntimeError: if the measuring node has no connections.
            ValueError: if the wallet cannot fund the payment.
        """
        network = self._network()
        simulator = network.simulator
        connections = tuple(sorted(self._measured_connections()))
        if not connections:
            raise RuntimeError(
                f"measuring node {self.node.node_id} has no connections to measure against"
            )
        for peer_id in connections:
            self._install_listener(peer_id)

        destination = self.node.keypair.address  # pay ourselves; value is irrelevant
        tx = self.node.create_transaction(
            [(destination, self.payment_satoshi)], broadcast=False
        )
        first_recipient = int(connections[int(self.rng.integers(len(connections)))])
        sent_at = simulator.now
        run = PropagationRun(
            run_index=run_index,
            txid=tx.txid,
            sent_at=sent_at,
            first_recipient=first_recipient,
            connected_nodes=connections,
        )
        self._active_run = run
        # "The transaction is propagated from node m to one connected node only."
        network.send(self.node.node_id, first_recipient, TxMessage(sender=self.node.node_id, transaction=tx))
        deadline = sent_at + self.run_timeout_s
        while not run.complete and simulator.now < deadline:
            step_until = min(simulator.now + 1.0, deadline)
            simulator.run(until=step_until)
        timed_out = tuple(
            node_id
            for node_id in connections
            if run.delay_of(node_id) is None
        )
        run.timed_out_nodes = timed_out
        self._active_run = None
        self.runs.append(run)
        return run


@dataclass
class CampaignResult:
    """Aggregated result of a measurement campaign under one protocol."""

    protocol: str
    runs: list[PropagationRun]
    delays: DelayDistribution
    per_rank_delays: dict[int, DelayDistribution] = field(default_factory=dict)

    @property
    def run_count(self) -> int:
        """Number of repetitions performed."""
        return len(self.runs)

    def coverage(self) -> float:
        """Mean fraction of connections reached per run."""
        if not self.runs:
            return 0.0
        return sum(run.coverage for run in self.runs) / len(self.runs)

    def rank_variance_curve(self) -> list[tuple[int, float]]:
        """(rank, variance of Δt) pairs — the curve the paper's figures plot.

        Rank *k* is the k-th connection to receive the transaction; the paper
        observes that under vanilla Bitcoin the variance grows with the rank
        while BCBPT keeps it flat.
        """
        curve = []
        for rank in sorted(self.per_rank_delays):
            dist = self.per_rank_delays[rank]
            if len(dist) >= 2:
                curve.append((rank, dist.variance()))
        return curve

    def rank_mean_curve(self) -> list[tuple[int, float]]:
        """(rank, mean Δt) pairs."""
        curve = []
        for rank in sorted(self.per_rank_delays):
            dist = self.per_rank_delays[rank]
            if len(dist) >= 1:
                curve.append((rank, dist.mean()))
        return curve


class MeasurementCampaign:
    """Repeats the measuring-node experiment and aggregates Δt samples.

    Args:
        measuring_node: the driver for single repetitions.
        protocol_name: label stored in the result ("bitcoin", "lbc", "bcbpt", ...).
        inter_run_gap_s: simulated idle time between repetitions, letting
            residual relay traffic drain.
    """

    def __init__(
        self,
        measuring_node: MeasuringNode,
        protocol_name: str,
        *,
        inter_run_gap_s: float = 5.0,
    ) -> None:
        if inter_run_gap_s < 0:
            raise ValueError(f"inter_run_gap_s cannot be negative, got {inter_run_gap_s}")
        self.measuring_node = measuring_node
        self.protocol_name = protocol_name
        self.inter_run_gap_s = inter_run_gap_s

    def run(self, repetitions: int) -> CampaignResult:
        """Perform ``repetitions`` measurement runs and aggregate the delays."""
        if repetitions <= 0:
            raise ValueError(f"repetitions must be positive, got {repetitions}")
        network = self.measuring_node._network()
        simulator = network.simulator
        all_delays = DelayDistribution()
        per_rank: dict[int, DelayDistribution] = {}
        runs: list[PropagationRun] = []
        for index in range(repetitions):
            run = self.measuring_node.measure_once(run_index=index)
            runs.append(run)
            for record in run.receptions:
                all_delays.add(record.delta_t_s)
                per_rank.setdefault(record.rank, DelayDistribution()).add(record.delta_t_s)
            if self.inter_run_gap_s > 0:
                simulator.run(until=simulator.now + self.inter_run_gap_s)
        return CampaignResult(
            protocol=self.protocol_name,
            runs=runs,
            delays=all_delays,
            per_rank_delays=per_rank,
        )
