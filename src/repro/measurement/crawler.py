"""A network crawler that samples ping/pong round-trip times.

The authors parameterised and validated their simulator with a crawler that
connected to roughly 5000 reachable peers and observed about 20,000 ping/pong
messages (Section V.A).  :class:`NetworkCrawler` performs the equivalent
measurement inside the simulation: it connects (logically) to every reachable
node, sends a configurable number of pings to random peers, and reports the
resulting RTT distribution.  The validation experiment compares that
distribution's shape against published real-network figures, and the latency
substrate tests use it to confirm that intra-region RTTs are small while
inter-continental RTTs are large.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.measurement.stats import DelayDistribution
from repro.protocol.network import P2PNetwork


@dataclass(frozen=True)
class CrawlerReport:
    """Outcome of one crawl.

    Attributes:
        reachable_nodes: how many nodes the crawler could see.
        ping_samples: number of ping/pong RTT observations.
        rtt_distribution: the observed RTT samples.
        per_region_median_s: median RTT towards nodes of each region.
        intra_region_median_s: median RTT between nodes in the same region.
        inter_region_median_s: median RTT between nodes in different regions.
    """

    reachable_nodes: int
    ping_samples: int
    rtt_distribution: DelayDistribution
    per_region_median_s: dict[str, float]
    intra_region_median_s: float
    inter_region_median_s: float


class NetworkCrawler:
    """Samples pairwise RTTs across the simulated network.

    Args:
        network: the P2P fabric to crawl.
        rng: random stream for pair selection.
    """

    def __init__(self, network: P2PNetwork, rng: np.random.Generator) -> None:
        self._network = network
        self._rng = rng

    def crawl(self, ping_samples: int = 20_000) -> CrawlerReport:
        """Measure ``ping_samples`` RTTs between random pairs of online nodes.

        Raises:
            ValueError: if fewer than two nodes are online.
        """
        if ping_samples <= 0:
            raise ValueError(f"ping_samples must be positive, got {ping_samples}")
        online = self._network.online_node_ids()
        if len(online) < 2:
            raise ValueError("crawling requires at least two online nodes")
        rtts = DelayDistribution()
        per_region: dict[str, list[float]] = {}
        intra: list[float] = []
        inter: list[float] = []
        for _ in range(ping_samples):
            a, b = self._rng.choice(len(online), size=2, replace=False)
            node_a, node_b = int(online[int(a)]), int(online[int(b)])
            rtt = self._network.measure_rtt(node_a, node_b)
            self._network.record_ping_exchange(1)
            rtts.add(rtt)
            region_a = self._network.position(node_a).region
            region_b = self._network.position(node_b).region
            per_region.setdefault(region_b, []).append(rtt)
            if region_a == region_b:
                intra.append(rtt)
            else:
                inter.append(rtt)
        per_region_median = {
            region: float(np.median(values)) for region, values in sorted(per_region.items())
        }
        return CrawlerReport(
            reachable_nodes=len(online),
            ping_samples=ping_samples,
            rtt_distribution=rtts,
            per_region_median_s=per_region_median,
            intra_region_median_s=float(np.median(intra)) if intra else float("nan"),
            inter_region_median_s=float(np.median(inter)) if inter else float("nan"),
        )
