"""Delay-distribution statistics.

The paper reports the *distribution* of the time differences Δt_{m,n} and, in
particular, their variance ("variances of delays").  :class:`DelayDistribution`
wraps a sample of delays and exposes the summary statistics the figures and
benchmarks need: mean, median, variance, standard deviation, arbitrary
percentiles and CDF points.

The statistics themselves are implemented once, in
:mod:`repro.analysis.stats` (the shared stats core also used by the report
layer); this class owns the *delay semantics* — non-negativity validation,
merging, and the ``*_s``-suffixed summary vocabulary.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.stats import (
    Ecdf,
    clamped_mean,
    percentile as _percentile,
    sample_std,
    sample_variance,
    summarize_values,
)


class DelayDistribution:
    """An empirical distribution of delays (seconds)."""

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: list[float] = []
        self.extend(samples)

    # -------------------------------------------------------------- mutation
    def add(self, delay_s: float) -> None:
        """Add one delay sample.

        Raises:
            ValueError: for negative delays (a reception cannot precede the send).
        """
        if delay_s < 0:
            raise ValueError(f"delay samples cannot be negative, got {delay_s}")
        self._samples.append(float(delay_s))

    def extend(self, delays: Iterable[float]) -> None:
        """Add many delay samples."""
        for delay in delays:
            self.add(delay)

    def merge(self, other: "DelayDistribution") -> "DelayDistribution":
        """A new distribution containing both sample sets."""
        merged = DelayDistribution(self._samples)
        merged.extend(other.samples)
        return merged

    # ---------------------------------------------------------------- access
    @property
    def samples(self) -> list[float]:
        """A copy of the raw samples."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    # ------------------------------------------------------------ statistics
    def _require_samples(self) -> np.ndarray:
        if not self._samples:
            raise ValueError("the distribution has no samples")
        return np.asarray(self._samples)

    def mean(self) -> float:
        """Arithmetic mean of the delays.

        Clamped into ``[min, max]``: numpy's pairwise summation can round the
        mean of near-identical samples one ulp outside the sample range, which
        would break the ordering invariants downstream consumers rely on.
        """
        return clamped_mean(self._require_samples())

    def median(self) -> float:
        """Median delay."""
        return float(np.median(self._require_samples()))

    def variance(self) -> float:
        """Sample variance (the quantity the paper's figures compare)."""
        return sample_variance(self._require_samples())

    def std(self) -> float:
        """Sample standard deviation."""
        return sample_std(self._require_samples())

    def minimum(self) -> float:
        """Smallest delay observed."""
        return float(np.min(self._require_samples()))

    def maximum(self) -> float:
        """Largest delay observed."""
        return float(np.max(self._require_samples()))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``)."""
        return _percentile(self._require_samples(), q)

    def ecdf(self) -> Ecdf:
        """The empirical CDF of the samples (see :class:`repro.analysis.stats.Ecdf`)."""
        return Ecdf(self._require_samples())

    def cdf(self, points: Sequence[float]) -> list[float]:
        """Empirical CDF evaluated at the given delay points."""
        return self.ecdf().evaluate_many([float(p) for p in points])

    def cdf_curve(self, resolution: int = 50) -> list[tuple[float, float]]:
        """(delay, cumulative fraction) pairs spanning the sample range."""
        return self.ecdf().curve(resolution)

    def summary(self) -> dict[str, float]:
        """The summary statistics used throughout the experiment reports."""
        return summarize_values(self._require_samples())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._samples:
            return "DelayDistribution(empty)"
        return (
            f"DelayDistribution(n={len(self._samples)}, mean={self.mean():.4f}s, "
            f"median={self.median():.4f}s, var={self.variance():.6f})"
        )


def summarize_delays(distributions: dict[str, DelayDistribution]) -> dict[str, dict[str, float]]:
    """Summaries of several named distributions (one per protocol/threshold)."""
    return {name: dist.summary() for name, dist in distributions.items() if len(dist) > 0}
