"""Delay-distribution statistics.

The paper reports the *distribution* of the time differences Δt_{m,n} and, in
particular, their variance ("variances of delays").  :class:`DelayDistribution`
wraps a sample of delays and exposes the summary statistics the figures and
benchmarks need: mean, median, variance, standard deviation, arbitrary
percentiles and CDF points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


class DelayDistribution:
    """An empirical distribution of delays (seconds)."""

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: list[float] = []
        self.extend(samples)

    # -------------------------------------------------------------- mutation
    def add(self, delay_s: float) -> None:
        """Add one delay sample.

        Raises:
            ValueError: for negative delays (a reception cannot precede the send).
        """
        if delay_s < 0:
            raise ValueError(f"delay samples cannot be negative, got {delay_s}")
        self._samples.append(float(delay_s))

    def extend(self, delays: Iterable[float]) -> None:
        """Add many delay samples."""
        for delay in delays:
            self.add(delay)

    def merge(self, other: "DelayDistribution") -> "DelayDistribution":
        """A new distribution containing both sample sets."""
        merged = DelayDistribution(self._samples)
        merged.extend(other.samples)
        return merged

    # ---------------------------------------------------------------- access
    @property
    def samples(self) -> list[float]:
        """A copy of the raw samples."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def __bool__(self) -> bool:
        return bool(self._samples)

    # ------------------------------------------------------------ statistics
    def _require_samples(self) -> np.ndarray:
        if not self._samples:
            raise ValueError("the distribution has no samples")
        return np.asarray(self._samples)

    def mean(self) -> float:
        """Arithmetic mean of the delays.

        Clamped into ``[min, max]``: numpy's pairwise summation can round the
        mean of near-identical samples one ulp outside the sample range, which
        would break the ordering invariants downstream consumers rely on.
        """
        data = self._require_samples()
        mean = float(np.mean(data))
        return min(max(mean, float(np.min(data))), float(np.max(data)))

    def median(self) -> float:
        """Median delay."""
        return float(np.median(self._require_samples()))

    def variance(self) -> float:
        """Sample variance (the quantity the paper's figures compare)."""
        data = self._require_samples()
        if len(data) < 2:
            return 0.0
        return float(np.var(data, ddof=1))

    def std(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance()))

    def minimum(self) -> float:
        """Smallest delay observed."""
        return float(np.min(self._require_samples()))

    def maximum(self) -> float:
        """Largest delay observed."""
        return float(np.max(self._require_samples()))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (``0 <= q <= 100``)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self._require_samples(), q))

    def cdf(self, points: Sequence[float]) -> list[float]:
        """Empirical CDF evaluated at the given delay points."""
        data = np.sort(self._require_samples())
        return [float(np.searchsorted(data, p, side="right")) / len(data) for p in points]

    def cdf_curve(self, resolution: int = 50) -> list[tuple[float, float]]:
        """(delay, cumulative fraction) pairs spanning the sample range."""
        if resolution <= 1:
            raise ValueError(f"resolution must be at least 2, got {resolution}")
        data = self._require_samples()
        points = np.linspace(float(np.min(data)), float(np.max(data)), resolution)
        fractions = self.cdf(list(points))
        return list(zip((float(p) for p in points), fractions))

    def summary(self) -> dict[str, float]:
        """The summary statistics used throughout the experiment reports."""
        return {
            "count": float(len(self._samples)),
            "mean_s": self.mean(),
            "median_s": self.median(),
            "variance_s2": self.variance(),
            "std_s": self.std(),
            "p10_s": self.percentile(10),
            "p25_s": self.percentile(25),
            "p75_s": self.percentile(75),
            "p90_s": self.percentile(90),
            "p95_s": self.percentile(95),
            "min_s": self.minimum(),
            "max_s": self.maximum(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self._samples:
            return "DelayDistribution(empty)"
        return (
            f"DelayDistribution(n={len(self._samples)}, mean={self.mean():.4f}s, "
            f"median={self.median():.4f}s, var={self.variance():.6f})"
        )


def summarize_delays(distributions: dict[str, DelayDistribution]) -> dict[str, dict[str, float]]:
    """Summaries of several named distributions (one per protocol/threshold)."""
    return {name: dist.summary() for name, dist in distributions.items() if len(dist) > 0}
