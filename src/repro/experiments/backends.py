"""Pluggable executor backends for the sweep execution plane.

The seed-grid executor (:func:`repro.experiments.grid.run_seed_grid`) used to
fan cells straight into one hard-wired process pool.  This module splits the
*what* (a deterministic list of independent (point × seed) cells) from the
*how* (where and when each cell body runs) behind a small interface:

:class:`InlineBackend`
    Executes cells in the calling process, in submission order — the
    bit-exact serial path (``workers <= 1`` never touches multiprocessing).

:class:`PoolBackend`
    The process pool, upgraded in three ways over the old ``pool.map``:

    * **streaming ordered regroup** — cells are submitted in adaptive chunks
      and collected with ``as_completed``; results are emitted to the
      caller's ``on_result`` callback in submission order as prefixes
      complete, so driver-side merges and checkpoint writes overlap slow
      straggler cells instead of waiting for the whole map;
    * **adaptive chunking** — many-tiny-cell grids amortise per-task dispatch
      over ``len(jobs) / (workers * CHUNKS_PER_WORKER)``-sized chunks instead
      of paying one round-trip per cell;
    * **warm workers** — each worker process keeps recently used network
      snapshots unpickled in memory (see
      :func:`repro.workloads.network_gen.warm_snapshot`) and runs each cell
      that has a ``snapshot_path`` in a short-lived forked child.  The child
      inherits the warm network via copy-on-write and mutates its private
      copy, so a snapshot is loaded once per worker instead of once per
      cell, bit-identically (the cached object is unpickled from the same
      bytes a cold load would read).

Sharding is not a fourth executor: it is a *slice filter* applied by the
:class:`ExecutionPlan` before whichever backend runs (``repro shard run
--shard i/N`` executes the cells whose global submission index is congruent
to ``i`` mod ``N``, and records every other cell as missing).  The same plan
object also carries the checkpoint store, the resume behaviour and the cell
budget, which is what lets every registered experiment inherit all of it
through ``run_seed_grid`` without touching a single driver.

Determinism: the backend choice, worker count, chunking, warm caches, shard
slice and checkpoints never change what a cell computes — each cell derives
all randomness from its own master seed — so any execution plan that
eventually runs every cell yields byte-identical merged results.
"""

from __future__ import annotations

import contextlib
import contextvars
import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, TypeVar

from repro.experiments.checkpoint import CellStore, cell_key
from repro.experiments.config import ExperimentConfig

JobT = TypeVar("JobT")
ResultT = TypeVar("ResultT")

#: Registered backend names, in the order `--backend` documents them.
BACKEND_NAMES = ("auto", "inline", "pool")

#: Target chunks per worker for the adaptive chunk size: small enough to
#: keep workers load-balanced against stragglers, large enough to amortise
#: dispatch on many-tiny-cell grids.
CHUNKS_PER_WORKER = 4

#: Per-worker warm snapshot cache size (distinct snapshots kept unpickled).
#: Grids warm one snapshot per master seed, so the default covers the stock
#: three-seed configuration; tune via ``REPRO_WARM_SNAPSHOTS`` (0 disables).
DEFAULT_WARM_LIMIT = 4


def resolve_workers(workers: int, job_count: int) -> int:
    """Effective process count for ``workers`` over ``job_count`` jobs.

    0 means "one per CPU"; the result is never larger than the number of jobs
    (extra processes would only add fork overhead) and never smaller than 1.
    """
    if workers < 0:
        raise ValueError("workers cannot be negative")
    if workers == 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, job_count))


def _pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context used for worker pools.

    ``fork`` is preferred where available: workers inherit the imported
    package (no re-import per process) and start in milliseconds.  Platforms
    without ``fork`` fall back to the default start method.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def adaptive_chunksize(job_count: int, workers: int) -> int:
    """Chunk size balancing dispatch overhead against load balance."""
    return max(1, job_count // max(1, workers * CHUNKS_PER_WORKER))


def warm_cache_limit() -> int:
    """Warm-snapshot cache entries per worker (``REPRO_WARM_SNAPSHOTS``)."""
    value = os.environ.get("REPRO_WARM_SNAPSHOTS")
    if value is None or not value.strip():
        return DEFAULT_WARM_LIMIT
    return max(0, int(value))


# ------------------------------------------------------------------ backends
class ExecutorBackend:
    """Executes a list of independent cell jobs, preserving submission order.

    Implementations must call ``on_result(index, result)`` in submission
    order (0, 1, 2, ...) as results become available, and return the full
    result list in submission order.  ``job_fn`` and job specs must satisfy
    the usual picklability constraints for any backend that crosses a
    process boundary.
    """

    name = "abstract"

    def run(
        self,
        job_fn: Callable[[JobT], ResultT],
        jobs: Sequence[JobT],
        on_result: Optional[Callable[[int, ResultT], None]] = None,
    ) -> list[ResultT]:
        raise NotImplementedError


class InlineBackend(ExecutorBackend):
    """The bit-exact serial path: cells run inline in the calling process."""

    name = "inline"

    def run(
        self,
        job_fn: Callable[[JobT], ResultT],
        jobs: Sequence[JobT],
        on_result: Optional[Callable[[int, ResultT], None]] = None,
    ) -> list[ResultT]:
        results: list[ResultT] = []
        for index, job in enumerate(jobs):
            result = job_fn(job)
            results.append(result)
            if on_result is not None:
                on_result(index, result)
        return results


class PoolBackend(ExecutorBackend):
    """Process-pool execution with warm workers and streaming regroup.

    Args:
        workers: worker processes; 0 means one per CPU.  A resolved count of
            1 falls back to the inline path (no multiprocessing).
        warm_snapshots: keep recently used network snapshots unpickled per
            worker and run snapshot-backed cells in forked children (see the
            module docstring).  Requires ``os.fork``; silently disabled
            elsewhere.
        chunksize: jobs per pool task; None picks
            :func:`adaptive_chunksize`.
    """

    name = "pool"

    def __init__(
        self,
        workers: int = 0,
        *,
        warm_snapshots: bool = True,
        chunksize: Optional[int] = None,
    ) -> None:
        if workers < 0:
            raise ValueError("workers cannot be negative (0 means one per CPU)")
        self.workers = workers
        self.warm_snapshots = warm_snapshots
        self.chunksize = chunksize

    def run(
        self,
        job_fn: Callable[[JobT], ResultT],
        jobs: Sequence[JobT],
        on_result: Optional[Callable[[int, ResultT], None]] = None,
    ) -> list[ResultT]:
        jobs = list(jobs)
        if not jobs:
            return []
        workers = resolve_workers(self.workers, len(jobs))
        if workers <= 1:
            return InlineBackend().run(job_fn, jobs, on_result)
        context = _pool_context()
        warm = (
            self.warm_snapshots
            and context.get_start_method() == "fork"
            and hasattr(os, "fork")
            and warm_cache_limit() > 0
        )
        chunksize = self.chunksize or adaptive_chunksize(len(jobs), workers)
        chunks = [jobs[start : start + chunksize] for start in range(0, len(jobs), chunksize)]
        results: list[Any] = [None] * len(jobs)
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_init_worker,
            initargs=(warm,),
        ) as pool:
            futures = {
                pool.submit(_run_chunk, job_fn, chunk, warm): chunk_index
                for chunk_index, chunk in enumerate(chunks)
            }
            # Streaming ordered regroup: buffer out-of-order chunks, emit the
            # contiguous prefix as soon as it exists so the caller's merge
            # and checkpoint writes overlap straggler cells.
            buffered: dict[int, list[Any]] = {}
            next_chunk = 0
            emitted = 0
            for future in as_completed(futures):
                buffered[futures[future]] = future.result()
                while next_chunk in buffered:
                    for result in buffered.pop(next_chunk):
                        results[emitted] = result
                        if on_result is not None:
                            on_result(emitted, result)
                        emitted += 1
                    next_chunk += 1
        return results


def make_backend(
    name: str,
    workers: int,
    *,
    warm_snapshots: bool = True,
    chunksize: Optional[int] = None,
) -> ExecutorBackend:
    """Build a backend by registered name (``auto`` picks by worker count)."""
    if name == "auto":
        name = "inline" if resolve_workers(workers, 2) <= 1 else "pool"
    if name == "inline":
        return InlineBackend()
    if name == "pool":
        return PoolBackend(workers, warm_snapshots=warm_snapshots, chunksize=chunksize)
    raise ValueError(f"unknown backend {name!r}; known: {', '.join(BACKEND_NAMES)}")


# ------------------------------------------------------ worker-side machinery
def _init_worker(warm: bool) -> None:
    """Pool-worker initializer: configure the warm snapshot cache once."""
    if warm:
        from repro.workloads import network_gen

        network_gen.configure_snapshot_cache(warm_cache_limit())


def _run_chunk(job_fn: Callable[[Any], Any], chunk: list[Any], warm: bool) -> list[Any]:
    """Execute one chunk of cells inside a pool worker."""
    results = []
    for job in chunk:
        snapshot_path = getattr(job, "snapshot_path", None)
        if warm and snapshot_path is not None:
            results.append(_run_cell_warm(job_fn, job, str(snapshot_path)))
        else:
            results.append(job_fn(job))
    return results


def _run_cell_warm(job_fn: Callable[[Any], Any], job: Any, snapshot_path: str) -> Any:
    """Run one snapshot-backed cell against this worker's warm cache.

    The snapshot is unpickled at most once per worker
    (:func:`~repro.workloads.network_gen.warm_snapshot`); the cell body then
    runs in a forked child whose copy-on-write view of the cached network is
    private, so mutation never leaks between cells and the parent's warm
    copy stays pristine.  Falls back to a plain in-worker call when the
    snapshot cannot be cached (e.g. the cache is disabled).
    """
    from repro.workloads import network_gen

    if not network_gen.warm_snapshot(snapshot_path):
        return job_fn(job)
    return _call_in_fork(_serve_warm_cell, (job_fn, job))


def _serve_warm_cell(payload: tuple[Callable[[Any], Any], Any]) -> Any:
    """Fork-child body: enable cache reads, then run the cell."""
    from repro.workloads import network_gen

    job_fn, job = payload
    network_gen.serve_cached_snapshots(True)
    return job_fn(job)


def _call_in_fork(fn: Callable[[Any], Any], arg: Any) -> Any:
    """Run ``fn(arg)`` in a forked child, returning its pickled result.

    The child writes ``(ok, value)`` down a pipe and ``_exit``\\ s without
    running any inherited cleanup; the parent drains the pipe before reaping
    so results larger than the pipe buffer stream through.
    """
    read_fd, write_fd = os.pipe()
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child process, invisible to coverage
        try:
            os.close(read_fd)
            try:
                payload = pickle.dumps((True, fn(arg)), protocol=pickle.HIGHEST_PROTOCOL)
            except BaseException as exc:
                detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                payload = pickle.dumps((False, detail), protocol=pickle.HIGHEST_PROTOCOL)
            with os.fdopen(write_fd, "wb") as sink:
                sink.write(payload)
        finally:
            os._exit(0)
    os.close(write_fd)
    with os.fdopen(read_fd, "rb") as source:
        data = source.read()
    os.waitpid(pid, 0)
    if not data:
        raise RuntimeError("forked cell exited without returning a result")
    ok, value = pickle.loads(data)
    if not ok:
        raise RuntimeError(f"forked cell failed:\n{value}")
    return value


# ------------------------------------------------------------ execution plan
class MissingCell:
    """Placeholder for a cell this invocation did not produce.

    A shard run (or a budget-limited run) legitimately leaves cells
    unproduced; any attempt to *use* one fails loudly so a driver merge
    cannot silently aggregate a hole.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<missing cell>"

    def __getattr__(self, name: str) -> Any:
        raise AttributeError(
            "this grid cell was not produced by this invocation (shard slice "
            "or cell budget); merge via `repro shard merge` or resume the run"
        )


#: The shared missing-cell placeholder.
MISSING = MissingCell()


class GridIncomplete(RuntimeError):
    """Raised when an execution plan finished without producing every cell.

    This is the *expected* outcome of a shard run (each shard produces only
    its slice) and of a ``--max-cells``-limited run; the completed cells are
    already checkpointed, so the caller resumes or merges rather than
    retrying from scratch.
    """

    def __init__(self, plan: "ExecutionPlan", cause: Optional[BaseException] = None):
        self.plan = plan
        detail = (
            f"{plan.cells_executed} cell(s) executed, {plan.cells_cached} loaded "
            f"from checkpoints, {plan.cells_missing} not produced"
        )
        if plan.store is not None:
            detail += f" (completed cells are under {plan.store.root})"
        super().__init__(f"sweep incomplete: {detail}")
        self.__cause__ = cause


@dataclass
class ExecutionPlan:
    """How one experiment invocation executes its grid cells.

    The plan is orthogonal to the experiment configuration on purpose: none
    of its knobs appear in cell keys or envelopes, because none of them can
    change a cell's result — only whether/where/when it runs.

    Attributes:
        backend: ``"auto"`` (inline when the effective worker count is 1,
            pool otherwise), ``"inline"`` or ``"pool"``.
        workers: overrides ``config.workers`` when set.
        store: checkpoint store; when set, completed cells are persisted
            immediately and previously completed cells are loaded instead of
            re-executed.
        shard_index / shard_count: execute only cells whose global
            submission index is congruent to ``shard_index`` mod
            ``shard_count`` (requires ``store``; every other cell is
            recorded as missing).
        max_cells: execute at most this many cells, then record the rest as
            missing — a deterministic "interrupt after N cells" used for
            time-boxed runs and the kill-and-resume tests.
        execute: when False, never run a cell body — every cell must come
            from the store (the strict ``repro shard merge`` mode).
        warm_snapshots: enable the pool backend's warm-worker snapshot reuse.
        chunksize: override the pool backend's adaptive chunk size.
        snapshot_dir: persistent directory drivers should build network
            snapshots under (defaults to each driver's own choice).
        experiment: registry name, set by ``run_experiment`` — the cell-key
            namespace.
    """

    backend: str = "auto"
    workers: Optional[int] = None
    store: Optional[CellStore] = None
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None
    max_cells: Optional[int] = None
    execute: bool = True
    warm_snapshots: bool = True
    chunksize: Optional[int] = None
    snapshot_dir: Optional[str] = None
    experiment: Optional[str] = None

    # Progress accounting, filled in as grids execute.
    cells_executed: int = 0
    cells_cached: int = 0
    cells_missing: int = 0
    missing_cell_keys: list[str] = field(default_factory=list)
    _next_cell_index: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r}; known: {', '.join(BACKEND_NAMES)}"
            )
        if (self.shard_index is None) != (self.shard_count is None):
            raise ValueError("shard_index and shard_count must be set together")
        if self.shard_count is not None:
            if self.shard_count <= 0:
                raise ValueError("shard_count must be positive")
            if not 0 <= self.shard_index < self.shard_count:
                raise ValueError(
                    f"shard_index must be in [0, {self.shard_count}), got {self.shard_index}"
                )
            if self.store is None:
                raise ValueError("shard execution requires a cell store")
        if self.max_cells is not None and self.max_cells < 0:
            raise ValueError("max_cells cannot be negative")
        if not self.execute and self.store is None:
            raise ValueError("execute=False requires a cell store to load from")

    # ------------------------------------------------------------- accounting
    @property
    def incomplete(self) -> bool:
        """Whether at least one cell was neither executed nor loaded."""
        return self.cells_missing > 0

    def progress(self) -> dict[str, int]:
        """Counters for logs, manifests and the shard CLI."""
        return {
            "cells_executed": self.cells_executed,
            "cells_cached": self.cells_cached,
            "cells_missing": self.cells_missing,
            "cells_total": self._next_cell_index,
        }

    # -------------------------------------------------------------- execution
    def _in_slice(self, global_index: int) -> bool:
        if self.shard_count is None:
            return True
        return global_index % self.shard_count == self.shard_index

    def resolve_backend(self, config: ExperimentConfig) -> ExecutorBackend:
        """The executor this plan uses for one grid."""
        workers = self.workers if self.workers is not None else config.workers
        return make_backend(
            self.backend,
            workers,
            warm_snapshots=self.warm_snapshots,
            chunksize=self.chunksize,
        )

    def run_cells(
        self,
        job_fn: Callable[[JobT], ResultT],
        jobs: Sequence[JobT],
        config: ExperimentConfig,
    ) -> list[Any]:
        """Execute one grid's cells under this plan, in submission order.

        Cached cells are loaded from the store; cells outside the shard
        slice or beyond the budget become :data:`MISSING`; the rest run on
        the resolved backend, with each completed result checkpointed the
        moment the streaming regroup emits it.
        """
        jobs = list(jobs)
        keys: Optional[list[str]] = None
        if self.store is not None:
            namespace = self.experiment or f"{job_fn.__module__}.{job_fn.__qualname__}"
            keys = [cell_key(namespace, job) for job in jobs]

        results: list[Any] = [MISSING] * len(jobs)
        pending: list[int] = []
        for position, job in enumerate(jobs):
            global_index = self._next_cell_index
            self._next_cell_index += 1
            if keys is not None and self.store.has(keys[position]):
                results[position] = self.store.load(keys[position])
                self.cells_cached += 1
                continue
            if not self.execute or not self._in_slice(global_index):
                self._record_missing(keys, position)
                continue
            pending.append(position)

        if self.max_cells is not None:
            budget = max(0, self.max_cells - self.cells_executed)
            for position in pending[budget:]:
                self._record_missing(keys, position)
            pending = pending[:budget]

        if pending:
            backend = self.resolve_backend(config)
            store = self.store

            def on_result(emitted: int, result: Any) -> None:
                position = pending[emitted]
                results[position] = result
                self.cells_executed += 1
                if store is not None and keys is not None:
                    store.save(keys[position], result)

            backend.run(job_fn, [jobs[position] for position in pending], on_result)
        return results

    def _record_missing(self, keys: Optional[list[str]], position: int) -> None:
        self.cells_missing += 1
        if keys is not None:
            self.missing_cell_keys.append(keys[position])


# ------------------------------------------------------------- active plan
_ACTIVE_PLAN: contextvars.ContextVar[Optional[ExecutionPlan]] = contextvars.ContextVar(
    "repro_execution_plan", default=None
)


def current_plan() -> Optional[ExecutionPlan]:
    """The plan installed by the innermost :func:`use_plan`, if any."""
    return _ACTIVE_PLAN.get()


@contextlib.contextmanager
def use_plan(plan: ExecutionPlan):
    """Install ``plan`` as the active execution plan for the enclosed code.

    ``run_experiment`` wraps each driver call in this, which is how every
    ``run_seed_grid`` call inside the driver — however deeply nested —
    inherits the backend, checkpoint store and shard slice without any
    driver-signature changes.
    """
    token = _ACTIVE_PLAN.set(plan)
    try:
        yield plan
    finally:
        _ACTIVE_PLAN.reset(token)
