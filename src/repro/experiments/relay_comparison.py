"""Ext-7 — relay comparison: block propagation under flood, compact, push,
adaptive and headers-first relay.

The paper evaluates its proximity overlays under a single relay protocol —
the legacy INV/GETDATA flood.  Real deployments changed that layer (BIP 152
compact blocks, Bitcoin-XT-style unsolicited push, BIP 130 headers-first
announcements), and the two axes are orthogonal: the overlay decides *where*
links are, the relay strategy decides *what travels over them*.  This
experiment crosses the two.  For every (relay, policy) pair it builds the
policy's overlay with every node running the given
:class:`~repro.protocol.relay.RelayStrategy`, fills mempools with fresh
transactions, mines a series of blocks and measures

* the block propagation Δt distribution (mined -> accepted, per node),
* relay messages and bytes per block (the Fig. 4-style overhead axis, now
  for the block plane), and
* the strategy's own work counters (compact reconstructions, fallback
  fetches, unsolicited pushes, adaptive fan-out changes, headers sync work).

The headline verdicts: compact relay needs *fewer messages per block* than
flood on every policy (header + short ids replace the INV/GETDATA/BLOCK
triple) and propagates *faster* (one hop sheds a full request round-trip).
The adaptive strategy asks the sharper question: does the paper's clustered
overlay still beat the vanilla one once the relay layer itself learns which
neighbours are fast (``clustering_beats_vanilla_under_adaptive``), and does
the adaptation narrow the overlay's advantage
(``adaptive_narrows_clustering_advantage``)?

(relay, protocol, seed) campaigns are independent simulations; they fan out
over :class:`~repro.experiments.parallel.ParallelRunner` and merge in
submission order, so aggregates are identical for every worker count.

Run from the command line::

    PYTHONPATH=src python -m repro.experiments run relay_comparison \
        --nodes 120 --seeds 3 11 --relays flood compact --blocks 4 --workers 0
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.samples import BlockArrivalRecorder, SampleLog
from repro.analysis.stats import mean
from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import RelayJob, RelayJobResult, run_relay_job
from repro.experiments.reporting import ExperimentReport, format_table
from repro.measurement.stats import DelayDistribution
from repro.protocol.relay import validate_relay_name

#: Relay strategies compared by default, flood (the paper's baseline) first.
RELAY_SWEEP = ("flood", "compact", "push", "adaptive", "headers")

#: Policies the relay strategies are crossed with.
RELAY_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")

#: Commands that carry block payloads (the "block bytes" the bench guards).
BLOCK_PAYLOAD_COMMANDS = ("block", "cmpctblock", "blocktxn")


@dataclass
class RelayComparisonResult:
    """Pooled measurements for one (relay, protocol) pair.

    Attributes:
        relay: relay-strategy name.
        protocol: policy label.
        delays: block Δt samples pooled across seeds (miner excluded).
        per_seed: block Δt distribution per master seed.
        blocks_measured: blocks mined and tracked across all seeds.
        relay_messages: protocol messages attributed to block propagation.
        relay_bytes: bytes attributed to block propagation.
        block_payload_bytes: bytes of the block-carrying commands only
            (:data:`BLOCK_PAYLOAD_COMMANDS`).
        message_breakdown: per-command message counts, summed across seeds.
        coverages: per-block fraction of nodes reached within the horizon.
        compact_blocks_reconstructed / compact_txs_requested /
            compact_fallbacks / compact_txn_timeouts: compact-strategy work,
            summed across nodes.
        blocks_pushed: unsolicited full-block pushes (push strategy).
        adaptive_fanout_widened / adaptive_fanout_narrowed: fan-out width
            changes made by the adaptive strategy, summed across nodes.
        mean_final_fanouts: per-seed mean effective fan-out width at the end
            of the campaign (adaptive strategy only).
        fanout_samples: pooled (time, width) fan-out change samples.
        getheaders_sent / headers_received / header_bodies_requested:
            headers-first sync work, summed across nodes.
    """

    relay: str
    protocol: str
    delays: DelayDistribution = field(default_factory=DelayDistribution)
    per_seed: dict[int, DelayDistribution] = field(default_factory=dict)
    blocks_measured: int = 0
    relay_messages: int = 0
    relay_bytes: int = 0
    block_payload_bytes: int = 0
    message_breakdown: Counter = field(default_factory=Counter)
    coverages: list[float] = field(default_factory=list)
    compact_blocks_reconstructed: int = 0
    compact_txs_requested: int = 0
    compact_fallbacks: int = 0
    compact_txn_timeouts: int = 0
    blocks_pushed: int = 0
    adaptive_fanout_widened: int = 0
    adaptive_fanout_narrowed: int = 0
    mean_final_fanouts: list[float] = field(default_factory=list)
    fanout_samples: list[tuple[float, int]] = field(default_factory=list)
    getheaders_sent: int = 0
    headers_received: int = 0
    header_bodies_requested: int = 0

    @property
    def label(self) -> str:
        """The combined ``relay/protocol`` result key."""
        return f"{self.relay}/{self.protocol}"

    def messages_per_block(self) -> float:
        """Mean relay messages spent propagating one block."""
        if not self.blocks_measured:
            return float("nan")
        return self.relay_messages / self.blocks_measured

    def bytes_per_block(self) -> float:
        """Mean relay bytes spent propagating one block."""
        if not self.blocks_measured:
            return float("nan")
        return self.relay_bytes / self.blocks_measured

    def block_payload_bytes_per_block(self) -> float:
        """Mean bytes of block-carrying commands per block."""
        if not self.blocks_measured:
            return float("nan")
        return self.block_payload_bytes / self.blocks_measured

    def mean_coverage(self) -> float:
        """Mean fraction of nodes reached per block within the horizon."""
        if not self.coverages:
            return 0.0
        return mean(self.coverages)

    def mean_final_fanout(self) -> float:
        """Mean end-of-campaign fan-out width (adaptive strategy only)."""
        if not self.mean_final_fanouts:
            return float("nan")
        return mean(self.mean_final_fanouts)

    def summary(self) -> dict[str, float]:
        """Scalar summary for the result envelope."""
        base = self.delays.summary() if len(self.delays) else {"count": 0.0}
        summary = {
            **base,
            "messages_per_block": self.messages_per_block(),
            "bytes_per_block": self.bytes_per_block(),
            "block_payload_bytes_per_block": self.block_payload_bytes_per_block(),
            "mean_coverage": self.mean_coverage(),
        }
        if self.relay == "adaptive":
            summary["mean_final_fanout"] = self.mean_final_fanout()
            summary["fanout_widened"] = float(self.adaptive_fanout_widened)
            summary["fanout_narrowed"] = float(self.adaptive_fanout_narrowed)
        if self.relay == "headers":
            summary["getheaders_sent"] = float(self.getheaders_sent)
            summary["header_bodies_requested"] = float(self.header_bodies_requested)
        return summary


# ----------------------------------------------------------------- job body
def run_relay_seed(job: RelayJob) -> RelayJobResult:
    """Execute one (relay, protocol, seed) campaign — process-pool entry point."""
    # Imported lazily: parallel.py is config-level and imports us back.
    from repro.protocol.mining import MiningProcess, equal_hash_power
    from repro.workloads.generators import fund_nodes
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    config = job.config
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=config.node_count, seed=job.seed),
        latency_threshold_s=job.threshold_s,
        max_outbound=config.max_outbound,
        relay=job.relay,
    )
    simulated = scenario.network
    network = simulated.network
    simulator = simulated.simulator
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=config.funding_outputs)

    ids = simulated.node_ids()
    nodes = list(simulated.nodes.values())

    # The shared block-plane observer: per block hash, node id -> acceptance
    # time in event order (via every node's block_listeners).
    recorder = BlockArrivalRecorder()
    recorder.attach(nodes)

    mining = MiningProcess(
        simulator,
        simulated.nodes,
        equal_hash_power(ids),
        simulator.random.stream("relay-mining"),
    )

    delays = DelayDistribution()
    coverages: list[float] = []
    relay_messages = 0
    relay_bytes = 0
    block_payload_bytes = 0
    breakdown: Counter[str] = Counter()
    blocks_measured = 0
    creator_cursor = 0

    for _ in range(job.blocks):
        # Refill mempools so the next block confirms real transactions (and
        # compact receivers have something to reconstruct from), then let the
        # transaction flood drain completely before the measured window.
        for _ in range(job.txs_per_block):
            creator = simulated.node(ids[creator_cursor % len(ids)])
            creator_cursor += 1
            creator.create_transaction(
                [(creator.keypair.address, config.payment_satoshi)]
            )
        simulator.run(until=simulator.now + 10.0)

        before_messages = network.total_messages()
        before_bytes = network.total_bytes()
        before_commands = Counter(network.messages_sent)
        before_command_bytes = Counter(network.bytes_sent)

        block = mining.mine_one_block()
        if block is None:  # pragma: no cover - static scenarios are always online
            continue
        mined_at = simulator.now
        deadline = mined_at + job.block_horizon_s
        while simulator.now < deadline:
            if all(node.blockchain.has_block(block.block_hash) for node in nodes):
                break
            simulator.run(until=min(simulator.now + 0.5, deadline))

        blocks_measured += 1
        delays.extend(
            recorder.delays(block.block_hash, mined_at, exclude=(block.header.miner_id,))
        )
        coverages.append(len(recorder.receivers(block.block_hash)) / len(nodes))
        relay_messages += network.total_messages() - before_messages
        relay_bytes += network.total_bytes() - before_bytes
        breakdown.update(Counter(network.messages_sent) - before_commands)
        command_bytes = Counter(network.bytes_sent) - before_command_bytes
        block_payload_bytes += sum(
            command_bytes.get(command, 0) for command in BLOCK_PAYLOAD_COMMANDS
        )

    # Adaptive-strategy fan-out telemetry: the final effective width per node
    # and the (time, width) change samples, merged time-ordered across nodes.
    mean_final_fanout = float("nan")
    fanout_samples: tuple[tuple[float, int], ...] = ()
    if job.relay == "adaptive":
        mean_final_fanout = mean(
            [float(node.relay.effective_fanout()) for node in nodes]
        )
        fanout_samples = tuple(
            sorted(
                (sample for node in nodes for sample in node.relay.fanout_history),
                key=lambda sample: sample[0],
            )
        )

    return RelayJobResult(
        relay=job.relay,
        protocol=job.protocol,
        seed=job.seed,
        block_delay_samples=tuple(delays.samples),
        blocks_measured=blocks_measured,
        relay_messages=relay_messages,
        relay_bytes=relay_bytes,
        block_payload_bytes=block_payload_bytes,
        message_breakdown=dict(breakdown),
        coverage=mean(coverages) if coverages else 0.0,
        compact_blocks_reconstructed=sum(
            node.stats.compact_blocks_reconstructed for node in nodes
        ),
        compact_txs_requested=sum(node.stats.compact_txs_requested for node in nodes),
        compact_fallbacks=sum(node.stats.compact_fallbacks for node in nodes),
        blocks_pushed=sum(node.stats.blocks_pushed for node in nodes),
        compact_txn_timeouts=sum(node.stats.compact_txn_timeouts for node in nodes),
        adaptive_fanout_widened=sum(
            node.stats.adaptive_fanout_widened for node in nodes
        ),
        adaptive_fanout_narrowed=sum(
            node.stats.adaptive_fanout_narrowed for node in nodes
        ),
        mean_final_fanout=mean_final_fanout,
        fanout_samples=fanout_samples,
        getheaders_sent=sum(node.stats.getheaders_sent for node in nodes),
        headers_received=sum(node.stats.headers_received for node in nodes),
        header_bodies_requested=sum(
            node.stats.header_bodies_requested for node in nodes
        ),
    )


def collect_samples(results: dict[str, RelayComparisonResult]) -> SampleLog:
    """Raw block-propagation samples for the envelope's ``samples`` field.

    One ``block_delay_s`` series per (relay/protocol, seed) — the merge's
    insertion order, so the pooled concatenation is worker-count invariant —
    plus the per-campaign ``coverage`` curve.
    """
    log = SampleLog()
    for key, result in results.items():
        log.add_per_seed(
            key,
            "block_delay_s",
            {seed: dist.samples for seed, dist in result.per_seed.items()},
            unit="s",
        )
        for index, coverage in enumerate(result.coverages):
            log.add_point(key, "coverage", float(index), coverage, unit="fraction")
        for time_s, width in result.fanout_samples:
            log.add_point(key, "fanout_width", time_s, float(width), unit="peers")
    return log


# ------------------------------------------------------------------- driver
@experiment(
    "relay_comparison",
    experiment_id="Ext-7",
    title="Block propagation and per-block overhead across relay strategies",
    description=__doc__,
    protocols=RELAY_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--relays",
            dest="relays",
            type=str,
            nargs="+",
            help="relay strategies to sweep (default: flood compact push adaptive headers)",
            convert=tuple,
        ),
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="policies to cross with (default: bitcoin lbc bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
        ExperimentOption(
            flag="--blocks",
            dest="blocks",
            type=int,
            help="blocks mined per (relay, protocol, seed) campaign (default: 3)",
        ),
        ExperimentOption(
            flag="--txs-per-block",
            dest="txs_per_block",
            type=int,
            help="fresh transactions injected before each block (default: 8)",
        ),
        ExperimentOption(
            flag="--block-horizon",
            dest="block_horizon_s",
            type=float,
            help="simulated seconds allowed per block to reach every node (default: 30)",
        ),
    ),
    report=lambda results: build_report(results),
    summarize=lambda results: {key: result.summary() for key, result in results.items()},
    collect_samples=collect_samples,
    verdicts={
        "compact_fewer_messages_per_block": lambda results: compact_beats_flood(
            results, lambda r: r.messages_per_block()
        ),
        "compact_faster_block_propagation": lambda results: compact_beats_flood(
            results, lambda r: r.delays.mean() if len(r.delays) else float("inf")
        ),
        "clustering_beats_vanilla_under_adaptive": lambda results: (
            clustering_beats_vanilla_under_adaptive(results)
        ),
        "adaptive_narrows_clustering_advantage": lambda results: (
            adaptive_narrows_clustering_advantage(results)
        ),
    },
    exit_verdict="compact_fewer_messages_per_block",
)
def run_relay_comparison(
    config: Optional[ExperimentConfig] = None,
    *,
    relays: Sequence[str] = RELAY_SWEEP,
    protocols: Sequence[str] = RELAY_PROTOCOLS,
    blocks: int = 3,
    txs_per_block: int = 8,
    block_horizon_s: float = 30.0,
) -> dict[str, RelayComparisonResult]:
    """Cross relay strategies with policies and pool results per pair.

    Args:
        config: shared experiment configuration.
        relays: relay-strategy names (validated against
            :data:`~repro.protocol.relay.RELAY_NAMES`).
        protocols: policy names to cross with.
        blocks: blocks mined per campaign.
        txs_per_block: transactions injected before each block.
        block_horizon_s: per-block propagation horizon in simulated seconds.

    Returns:
        ``"relay/protocol"`` -> pooled :class:`RelayComparisonResult`.
    """
    cfg = config if config is not None else ExperimentConfig()
    if blocks <= 0:
        raise ValueError("blocks must be positive")
    if txs_per_block < 0:
        raise ValueError("txs_per_block cannot be negative")
    if block_horizon_s <= 0:
        raise ValueError("block_horizon_s must be positive")
    for relay in relays:
        validate_relay_name(relay)

    points = [(relay, protocol) for relay in relays for protocol in protocols]

    def make_job(point: tuple[str, str], seed: int) -> RelayJob:
        relay, protocol = point
        return RelayJob(
            relay=relay,
            protocol=protocol,
            seed=seed,
            blocks=blocks,
            txs_per_block=txs_per_block,
            block_horizon_s=block_horizon_s,
            threshold_s=cfg.latency_threshold_s,
            config=cfg,
        )

    grid = run_seed_grid(points, make_job, run_relay_job, cfg)

    # Merge in submission order — identical aggregates for every worker count.
    results: dict[str, RelayComparisonResult] = {}
    for (relay, protocol), seed_results in grid:
        key = f"{relay}/{protocol}"
        pooled = results.get(key)
        if pooled is None:
            pooled = results[key] = RelayComparisonResult(relay=relay, protocol=protocol)
        for seed, job_result in zip(cfg.seeds, seed_results):
            seed_delays = DelayDistribution(list(job_result.block_delay_samples))
            pooled.delays = pooled.delays.merge(seed_delays)
            pooled.per_seed[seed] = seed_delays
            pooled.blocks_measured += job_result.blocks_measured
            pooled.relay_messages += job_result.relay_messages
            pooled.relay_bytes += job_result.relay_bytes
            pooled.block_payload_bytes += job_result.block_payload_bytes
            pooled.message_breakdown.update(job_result.message_breakdown)
            pooled.coverages.append(job_result.coverage)
            pooled.compact_blocks_reconstructed += job_result.compact_blocks_reconstructed
            pooled.compact_txs_requested += job_result.compact_txs_requested
            pooled.compact_fallbacks += job_result.compact_fallbacks
            pooled.compact_txn_timeouts += job_result.compact_txn_timeouts
            pooled.blocks_pushed += job_result.blocks_pushed
            pooled.adaptive_fanout_widened += job_result.adaptive_fanout_widened
            pooled.adaptive_fanout_narrowed += job_result.adaptive_fanout_narrowed
            if relay == "adaptive":
                pooled.mean_final_fanouts.append(job_result.mean_final_fanout)
            pooled.fanout_samples.extend(job_result.fanout_samples)
            pooled.getheaders_sent += job_result.getheaders_sent
            pooled.headers_received += job_result.headers_received
            pooled.header_bodies_requested += job_result.header_bodies_requested
    return results


def _pair_mean_delay(results: dict[str, RelayComparisonResult], key: str) -> float:
    """Mean block Δt of one ``relay/protocol`` cell, NaN when unmeasured."""
    result = results.get(key)
    if result is None or not len(result.delays):
        return float("nan")
    return result.delays.mean()


def clustering_beats_vanilla_under_adaptive(
    results: dict[str, RelayComparisonResult],
) -> bool:
    """Does BCBPT still out-propagate the vanilla overlay once relay adapts?

    The paper's speedup is measured under dumb flooding; an adaptive relay
    that concentrates fan-out on fast, useful neighbours does part of the
    overlay's job on its own.  This verdict checks the headline claim
    survives: blocks still reach the network faster on the clustered overlay
    than on the random one when *both* run the adaptive strategy.
    """
    bcbpt = _pair_mean_delay(results, "adaptive/bcbpt")
    vanilla = _pair_mean_delay(results, "adaptive/bitcoin")
    if bcbpt != bcbpt or vanilla != vanilla:  # NaN: cells not measured
        return False
    return bcbpt < vanilla


def adaptive_narrows_clustering_advantage(
    results: dict[str, RelayComparisonResult],
) -> bool:
    """Does the adaptive relay shrink BCBPT's Δt advantage over vanilla?

    The advantage is the vanilla/BCBPT mean-Δt ratio (>1 means the clustered
    overlay is faster).  True when the ratio under the adaptive strategy is
    smaller than under flood — the relay layer recovered part of the gain the
    paper attributes to the overlay.
    """
    flood_ratio = _pair_mean_delay(results, "flood/bitcoin") / _pair_mean_delay(
        results, "flood/bcbpt"
    )
    adaptive_ratio = _pair_mean_delay(results, "adaptive/bitcoin") / _pair_mean_delay(
        results, "adaptive/bcbpt"
    )
    if flood_ratio != flood_ratio or adaptive_ratio != adaptive_ratio:
        return False
    return adaptive_ratio < flood_ratio


def compact_beats_flood(
    results: dict[str, RelayComparisonResult],
    metric,
) -> bool:
    """Whether compact relay improves ``metric`` over flood for every policy.

    Only policies measured under *both* strategies participate; the verdict
    fails when no such pair exists (nothing was actually compared).
    """
    compared = 0
    for key, compact in results.items():
        relay, _, protocol = key.partition("/")
        if relay != "compact":
            continue
        flood = results.get(f"flood/{protocol}")
        if flood is None:
            continue
        compared += 1
        if not metric(compact) < metric(flood):
            return False
    return compared > 0


def build_report(results: dict[str, RelayComparisonResult]) -> ExperimentReport:
    """Turn relay-comparison results into a structured text report."""
    report = ExperimentReport(
        experiment_id="Ext-7",
        description="Block propagation and per-block overhead by relay strategy",
    )
    delay_rows = []
    for key, result in results.items():
        summary = result.delays.summary() if len(result.delays) else {}
        delay_rows.append(
            [
                key,
                len(result.delays),
                summary.get("mean_s", float("nan")) * 1e3,
                summary.get("variance_s2", float("nan")) * 1e6,
                result.mean_coverage(),
            ]
        )
    report.add_section(
        "Block Δt by relay strategy (ms / ms²)",
        format_table(
            ["relay/protocol", "samples", "mean", "variance", "coverage"], delay_rows
        ),
    )
    overhead_rows = [
        [
            key,
            result.blocks_measured,
            result.messages_per_block(),
            result.bytes_per_block() / 1e3,
            result.block_payload_bytes_per_block() / 1e3,
        ]
        for key, result in results.items()
    ]
    report.add_section(
        "Per-block overhead (messages / kB)",
        format_table(
            ["relay/protocol", "blocks", "msgs/block", "kB/block", "block-kB/block"],
            overhead_rows,
        ),
    )
    strategy_rows = [
        [
            key,
            result.compact_blocks_reconstructed,
            result.compact_txs_requested,
            result.compact_fallbacks,
            result.compact_txn_timeouts,
            result.blocks_pushed,
        ]
        for key, result in results.items()
        if result.relay in ("compact", "push")
    ]
    if strategy_rows:
        report.add_section(
            "Strategy work counters",
            format_table(
                [
                    "relay/protocol",
                    "reconstructed",
                    "txs fetched",
                    "fallbacks",
                    "timeouts",
                    "pushes",
                ],
                strategy_rows,
            ),
        )
    adaptive_rows = [
        [
            key,
            result.adaptive_fanout_widened,
            result.adaptive_fanout_narrowed,
            result.mean_final_fanout(),
        ]
        for key, result in results.items()
        if result.relay == "adaptive"
    ]
    if adaptive_rows:
        report.add_section(
            "Adaptive fan-out",
            format_table(
                ["relay/protocol", "widened", "narrowed", "final width"],
                adaptive_rows,
            ),
        )
    headers_rows = [
        [
            key,
            result.getheaders_sent,
            result.headers_received,
            result.header_bodies_requested,
        ]
        for key, result in results.items()
        if result.relay == "headers"
    ]
    if headers_rows:
        report.add_section(
            "Headers-first sync",
            format_table(
                ["relay/protocol", "getheaders", "headers", "bodies fetched"],
                headers_rows,
            ),
        )
    report.add_data("summaries", {key: r.summary() for key, r in results.items()})
    report.add_data("results", results)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """Module-CLI shim; forwards to ``repro run relay_comparison``."""
    return deprecated_main("relay_comparison", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
