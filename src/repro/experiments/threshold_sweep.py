"""Ext-1 — fine-grained latency-threshold sweep (extends Fig. 4).

The paper asks "the optimal latency distance threshold that can speed up
information propagation" but only evaluates three values.  This extension
sweeps a wider range (including the Fig. 3 value of 25 ms), and reports, for
every threshold, the Δt summary alongside the cluster structure and average
link RTT — making explicit the mechanism the paper proposes (smaller
threshold ⇒ smaller clusters with shorter links ⇒ lower delay variance) and
exposing the connectivity cost of very small thresholds.

Run via ``python -m repro.experiments run threshold_sweep``;
``python -m repro.experiments.threshold_sweep`` remains as a deprecated shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import ThresholdJob, run_threshold_job
from repro.experiments.reporting import ExperimentReport, format_table
from repro.measurement.stats import DelayDistribution

#: Default sweep, in seconds (10 ms .. 200 ms, including the paper's values).
DEFAULT_THRESHOLDS_S = (0.010, 0.025, 0.030, 0.050, 0.075, 0.100, 0.150, 0.200)


@dataclass(frozen=True)
class ThresholdPoint:
    """Measurements for one threshold value."""

    threshold_s: float
    mean_delay_s: float
    median_delay_s: float
    variance_s2: float
    p90_delay_s: float
    cluster_count: float
    mean_cluster_size: float
    mean_link_rtt_s: float
    long_link_fraction: float


def build_report(points: list[ThresholdPoint]) -> ExperimentReport:
    """Render the sweep as a report table."""
    report = ExperimentReport(
        experiment_id="Ext-1",
        description="Fine-grained BCBPT latency-threshold sweep",
    )
    rows = [
        [
            f"{point.threshold_s * 1000:.0f} ms",
            point.mean_delay_s * 1e3,
            point.median_delay_s * 1e3,
            point.variance_s2 * 1e6,
            point.p90_delay_s * 1e3,
            point.cluster_count,
            point.mean_cluster_size,
            point.mean_link_rtt_s * 1e3,
            point.long_link_fraction,
        ]
        for point in points
    ]
    report.add_section(
        "Threshold sweep",
        format_table(
            [
                "d_t",
                "mean_ms",
                "median_ms",
                "var_ms2",
                "p90_ms",
                "clusters",
                "mean size",
                "link RTT ms",
                "long-link frac",
            ],
            rows,
        ),
    )
    report.add_data("points", points)
    return report


def summarize(points: list[ThresholdPoint]) -> dict[str, dict[str, float]]:
    """Per-threshold scalar summaries for the result envelope."""
    from dataclasses import asdict

    return {f"{point.threshold_s * 1000:g}ms": asdict(point) for point in points}


@experiment(
    "threshold_sweep",
    experiment_id="Ext-1",
    title="Fine-grained BCBPT latency-threshold sweep",
    description=__doc__,
    protocols=("bcbpt",),
    options=(
        ExperimentOption(
            flag="--thresholds-ms",
            dest="thresholds_ms",
            type=float,
            nargs="+",
            help="thresholds to sweep, in milliseconds "
            "(default: 10 25 30 50 75 100 150 200)",
            convert=lambda values: tuple(t / 1000.0 for t in values),
            kwarg="thresholds_s",
        ),
    ),
    report=build_report,
    summarize=summarize,
)
def run_threshold_sweep(
    config: Optional[ExperimentConfig] = None,
    thresholds_s: Sequence[float] = DEFAULT_THRESHOLDS_S,
) -> list[ThresholdPoint]:
    """Measure BCBPT across a range of latency thresholds.

    Each (threshold, seed) point is an independent simulation; the shared
    seed-grid executor fans them out over ``cfg.workers`` processes and
    regroups in submission order, so the sweep result is identical for every
    worker count.
    """
    cfg = config if config is not None else ExperimentConfig()

    def make_job(threshold: float, seed: int) -> ThresholdJob:
        return ThresholdJob(threshold_s=threshold, seed=seed, config=cfg)

    grid = run_seed_grid(thresholds_s, make_job, run_threshold_job, cfg)

    points: list[ThresholdPoint] = []
    for threshold, seed_results in grid:
        delays = DelayDistribution()
        cluster_counts: list[float] = []
        cluster_sizes: list[float] = []
        link_rtts: list[float] = []
        long_fractions: list[float] = []
        for seed_result in seed_results:
            delays.extend(seed_result.delay_samples)
            cluster_counts.append(seed_result.cluster_count)
            cluster_sizes.append(seed_result.mean_cluster_size)
            if seed_result.mean_link_rtt_s is not None:
                link_rtts.append(seed_result.mean_link_rtt_s)
            if seed_result.long_link_fraction is not None:
                long_fractions.append(seed_result.long_link_fraction)
        stats = delays.summary()
        points.append(
            ThresholdPoint(
                threshold_s=threshold,
                mean_delay_s=stats["mean_s"],
                median_delay_s=stats["median_s"],
                variance_s2=stats["variance_s2"],
                p90_delay_s=stats["p90_s"],
                cluster_count=sum(cluster_counts) / len(cluster_counts),
                mean_cluster_size=sum(cluster_sizes) / len(cluster_sizes),
                mean_link_rtt_s=sum(link_rtts) / len(link_rtts) if link_rtts else float("nan"),
                long_link_fraction=(
                    sum(long_fractions) / len(long_fractions) if long_fractions else float("nan")
                ),
            )
        )
    return points


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run threshold_sweep``."""
    return deprecated_main("threshold_sweep", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
