"""Experiment drivers that regenerate the paper's figures (and extensions).

Each module corresponds to one experiment in DESIGN.md's index:

* :mod:`repro.experiments.fig3` — Fig. 3: Δt distribution for vanilla Bitcoin
  vs LBC vs BCBPT at ``d_t`` = 25 ms;
* :mod:`repro.experiments.fig4` — Fig. 4: Δt distribution for BCBPT at
  ``d_t`` ∈ {30, 50, 100} ms;
* :mod:`repro.experiments.threshold_sweep` — Ext-1: fine-grained threshold
  sweep with cluster-size statistics;
* :mod:`repro.experiments.overhead` — Ext-2: measurement/control overhead of
  each protocol (the cost the paper defers to future work);
* :mod:`repro.experiments.attacks` — Ext-3: eclipse and partition attack
  susceptibility of clustered topologies;
* :mod:`repro.experiments.doublespend` — Ext-4: double-spend race success as a
  function of propagation delay;
* :mod:`repro.experiments.ablation` — Ext-5: verification-delay and
  long-distance-link ablations of the BCBPT design;
* :mod:`repro.experiments.churn_resilience` — Ext-6: propagation delay and
  cluster quality under live join/leave churn with cluster maintenance;
* :mod:`repro.experiments.relay_comparison` — Ext-7: block propagation and
  per-block overhead under flood vs compact-block vs push relay, crossed
  with every overlay policy;
* :mod:`repro.experiments.validation` — Val-1: simulator validation against
  published real-network propagation shapes.

They all build on :class:`repro.experiments.runner.PropagationExperiment` and
report through :mod:`repro.experiments.reporting`.

Every driver registers itself with the declarative registry
(:mod:`repro.experiments.api`) and is reachable through the unified CLI::

    python -m repro.experiments list
    python -m repro.experiments run fig3 --nodes 200 --runs 10 --workers 4

Results persist as JSON envelopes in a :class:`~repro.experiments.results.
ResultStore` under ``results/`` and can be reloaded and diffed
(``python -m repro.experiments compare fig3``).  Drivers that declare a
``collect_samples`` hook additionally persist their raw per-seed measurement
series in the envelope's ``samples`` field, from which the analysis plane
(:mod:`repro.analysis`, CLI ``repro report``) regenerates the paper's
figures and percentile tables without re-simulation.  The old per-module
entry points (``python -m repro.experiments.fig3`` ...) remain as
deprecation shims.

Public entry points: :func:`~repro.experiments.api.run_experiment` (dispatch
one experiment), the :func:`~repro.experiments.api.experiment` decorator
(register a new one), :class:`~repro.experiments.config.ExperimentConfig`
(shared knobs), :class:`~repro.experiments.results.ResultStore`
(persistence), and :func:`~repro.experiments.cli.main` (the ``repro`` CLI).
"""

from repro.experiments.api import (
    ExperimentOption,
    ExperimentSpec,
    experiment,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_table
from repro.experiments.results import ExperimentResult, ResultStore, diff_results
from repro.experiments.runner import PropagationExperiment, PropagationResult, run_protocol_comparison

__all__ = [
    "ExperimentConfig",
    "ExperimentOption",
    "ExperimentReport",
    "ExperimentResult",
    "ExperimentSpec",
    "PropagationExperiment",
    "PropagationResult",
    "ResultStore",
    "diff_results",
    "experiment",
    "experiment_names",
    "format_table",
    "get_experiment",
    "run_experiment",
    "run_protocol_comparison",
]
