"""The shared sweep/grid executor.

Every experiment in this repository is a *grid*: a list of sweep points
(protocol labels, thresholds, ablation variants, churn levels, ...) crossed
with the configured master seeds, where each (point, seed) cell is one
independent simulation.  :func:`run_seed_grid` is the single place that
cross-product is built, fanned out and regrouped:

1. jobs are constructed **point-major, seed-minor** — exactly the order the
   pre-grid serial loops used;
2. they fan out over the existing
   :class:`~repro.experiments.parallel.ParallelRunner`, which returns results
   in submission order regardless of completion order;
3. the flat result list is regrouped into one ``(point, seed_results)`` pair
   per sweep point, with seed results in seed order.

Because both the job order and the regrouping are deterministic, any merge a
driver performs over the grouped results is identical for every worker count —
the same invariance contract the hand-written drivers upheld, now provided in
one place.  Every experiment registered through
:mod:`repro.experiments.api` gets ``--workers`` fan-out for free by building
on this executor.

The raw-sample capture layer inherits the same contract: a driver's
``collect_samples`` hook fills a :class:`~repro.analysis.samples.SampleLog`
from results merged in this submission order (one series per (point, seed),
see ``SampleLog.add_per_seed``), so the ``samples`` field persisted into the
:class:`~repro.experiments.results.ExperimentResult` envelope — and every
figure ``repro report`` later regenerates from it — is byte-identical for
every worker count.

Since the execution-plane refactor the fan-out itself is delegated to an
:class:`~repro.experiments.backends.ExecutionPlan`: the plan chooses the
executor backend (inline / process pool with warm workers), consults the
checkpoint store for already-completed cells, applies the shard slice and
the cell budget, and persists each freshly computed cell the moment the
streaming regroup emits it.  ``run_experiment`` installs the plan with
:func:`~repro.experiments.backends.use_plan`, so every registered
experiment inherits backends, checkpoint/resume and sharding for free; a
driver called directly (tests, examples) gets an ephemeral default plan
equivalent to the old behaviour.

Job specs must be picklable (frozen dataclasses of plain values) and
``job_fn`` must be a module-level callable — the same constraints
:class:`~repro.experiments.parallel.ParallelRunner` imposes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

from repro.experiments.backends import ExecutionPlan, current_plan
from repro.experiments.config import ExperimentConfig

PointT = TypeVar("PointT")
JobT = TypeVar("JobT")
ResultT = TypeVar("ResultT")


def run_seed_grid(
    points: Sequence[PointT],
    make_job: Callable[[PointT, int], JobT],
    job_fn: Callable[[JobT], ResultT],
    config: ExperimentConfig,
    *,
    plan: Optional[ExecutionPlan] = None,
) -> list[tuple[PointT, list[ResultT]]]:
    """Run ``job_fn`` over the (point, seed) grid and regroup per point.

    Args:
        points: the sweep axis (labels, thresholds, variants, ...).
        make_job: builds the picklable job spec for one (point, seed) cell.
        job_fn: module-level job body, executed possibly in a worker process.
        config: supplies the seeds and the worker count.
        plan: execution plan; defaults to the plan installed by
            :func:`~repro.experiments.backends.use_plan` (how
            ``run_experiment`` threads backends/checkpoints through without
            changing driver signatures), and otherwise to an ephemeral
            default plan driven by ``config.workers``.

    Returns:
        One ``(point, seed_results)`` pair per sweep point, in sweep order,
        with ``seed_results`` in ``config.seeds`` order — the same sequence a
        serial ``for point: for seed:`` loop would produce.  Cells the plan
        did not produce (shard slice, cell budget) come back as the
        :data:`~repro.experiments.backends.MISSING` placeholder.
    """
    points = list(points)
    jobs = [make_job(point, seed) for point in points for seed in config.seeds]
    active = plan if plan is not None else current_plan()
    if active is None:
        active = ExecutionPlan()
    results = active.run_cells(job_fn, jobs, config)
    per_point = len(config.seeds)
    return [
        (point, results[index * per_point : (index + 1) * per_point])
        for index, point in enumerate(points)
    ]
