"""The declarative experiment API: specs, registry and dispatch.

The paper's evaluation is a family of controlled comparisons; this module
makes each of them *data* instead of a hand-written driver.  A driver module
registers itself with the :func:`experiment` decorator::

    @experiment(
        "fig3",
        experiment_id="Fig. 3",
        title="Δt distribution, Bitcoin vs LBC vs BCBPT (d_t = 25 ms)",
        protocols=FIG3_PROTOCOLS,
        report=build_report,
        summarize=summarize,
        verdicts={"paper_ordering": expected_ordering_holds},
    )
    def run_fig3(config=None): ...

and in return gets, for free:

* a row in ``python -m repro.experiments list`` / ``describe``;
* a ``run`` subcommand with the shared :class:`ExperimentConfig` flags, its
  declared :class:`ExperimentOption` extras, and ``--workers`` fan-out;
* protocol-label validation at dispatch time (the **single** fail-fast
  checkpoint — drivers no longer validate individually);
* a JSON-serialisable :class:`~repro.experiments.results.ExperimentResult`
  envelope, persisted through the
  :class:`~repro.experiments.results.ResultStore`;
* raw-sample persistence: a driver that declares ``collect_samples`` (a
  ``payload -> SampleLog`` extractor) gets its per-seed measurement series
  stored in the envelope's ``samples`` field, which is what ``repro report``
  regenerates figures and percentile tables from without re-simulation.

:func:`run_experiment` is the one dispatch path used by the CLI, the
benchmark guards and the examples.
"""

from __future__ import annotations

import dataclasses
import importlib
import sys
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.experiments.backends import ExecutionPlan, GridIncomplete, use_plan
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport
from repro.experiments.results import ExperimentResult
from repro.workloads.scenarios import validate_policy_name

#: Driver modules imported (once, lazily) to populate the registry, in the
#: order DESIGN.md indexes them — also the ``list`` display order.
DRIVER_MODULES = (
    "repro.experiments.fig3",
    "repro.experiments.fig4",
    "repro.experiments.threshold_sweep",
    "repro.experiments.overhead",
    "repro.experiments.attacks",
    "repro.experiments.doublespend",
    "repro.experiments.ablation",
    "repro.experiments.churn_resilience",
    "repro.experiments.relay_comparison",
    "repro.experiments.load_frontier",
    "repro.experiments.scale",
    "repro.experiments.validation",
)

_REGISTRY: dict[str, "ExperimentSpec"] = {}
_LOADED = False


def validate_protocol_labels(labels: Iterable[str]) -> None:
    """Validate protocol labels (``"bcbpt"``, ``"bcbpt@50ms"``) fail-fast.

    This is the registry's single validation checkpoint: every dispatch
    through :func:`run_experiment` funnels its protocol labels here, so a typo
    fails in the driver process before any job reaches a pool worker.
    """
    for label in labels:
        validate_policy_name(str(label).split("@", 1)[0])


@dataclass(frozen=True)
class ExperimentOption:
    """One declarative experiment-specific CLI option / run kwarg.

    Attributes:
        flag: the CLI flag (e.g. ``"--thresholds-ms"``).
        dest: the keyword argument of the run function this option feeds (or
            a descriptive name when ``config_field`` is set).
        type: argparse value type.
        nargs: argparse nargs (None for a scalar).
        default: value used when the option is not supplied; None means "let
            the run function's own default apply".
        help: CLI help text.
        config_field: when set, the (converted) value overrides this
            :class:`ExperimentConfig` field instead of being passed as a
            kwarg.
        convert: applied to the supplied value before use (e.g. ms -> s).
        kwarg: the run-function parameter the converted value feeds, when it
            differs from ``dest`` (e.g. dest ``thresholds_ms`` converted into
            kwarg ``thresholds_s``).
        is_protocols: mark the option as carrying protocol labels so dispatch
            validates them.
    """

    flag: str
    dest: str
    type: Callable[[str], Any] = str
    nargs: Optional[str] = None
    default: Any = None
    help: str = ""
    config_field: Optional[str] = None
    convert: Optional[Callable[[Any], Any]] = None
    kwarg: Optional[str] = None
    is_protocols: bool = False


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the registry knows about one experiment.

    Attributes:
        name: registry key (the CLI ``run <name>`` argument).
        experiment_id: DESIGN.md index id (``"Fig. 3"``, ``"Ext-6"``, ...).
        title: one-line description shown by ``list``.
        description: longer help shown by ``describe``.
        protocols: protocol labels the experiment compares (validated at
            dispatch; informational in ``describe``).
        options: experiment-specific options beyond the shared config flags.
        run: the driver function ``run(config, **option_kwargs) -> payload``.
        report: turns the payload into an
            :class:`~repro.experiments.reporting.ExperimentReport`.
        summarize: extracts JSON-safe per-label scalar summaries from the
            payload (feeds ``ExperimentResult.summaries`` and run diffs).
        collect_samples: extracts a
            :class:`~repro.analysis.samples.SampleLog` of raw measurement
            series from the payload (feeds ``ExperimentResult.samples``, the
            material ``repro report`` regenerates figures from).  Optional —
            experiments that don't opt in persist summaries only.
        verdicts: named reproduction criteria evaluated on the payload.
        exit_verdict: verdict whose failure makes the CLI exit non-zero.
    """

    name: str
    experiment_id: str
    title: str
    description: str
    run: Callable[..., Any]
    protocols: tuple[str, ...] = ()
    options: tuple[ExperimentOption, ...] = ()
    report: Optional[Callable[[Any], ExperimentReport]] = None
    summarize: Optional[Callable[[Any], dict[str, dict[str, Any]]]] = None
    collect_samples: Optional[Callable[[Any], Any]] = None
    verdicts: Mapping[str, Callable[[Any], bool]] = field(default_factory=dict)
    exit_verdict: Optional[str] = None

    def describe(self) -> str:
        """Multi-line description for the ``describe`` subcommand."""
        lines = [
            f"{self.name} ({self.experiment_id}): {self.title}",
            "",
            self.description.strip(),
        ]
        if self.protocols:
            lines += ["", f"protocols: {', '.join(self.protocols)}"]
        if self.options:
            lines += ["", "options:"]
            for option in self.options:
                default = "" if option.default is None else f" (default: {option.default})"
                lines.append(f"  {option.flag}: {option.help}{default}")
        if self.verdicts:
            lines += ["", f"verdicts: {', '.join(self.verdicts)}"]
        return "\n".join(lines)


def experiment(
    name: str,
    *,
    experiment_id: str,
    title: str,
    description: Optional[str] = None,
    protocols: Sequence[str] = (),
    options: Sequence[ExperimentOption] = (),
    report: Optional[Callable[[Any], ExperimentReport]] = None,
    summarize: Optional[Callable[[Any], dict[str, dict[str, Any]]]] = None,
    collect_samples: Optional[Callable[[Any], Any]] = None,
    verdicts: Optional[Mapping[str, Callable[[Any], bool]]] = None,
    exit_verdict: Optional[str] = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register the decorated function as an experiment's run entry point.

    The function itself is returned unchanged (drivers stay importable and
    directly callable); the registration is a side effect, and the spec is
    attached as ``fn.spec``.
    """

    def decorate(run_fn: Callable[..., Any]) -> Callable[..., Any]:
        spec = ExperimentSpec(
            name=name,
            experiment_id=experiment_id,
            title=title,
            description=description
            or (run_fn.__doc__ or title).strip().splitlines()[0],
            run=run_fn,
            protocols=tuple(protocols),
            options=tuple(options),
            report=report,
            summarize=summarize,
            collect_samples=collect_samples,
            verdicts=dict(verdicts or {}),
            exit_verdict=exit_verdict,
        )
        register(spec)
        run_fn.spec = spec  # type: ignore[attr-defined]
        return run_fn

    return decorate


def register(spec: ExperimentSpec) -> None:
    """Add a spec to the registry, rejecting duplicate names.

    The same driver file may legitimately register twice — once as
    ``__main__`` (via a deprecated ``python -m repro.experiments.<name>``
    shim) and once under its real module name when the registry loads — so
    re-registration from the same source file replaces the earlier spec;
    only a *different* implementation claiming an existing name is an error.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.run is not spec.run:
        old_code = getattr(existing.run, "__code__", None)
        new_code = getattr(spec.run, "__code__", None)
        same_source = (
            old_code is not None
            and new_code is not None
            and old_code.co_filename == new_code.co_filename
        )
        if not same_source:
            raise ValueError(f"experiment {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def load_registry() -> None:
    """Import every driver module so all experiments are registered."""
    global _LOADED
    if _LOADED:
        return
    for module in DRIVER_MODULES:
        importlib.import_module(module)
    _LOADED = True


def experiment_names() -> list[str]:
    """All registered experiment names, in DESIGN.md index order.

    Registration order depends on which module happens to be imported first,
    so the display order is pinned to :data:`DRIVER_MODULES` instead;
    experiments registered from other modules (tests, downstream users) sort
    after the built-ins, in registration order.
    """
    load_registry()
    module_rank = {module: rank for rank, module in enumerate(DRIVER_MODULES)}

    def rank(item: tuple[int, str]) -> tuple[int, int]:
        index, name = item
        module = getattr(_REGISTRY[name].run, "__module__", "")
        return (module_rank.get(module, len(module_rank)), index)

    return [name for _, name in sorted(enumerate(_REGISTRY), key=rank)]


def get_experiment(name: str) -> ExperimentSpec:
    """Look an experiment up by name, failing with the known names."""
    load_registry()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(_REGISTRY) or "<none>"
        raise KeyError(f"unknown experiment {name!r}; known experiments: {known}") from None


def resolve_options(
    spec: ExperimentSpec,
    config: ExperimentConfig,
    options: Optional[Mapping[str, Any]] = None,
) -> tuple[ExperimentConfig, dict[str, Any]]:
    """Fold supplied option values into (config overrides, run kwargs).

    Unknown option names are rejected; omitted options fall back to their
    declared default, and a None default means "let the run function's own
    signature default apply" (no kwarg is passed).
    """
    supplied = dict(options or {})
    known = {option.dest: option for option in spec.options}
    unknown = set(supplied) - set(known)
    if unknown:
        raise ValueError(
            f"unknown option(s) for experiment {spec.name!r}: {sorted(unknown)}; "
            f"known: {sorted(known) or '<none>'}"
        )
    kwargs: dict[str, Any] = {}
    for dest, option in known.items():
        value = supplied.get(dest, option.default)
        if value is None:
            continue
        if option.convert is not None:
            value = option.convert(value)
        if option.config_field is not None:
            config = config.with_overrides(**{option.config_field: value})
        else:
            kwargs[option.kwarg or dest] = value
    return config, kwargs


def run_experiment(
    name: str,
    config: Optional[ExperimentConfig] = None,
    options: Optional[Mapping[str, Any]] = None,
    plan: Optional[ExecutionPlan] = None,
) -> ExperimentResult:
    """Execute one registered experiment and wrap the outcome in an envelope.

    This is the single dispatch path: it resolves options, validates every
    protocol label once (the registry checkpoint), runs the driver, builds
    the report, evaluates the verdicts, and returns a JSON-serialisable
    :class:`~repro.experiments.results.ExperimentResult` whose in-memory
    ``payload`` attribute still carries the driver's native result objects
    (not serialised) for callers that need the full detail.

    Args:
        name: registry name of the experiment.
        config: shared configuration (defaults apply when omitted).
        options: experiment-specific option values.
        plan: execution plan — backend choice, checkpoint store, shard
            slice, cell budget (see
            :class:`~repro.experiments.backends.ExecutionPlan`).  The plan
            is installed for the duration of the driver call, so every
            ``run_seed_grid`` inside it inherits backends and
            checkpoint/resume with no driver changes.  Defaults to plain
            ``config.workers``-driven execution.

    Raises:
        GridIncomplete: the plan finished without producing every grid cell
            (a shard slice or an exhausted ``max_cells`` budget).  Completed
            cells are already checkpointed; resume with the same store, or
            reassemble shards with ``repro shard merge``.
    """
    spec = get_experiment(name)
    cfg = config if config is not None else ExperimentConfig()
    cfg, kwargs = resolve_options(spec, cfg, options)

    labels: list[str] = list(spec.protocols)
    for option in spec.options:
        key = option.kwarg or option.dest
        if option.is_protocols and key in kwargs:
            labels = list(kwargs[key])
    validate_protocol_labels(labels)

    active_plan = plan if plan is not None else ExecutionPlan()
    active_plan.experiment = spec.name

    started = time.time()
    try:
        with use_plan(active_plan):
            payload = spec.run(cfg, **kwargs)
    except GridIncomplete:
        raise
    except Exception as exc:
        if active_plan.incomplete:
            # A shard/budget run left holes in the grid; the driver's merge
            # tripping over a MISSING placeholder is the expected outcome,
            # not a driver bug — every cell in the slice is already stored.
            raise GridIncomplete(active_plan, cause=exc) from exc
        raise
    if active_plan.incomplete:
        raise GridIncomplete(active_plan)

    sections: list[tuple[str, str]] = []
    if spec.report is not None:
        report = spec.report(payload)
        sections = list(report.sections)
    summaries = spec.summarize(payload) if spec.summarize is not None else {}
    samples: dict[str, Any] = {}
    if spec.collect_samples is not None:
        sample_log = spec.collect_samples(payload)
        if sample_log:
            # Duck-typed (SampleLog.to_dict) so the registry layer does not
            # import the analysis package it sits below.
            samples = sample_log.to_dict()
    verdicts = {name_: bool(fn(payload)) for name_, fn in spec.verdicts.items()}

    result = ExperimentResult(
        experiment=spec.name,
        experiment_id=spec.experiment_id,
        title=spec.title,
        created_at=started,
        config=dataclasses.asdict(cfg),
        options=dict(kwargs),
        seeds=list(cfg.seeds),
        summaries=summaries,
        verdicts=verdicts,
        sections=sections,
        extras={"duration_s": time.time() - started},
        samples=samples,
    )
    result.payload = payload  # type: ignore[attr-defined]  # in-memory only
    return result


def deprecated_main(name: str, argv: Optional[Sequence[str]] = None) -> int:
    """Back-compat shim body for the old per-module CLIs.

    Each legacy entry point (``python -m repro.experiments.fig3`` etc.) warns
    and forwards its argv to ``python -m repro.experiments run <name>``; the
    flags are identical because the unified parser is built from the shared
    config builder plus the experiment's declared options.
    """
    warnings.warn(
        f"`python -m repro.experiments.{name}` is deprecated; use "
        f"`python -m repro.experiments run {name}` (or the `repro` console "
        "script) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.experiments.cli import main as cli_main

    forwarded = list(sys.argv[1:] if argv is None else argv)
    return cli_main(["run", name, *forwarded])
