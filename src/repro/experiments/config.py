"""Shared experiment configuration.

Every figure/extension driver takes an :class:`ExperimentConfig`; the defaults
are sized so the full benchmark suite runs in minutes on a laptop, while
``--nodes 5000 --runs 1000`` reproduces the paper's scale.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence


@dataclass(frozen=True)
class ExperimentConfig:
    """Parameters shared by all experiments.

    Attributes:
        node_count: nodes in the simulated network.  The paper uses the
            measured size of the reachable network (~5000); the default keeps
            benchmark runtimes small.
        runs: measurement repetitions per (protocol, measuring node) pair.
            The paper averages ~1000 runs; the aggregate sample count here is
            ``runs * len(measuring_nodes) * connections``.
        seeds: master seeds; results are aggregated across them.
        measuring_nodes: how many distinct measuring nodes to rotate through
            (spreads the measurement over different clusters).
        latency_threshold_s: BCBPT's ``d_t`` for the main comparison (25 ms in
            the paper's Fig. 3).
        fig4_thresholds_s: the thresholds swept in Fig. 4.
        max_outbound: outbound connection quota for every policy.
        exclude_long_links: measure only the proximity connections of the
            measuring node (see :class:`repro.measurement.MeasuringNode`).
        payment_satoshi: value of each measured transaction.
        funding_outputs_per_node: confirmed outputs funded per node (must be
            at least ``runs`` for measuring nodes).
        run_timeout_s: per-repetition simulated-time budget.
        workers: processes used to fan (protocol, seed) jobs out.  1 (the
            default) runs the bit-exact serial path in-process; 0 means "one
            per CPU"; higher values use a :class:`~repro.experiments.parallel.
            ParallelRunner`, whose merge step reproduces the serial aggregates
            exactly, so results are identical for every worker count.
    """

    node_count: int = 200
    runs: int = 10
    seeds: tuple[int, ...] = (3, 11, 23)
    measuring_nodes: int = 3
    latency_threshold_s: float = 0.025
    fig4_thresholds_s: tuple[float, ...] = (0.030, 0.050, 0.100)
    max_outbound: int = 8
    exclude_long_links: bool = True
    payment_satoshi: int = 10_000
    funding_outputs_per_node: int = 0
    run_timeout_s: float = 60.0
    workers: int = 1

    def __post_init__(self) -> None:
        if self.node_count < 10:
            raise ValueError(f"experiments need at least 10 nodes, got {self.node_count}")
        if self.runs <= 0:
            raise ValueError("runs must be positive")
        if not self.seeds:
            raise ValueError("at least one seed is required")
        if self.measuring_nodes <= 0:
            raise ValueError("measuring_nodes must be positive")
        if self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")
        if any(t <= 0 for t in self.fig4_thresholds_s):
            raise ValueError("fig4 thresholds must be positive")
        if self.max_outbound <= 0:
            raise ValueError("max_outbound must be positive")
        if self.payment_satoshi <= 0:
            raise ValueError("payment_satoshi must be positive")
        if self.run_timeout_s <= 0:
            raise ValueError("run_timeout_s must be positive")
        if self.workers < 0:
            raise ValueError("workers cannot be negative (0 means one per CPU)")

    @property
    def funding_outputs(self) -> int:
        """Confirmed outputs per node: explicit value or enough for every run."""
        if self.funding_outputs_per_node > 0:
            return self.funding_outputs_per_node
        return self.runs + 2

    def with_overrides(self, **kwargs: object) -> "ExperimentConfig":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)

    # ----------------------------------------------------------------- CLI
    @staticmethod
    def add_arguments(parser: argparse.ArgumentParser) -> None:
        """Register the standard experiment flags on an argparse parser.

        This is the single argparse builder shared by every experiment: the
        unified ``python -m repro.experiments run`` CLI composes these flags
        with each registered spec's declarative
        :class:`~repro.experiments.api.ExperimentOption` extras.
        """
        parser.add_argument("--nodes", type=int, default=None, help="network size")
        parser.add_argument("--runs", type=int, default=None, help="repetitions per measuring node")
        parser.add_argument(
            "--seeds", type=int, nargs="+", default=None, help="master random seeds"
        )
        parser.add_argument(
            "--measuring-nodes", type=int, default=None, help="distinct measuring nodes to rotate"
        )
        parser.add_argument(
            "--threshold-ms", type=float, default=None, help="BCBPT latency threshold in ms"
        )
        parser.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker processes for (protocol, seed) jobs (1 = serial, 0 = one per CPU)",
        )

    @staticmethod
    def from_args(args: argparse.Namespace, base: Optional["ExperimentConfig"] = None) -> "ExperimentConfig":
        """Apply parsed CLI flags on top of a base configuration."""
        config = base if base is not None else ExperimentConfig()
        overrides: dict[str, object] = {}
        if args.nodes is not None:
            overrides["node_count"] = args.nodes
        if args.runs is not None:
            overrides["runs"] = args.runs
        if args.seeds is not None:
            overrides["seeds"] = tuple(args.seeds)
        if args.measuring_nodes is not None:
            overrides["measuring_nodes"] = args.measuring_nodes
        if args.threshold_ms is not None:
            overrides["latency_threshold_s"] = args.threshold_ms / 1000.0
        if getattr(args, "workers", None) is not None:
            overrides["workers"] = args.workers
        if overrides:
            config = config.with_overrides(**overrides)
        return config

    #: Backwards-compatible aliases (pre-unified-CLI names).
    add_cli_arguments = add_arguments
    from_cli = from_args
