"""Fig. 3 — Δt distribution: simulated Bitcoin vs BCBPT vs LBC (d_t = 25 ms).

The paper's headline result: BCBPT offers lower propagation delay than both
the vanilla Bitcoin protocol and the geography-based LBC protocol, and keeps
the delay variance low regardless of the number of connected nodes, while
Bitcoin's variance grows with the connection count.

Run via the unified CLI (``python -m repro.experiments run fig3`` or the
``repro run fig3`` console script) or through ``benchmarks/test_bench_fig3.py``.
``python -m repro.experiments.fig3`` remains as a deprecated shim.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.api import deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_delay_summaries, format_table
from repro.experiments.runner import (
    PropagationResult,
    collect_propagation_samples,
    run_protocol_comparison,
)

#: The protocols compared in Fig. 3, in the order the paper lists them.
FIG3_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")


def build_report(results: dict[str, PropagationResult]) -> ExperimentReport:
    """Turn Fig. 3 results into a structured text report."""
    report = ExperimentReport(
        experiment_id="Fig. 3",
        description="Δt distribution, Bitcoin vs LBC vs BCBPT (d_t = 25 ms)",
    )
    summaries = {name: result.summary() for name, result in results.items()}
    report.add_section("Delay summary", format_delay_summaries(summaries))
    report.add_data("summaries", summaries)

    # The per-rank variance curve: the paper's observation that Bitcoin's
    # variance grows with the number of connected nodes while BCBPT's stays low.
    rank_rows = []
    ranks = sorted(
        {rank for result in results.values() for rank, _ in result.rank_variance_curve()}
    )
    curves = {name: dict(result.rank_variance_curve()) for name, result in results.items()}
    for rank in ranks:
        rank_rows.append(
            [rank]
            + [curves[name].get(rank, float("nan")) * 1e6 for name in results]
        )
    report.add_section(
        "Variance of Δt by connection rank (ms²)",
        format_table(["rank"] + [f"{name}" for name in results], rank_rows),
    )
    report.add_data("rank_variance", curves)

    # Cluster structure context for the clustered protocols.
    cluster_rows = []
    for name, result in results.items():
        for seed, summary in sorted(result.cluster_summaries.items()):
            if summary.get("cluster_count", 0):
                cluster_rows.append(
                    [name, seed, int(summary["cluster_count"]), summary["mean_size"], int(summary["max_size"])]
                )
    if cluster_rows:
        report.add_section(
            "Cluster structure",
            format_table(["protocol", "seed", "clusters", "mean size", "max size"], cluster_rows),
        )
    report.add_data("results", results)
    return report


def expected_ordering_holds(results: dict[str, PropagationResult]) -> bool:
    """The reproduction criterion: BCBPT < LBC < Bitcoin in both mean and variance."""
    bitcoin = results["bitcoin"].summary()
    lbc = results["lbc"].summary()
    bcbpt = results["bcbpt"].summary()
    mean_ok = bcbpt["mean_s"] < lbc["mean_s"] < bitcoin["mean_s"]
    variance_ok = bcbpt["variance_s2"] < lbc["variance_s2"] < bitcoin["variance_s2"]
    return mean_ok and variance_ok


def summarize(results: dict[str, PropagationResult]) -> dict[str, dict[str, float]]:
    """Per-protocol scalar summaries for the result envelope."""
    return {name: result.summary() for name, result in results.items()}


@experiment(
    "fig3",
    experiment_id="Fig. 3",
    title="Δt distribution, Bitcoin vs LBC vs BCBPT (d_t = 25 ms)",
    description=__doc__,
    protocols=FIG3_PROTOCOLS,
    report=build_report,
    summarize=summarize,
    collect_samples=collect_propagation_samples,
    verdicts={"paper_ordering": expected_ordering_holds},
)
def run_fig3(config: Optional[ExperimentConfig] = None) -> dict[str, PropagationResult]:
    """Execute the Fig. 3 comparison and return per-protocol results."""
    cfg = config if config is not None else ExperimentConfig()
    return run_protocol_comparison(FIG3_PROTOCOLS, cfg)


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run fig3``."""
    return deprecated_main("fig3", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
