"""Ext-2 — measurement and control-plane overhead of each protocol.

Section IV.A: "to measure the distance between nodes in 'ping latency'
requires every pair of nodes to interact, which added an extra overhead to the
network.  This overhead will be evaluated in our future work."  This extension
performs that evaluation: for each protocol it counts the ping/pong exchanges,
cluster-control messages (JOIN, JOIN_ACCEPT, CLUSTER_MEMBERS) and bytes spent
building the topology, normalised per node, and relates them to the
propagation-delay improvement the protocol buys.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_table
from repro.experiments.runner import PropagationExperiment
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import build_scenario, validate_policy_name

OVERHEAD_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")

#: Message commands attributed to topology construction / clustering control.
CONTROL_COMMANDS = ("join", "join_accept", "cluster_members", "getaddr", "addr")


@dataclass(frozen=True)
class OverheadPoint:
    """Control-plane cost and resulting delay for one protocol."""

    protocol: str
    ping_messages_per_node: float
    control_messages_per_node: float
    control_bytes_per_node: float
    handshake_messages_per_node: float
    total_build_bytes_per_node: float
    mean_delay_s: float
    delay_variance_s2: float


def run_overhead(
    config: Optional[ExperimentConfig] = None,
    protocols: Sequence[str] = OVERHEAD_PROTOCOLS,
) -> list[OverheadPoint]:
    """Measure topology-construction overhead and delay for each protocol."""
    cfg = config if config is not None else ExperimentConfig()
    for protocol in protocols:
        validate_policy_name(protocol)
    points: list[OverheadPoint] = []
    for protocol in protocols:
        ping_counts: list[float] = []
        control_counts: list[float] = []
        control_bytes: list[float] = []
        handshake_counts: list[float] = []
        total_bytes: list[float] = []
        delays = None
        for seed in cfg.seeds:
            scenario = build_scenario(
                protocol,
                NetworkParameters(node_count=cfg.node_count, seed=seed),
                latency_threshold_s=cfg.latency_threshold_s,
                max_outbound=cfg.max_outbound,
            )
            network = scenario.network.network
            nodes = max(1, cfg.node_count)
            # Counters at this point reflect only the topology build (no
            # measurement traffic has been generated yet).
            ping_counts.append(
                (network.messages_sent.get("ping", 0) + network.messages_sent.get("pong", 0))
                / nodes
            )
            control_counts.append(
                sum(network.messages_sent.get(cmd, 0) for cmd in CONTROL_COMMANDS) / nodes
            )
            control_bytes.append(
                sum(network.bytes_sent.get(cmd, 0) for cmd in CONTROL_COMMANDS) / nodes
            )
            handshake_counts.append(
                (network.messages_sent.get("version", 0) + network.messages_sent.get("verack", 0))
                / nodes
            )
            total_bytes.append(network.total_bytes() / nodes)
            experiment = PropagationExperiment(scenario, cfg)
            result = experiment.run()
            delays = result.delays if delays is None else delays.merge(result.delays)
        assert delays is not None
        stats = delays.summary()
        count = len(cfg.seeds)
        points.append(
            OverheadPoint(
                protocol=protocol,
                ping_messages_per_node=sum(ping_counts) / count,
                control_messages_per_node=sum(control_counts) / count,
                control_bytes_per_node=sum(control_bytes) / count,
                handshake_messages_per_node=sum(handshake_counts) / count,
                total_build_bytes_per_node=sum(total_bytes) / count,
                mean_delay_s=stats["mean_s"],
                delay_variance_s2=stats["variance_s2"],
            )
        )
    return points


def build_report(points: list[OverheadPoint]) -> ExperimentReport:
    """Render overhead-vs-benefit as a report."""
    report = ExperimentReport(
        experiment_id="Ext-2",
        description="Topology-construction overhead vs propagation-delay benefit",
    )
    rows = [
        [
            point.protocol,
            point.ping_messages_per_node,
            point.control_messages_per_node,
            point.control_bytes_per_node,
            point.handshake_messages_per_node,
            point.total_build_bytes_per_node,
            point.mean_delay_s * 1e3,
            point.delay_variance_s2 * 1e6,
        ]
        for point in points
    ]
    report.add_section(
        "Per-node overhead (topology build) and resulting delay",
        format_table(
            [
                "protocol",
                "ping msgs",
                "control msgs",
                "control bytes",
                "handshake msgs",
                "total bytes",
                "mean Δt ms",
                "var Δt ms²",
            ],
            rows,
        ),
    )
    report.add_data("points", points)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    ExperimentConfig.add_cli_arguments(parser)
    args = parser.parse_args(argv)
    config = ExperimentConfig.from_cli(args)
    print(build_report(run_overhead(config)).render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
