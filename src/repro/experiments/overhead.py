"""Ext-2 — measurement and control-plane overhead of each protocol.

Section IV.A: "to measure the distance between nodes in 'ping latency'
requires every pair of nodes to interact, which added an extra overhead to the
network.  This overhead will be evaluated in our future work."  This extension
performs that evaluation: for each protocol it counts the ping/pong exchanges,
cluster-control messages (JOIN, JOIN_ACCEPT, CLUSTER_MEMBERS) and bytes spent
building the topology, normalised per node, and relates them to the
propagation-delay improvement the protocol buys.

Run via ``python -m repro.experiments run overhead``;
``python -m repro.experiments.overhead`` remains as a deprecated shim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import OverheadJob, OverheadJobResult, run_overhead_job
from repro.experiments.reporting import ExperimentReport, format_table
from repro.measurement.stats import DelayDistribution

OVERHEAD_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")

#: Message commands attributed to topology construction / clustering control.
CONTROL_COMMANDS = ("join", "join_accept", "cluster_members", "getaddr", "addr")


@dataclass(frozen=True)
class OverheadPoint:
    """Control-plane cost and resulting delay for one protocol."""

    protocol: str
    ping_messages_per_node: float
    control_messages_per_node: float
    control_bytes_per_node: float
    handshake_messages_per_node: float
    total_build_bytes_per_node: float
    mean_delay_s: float
    delay_variance_s2: float


def run_overhead_seed(job: OverheadJob) -> OverheadJobResult:
    """Measure one (protocol, seed) build's overhead — the parallel job body."""
    from repro.experiments.runner import PropagationExperiment
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    cfg = job.config
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=cfg.node_count, seed=job.seed),
        latency_threshold_s=cfg.latency_threshold_s,
        max_outbound=cfg.max_outbound,
    )
    network = scenario.network.network
    nodes = max(1, cfg.node_count)
    # Counters at this point reflect only the topology build (no measurement
    # traffic has been generated yet).
    ping = (
        network.messages_sent.get("ping", 0) + network.messages_sent.get("pong", 0)
    ) / nodes
    control = sum(network.messages_sent.get(cmd, 0) for cmd in CONTROL_COMMANDS) / nodes
    control_bytes = sum(network.bytes_sent.get(cmd, 0) for cmd in CONTROL_COMMANDS) / nodes
    handshake = (
        network.messages_sent.get("version", 0) + network.messages_sent.get("verack", 0)
    ) / nodes
    total_bytes = network.total_bytes() / nodes
    result = PropagationExperiment(scenario, cfg).run()
    return OverheadJobResult(
        protocol=job.protocol,
        seed=job.seed,
        ping_messages_per_node=ping,
        control_messages_per_node=control,
        control_bytes_per_node=control_bytes,
        handshake_messages_per_node=handshake,
        total_build_bytes_per_node=total_bytes,
        delay_samples=tuple(result.delays.samples),
    )


def build_report(points: list[OverheadPoint]) -> ExperimentReport:
    """Render overhead-vs-benefit as a report."""
    report = ExperimentReport(
        experiment_id="Ext-2",
        description="Topology-construction overhead vs propagation-delay benefit",
    )
    rows = [
        [
            point.protocol,
            point.ping_messages_per_node,
            point.control_messages_per_node,
            point.control_bytes_per_node,
            point.handshake_messages_per_node,
            point.total_build_bytes_per_node,
            point.mean_delay_s * 1e3,
            point.delay_variance_s2 * 1e6,
        ]
        for point in points
    ]
    report.add_section(
        "Per-node overhead (topology build) and resulting delay",
        format_table(
            [
                "protocol",
                "ping msgs",
                "control msgs",
                "control bytes",
                "handshake msgs",
                "total bytes",
                "mean Δt ms",
                "var Δt ms²",
            ],
            rows,
        ),
    )
    report.add_data("points", points)
    return report


def summarize(points: list[OverheadPoint]) -> dict[str, dict[str, float]]:
    """Per-protocol scalar summaries for the result envelope."""
    return {point.protocol: asdict(point) for point in points}


@experiment(
    "overhead",
    experiment_id="Ext-2",
    title="Topology-construction overhead vs propagation-delay benefit",
    description=__doc__,
    protocols=OVERHEAD_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="protocols to evaluate (default: bitcoin lbc bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
    ),
    report=build_report,
    summarize=summarize,
)
def run_overhead(
    config: Optional[ExperimentConfig] = None,
    protocols: Sequence[str] = OVERHEAD_PROTOCOLS,
) -> list[OverheadPoint]:
    """Measure topology-construction overhead and delay for each protocol.

    (protocol, seed) builds are independent simulations; the shared seed-grid
    executor fans them out over ``cfg.workers`` processes and regroups in
    submission order, so results are identical for every worker count.
    """
    cfg = config if config is not None else ExperimentConfig()

    def make_job(protocol: str, seed: int) -> OverheadJob:
        return OverheadJob(protocol=protocol, seed=seed, config=cfg)

    grid = run_seed_grid(protocols, make_job, run_overhead_job, cfg)

    points: list[OverheadPoint] = []
    for protocol, seed_results in grid:
        delays = DelayDistribution()
        for seed_result in seed_results:
            delays.extend(seed_result.delay_samples)
        stats = delays.summary()
        count = len(seed_results)
        points.append(
            OverheadPoint(
                protocol=protocol,
                ping_messages_per_node=sum(r.ping_messages_per_node for r in seed_results) / count,
                control_messages_per_node=sum(r.control_messages_per_node for r in seed_results)
                / count,
                control_bytes_per_node=sum(r.control_bytes_per_node for r in seed_results) / count,
                handshake_messages_per_node=sum(
                    r.handshake_messages_per_node for r in seed_results
                )
                / count,
                total_build_bytes_per_node=sum(r.total_build_bytes_per_node for r in seed_results)
                / count,
                mean_delay_s=stats["mean_s"],
                delay_variance_s2=stats["variance_s2"],
            )
        )
    return points


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run overhead``."""
    return deprecated_main("overhead", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
