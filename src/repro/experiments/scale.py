"""Ext-8 — scale ladder: wall time, throughput and memory up to 10k nodes.

The paper's measured Bitcoin network is roughly 5000 reachable nodes; the
figure experiments here default to a few hundred for tractable runtimes.
This experiment measures what happens on the way up: for a ladder of network
sizes it runs a deliberately small propagation campaign per (protocol, seed)
cell and records

* wall time, split into network acquire (build or snapshot load) and
  campaign phases,
* simulation throughput (events executed per wall second),
* the cell's peak traced Python allocation (``tracemalloc``) and the process
  RSS high-water mark (``resource.getrusage``), and
* how much stale inventory state the in-run pruner
  (:attr:`~repro.protocol.node.NodeConfig.prune_depth`) reclaimed.

Cells ride the three scale-plane mechanisms this repo grew for 10k-node runs:
the array-backed latency plane (automatic via ``build_network``), per-(node
count, seed) network snapshots built once in the driver and loaded by every
cell, and block-acceptance-driven state pruning (enabled here by default with
``--prune-depth 6``; the figure experiments keep it off).

Run from the command line::

    PYTHONPATH=src python -m repro.experiments run scale --nodes 10000 \
        --seeds 3 --protocols bitcoin bcbpt --workers 1
"""

from __future__ import annotations

import contextlib
import tempfile
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.samples import SampleLog
from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.backends import current_plan
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import ScaleJob, ScaleJobResult, run_scale_job
from repro.experiments.reporting import ExperimentReport, format_table
from repro.protocol.node import NodeConfig
from repro.workloads.network_gen import NetworkParameters, ensure_network_snapshot
from repro.workloads.scenarios import validate_policy_name

#: Policies measured by default: the vanilla baseline and the paper's overlay.
SCALE_PROTOCOLS = ("bitcoin", "bcbpt")

#: Default in-run pruning depth for scale cells (Bitcoin's classic
#: six-confirmation burial rule).
DEFAULT_PRUNE_DEPTH = 6

#: Smallest ladder point: campaigns need enough nodes for funding, measuring
#: and clustering to be meaningful.
MIN_LADDER_NODES = 20


def scale_parameters(
    node_count: int, seed: int, prune_depth: Optional[int]
) -> NetworkParameters:
    """The network parameters of one scale cell.

    Shared between the driver (which pre-builds snapshots) and
    :func:`~repro.experiments.parallel.run_scale_job` (which loads them), so
    both sides agree bit-for-bit on the snapshot cache key.
    """
    return NetworkParameters(
        node_count=node_count,
        seed=seed,
        node_config=NodeConfig(prune_depth=prune_depth),
    )


def default_ladder(node_count: int) -> tuple[int, ...]:
    """The default size ladder up to ``node_count``: quarter, half, full."""
    rungs = {
        max(MIN_LADDER_NODES, node_count // 4),
        max(MIN_LADDER_NODES, node_count // 2),
        node_count,
    }
    return tuple(sorted(rungs))


@dataclass
class ScaleResult:
    """Pooled scale measurements for one (protocol, node count) pair."""

    protocol: str
    node_count: int
    cells: list[ScaleJobResult] = field(default_factory=list)

    @property
    def label(self) -> str:
        """The combined ``protocol@N`` result key."""
        return f"{self.protocol}@{self.node_count}"

    def mean(self, values: Sequence[float]) -> float:
        return sum(values) / len(values) if values else float("nan")

    def summary(self) -> dict[str, float]:
        """Scalar summary for the result envelope."""
        peaks = [c.peak_traced_mb for c in self.cells if c.peak_traced_mb is not None]
        return {
            "cells": float(len(self.cells)),
            "mean_build_s": self.mean([c.build_s for c in self.cells]),
            "mean_run_s": self.mean([c.run_s for c in self.cells]),
            "mean_wall_s": self.mean([c.wall_s for c in self.cells]),
            "total_events": float(sum(c.events for c in self.cells)),
            "mean_events_per_s": self.mean([c.events_per_s for c in self.cells]),
            "max_peak_traced_mb": max(peaks) if peaks else float("nan"),
            "max_rss_mb": max((c.rss_mb for c in self.cells), default=float("nan")),
            "state_prunes": float(sum(c.state_prunes for c in self.cells)),
            "pruned_inventory_entries": float(
                sum(c.pruned_inventory_entries for c in self.cells)
            ),
        }


def all_cells_completed(results: dict[str, ScaleResult]) -> bool:
    """Every cell ran its campaign: events executed and Δt samples captured."""
    cells = [cell for result in results.values() for cell in result.cells]
    if not cells:
        return False
    return all(cell.events > 0 and cell.delay_samples > 0 for cell in cells)


def collect_samples(results: dict[str, ScaleResult]) -> SampleLog:
    """Nodes-vs-resource curves for the envelope's ``samples`` field."""
    log = SampleLog()
    for result in results.values():
        x = float(result.node_count)
        for cell in result.cells:
            log.add_point(result.protocol, "wall_s", x, cell.wall_s, unit="s")
            log.add_point(result.protocol, "build_s", x, cell.build_s, unit="s")
            log.add_point(
                result.protocol, "events_per_s", x, cell.events_per_s, unit="1/s"
            )
            log.add_point(result.protocol, "rss_mb", x, cell.rss_mb, unit="MB")
            if cell.peak_traced_mb is not None:
                log.add_point(
                    result.protocol,
                    "peak_traced_mb",
                    x,
                    cell.peak_traced_mb,
                    unit="MB",
                )
    return log


def build_report(results: dict[str, ScaleResult]) -> ExperimentReport:
    """Turn scale-ladder results into a structured text report."""
    report = ExperimentReport(
        experiment_id="Ext-8",
        description="Wall time, throughput and memory vs network size",
    )
    rows = []
    for result in results.values():
        summary = result.summary()
        rows.append(
            [
                result.protocol,
                result.node_count,
                summary["mean_build_s"],
                summary["mean_run_s"],
                int(summary["total_events"]),
                summary["mean_events_per_s"],
                summary["max_peak_traced_mb"],
                summary["max_rss_mb"],
            ]
        )
    report.add_section(
        "Scale ladder (seconds / events / MB)",
        format_table(
            [
                "protocol",
                "nodes",
                "build",
                "run",
                "events",
                "events/s",
                "peak-MB",
                "rss-MB",
            ],
            rows,
        ),
    )
    prune_rows = [
        [
            result.protocol,
            result.node_count,
            int(result.summary()["state_prunes"]),
            int(result.summary()["pruned_inventory_entries"]),
        ]
        for result in results.values()
        if result.summary()["state_prunes"]
    ]
    if prune_rows:
        report.add_section(
            "In-run pruning",
            format_table(["protocol", "nodes", "sweeps", "entries pruned"], prune_rows),
        )
    report.add_data("summaries", {key: r.summary() for key, r in results.items()})
    report.add_data("results", results)
    return report


@experiment(
    "scale",
    experiment_id="Ext-8",
    title="Scale ladder: wall time, throughput and memory up to 10k nodes",
    description=__doc__,
    protocols=SCALE_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--node-counts",
            dest="node_counts",
            type=int,
            nargs="+",
            help="explicit ladder of network sizes (default: nodes/4 nodes/2 nodes)",
            convert=tuple,
        ),
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="policies to measure (default: bitcoin bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
        ExperimentOption(
            flag="--prune-depth",
            dest="prune_depth",
            type=int,
            help="in-run pruning depth; 0 disables pruning (default: 6)",
        ),
        ExperimentOption(
            flag="--cell-runs",
            dest="cell_runs",
            type=int,
            help="measurement runs per cell (default: 2)",
        ),
        ExperimentOption(
            flag="--profile-memory",
            dest="profile_memory",
            type=int,
            help="1 traces per-cell peak allocations with tracemalloc, 0 skips it (default: 1)",
            convert=bool,
        ),
    ),
    report=build_report,
    summarize=lambda results: {key: r.summary() for key, r in results.items()},
    collect_samples=collect_samples,
    verdicts={"all_cells_completed": all_cells_completed},
    exit_verdict="all_cells_completed",
)
def run_scale(
    config: Optional[ExperimentConfig] = None,
    *,
    node_counts: Optional[Sequence[int]] = None,
    protocols: Sequence[str] = SCALE_PROTOCOLS,
    prune_depth: int = DEFAULT_PRUNE_DEPTH,
    cell_runs: int = 2,
    profile_memory: bool = True,
) -> dict[str, ScaleResult]:
    """Measure the resource-scaling ladder and pool results per cell.

    Args:
        config: shared experiment configuration; ``config.node_count`` is the
            ladder's top rung when ``node_counts`` is not given.
        node_counts: explicit ladder of network sizes.
        protocols: policy names to measure at every rung.
        prune_depth: in-run pruning depth applied to every node (0 disables).
        cell_runs: measurement runs per cell.
        profile_memory: trace per-cell allocation peaks with ``tracemalloc``.

    Returns:
        ``"protocol@nodes"`` -> :class:`ScaleResult`.
    """
    cfg = config if config is not None else ExperimentConfig()
    ladder = (
        tuple(node_counts) if node_counts is not None else default_ladder(cfg.node_count)
    )
    if not ladder:
        raise ValueError("node_counts cannot be empty")
    for rung in ladder:
        if rung < MIN_LADDER_NODES:
            raise ValueError(
                f"every ladder point needs at least {MIN_LADDER_NODES} nodes, got {rung}"
            )
    if cell_runs <= 0:
        raise ValueError("cell_runs must be positive")
    if prune_depth < 0:
        raise ValueError("prune_depth cannot be negative (0 disables pruning)")
    for protocol in protocols:
        validate_policy_name(protocol)
    depth = prune_depth if prune_depth > 0 else None

    points = [(rung, protocol) for rung in ladder for protocol in protocols]

    active = current_plan()
    plan_snapshot_dir = active.snapshot_dir if active is not None else None

    with contextlib.ExitStack() as stack:
        if plan_snapshot_dir is not None:
            # A persistent directory (the CLI's --snapshot-dir) lets repeated
            # runs — and resumed/sharded runs — reuse the same snapshot files.
            snapshot_dir = str(plan_snapshot_dir)
        else:
            snapshot_dir = stack.enter_context(
                tempfile.TemporaryDirectory(prefix="repro-scale-snapshots-")
            )
        # Build each (node count, seed) network exactly once, serially in the
        # driver: every (protocol) cell at that rung loads the same snapshot,
        # and workers never race on the files.  Skipped under `repro shard
        # merge` (execute=False): no cell body runs there, and cell keys
        # never include snapshot paths.
        snapshot_paths: dict[tuple[int, int], str] = {}
        if active is None or active.execute:
            for rung in ladder:
                for seed in cfg.seeds:
                    parameters = scale_parameters(rung, seed, depth)
                    snapshot_paths[(rung, seed)] = str(
                        ensure_network_snapshot(parameters, snapshot_dir)
                    )

        def make_job(point: tuple[int, str], seed: int) -> ScaleJob:
            rung, protocol = point
            return ScaleJob(
                node_count=rung,
                protocol=protocol,
                seed=seed,
                threshold_s=cfg.latency_threshold_s,
                prune_depth=depth,
                cell_runs=cell_runs,
                profile_memory=profile_memory,
                snapshot_path=snapshot_paths.get((rung, seed)),
                config=cfg,
            )

        grid = run_seed_grid(points, make_job, run_scale_job, cfg)

    # Merge in submission order — identical aggregates for every worker count.
    results: dict[str, ScaleResult] = {}
    for (rung, protocol), seed_results in grid:
        key = f"{protocol}@{rung}"
        pooled = results.get(key)
        if pooled is None:
            pooled = results[key] = ScaleResult(protocol=protocol, node_count=rung)
        pooled.cells.extend(seed_results)
    return results


def main(argv: Optional[list[str]] = None) -> int:
    """Module-CLI shim; forwards to ``repro run scale``."""
    return deprecated_main("scale", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
