"""Cell-level checkpointing for the sweep execution plane.

Every experiment in this repository is a (point × seed) grid of independent
simulation *cells* (see :mod:`repro.experiments.grid`).  This module gives
each cell a **content-derived identity** and a small on-disk store keyed by
it, which is what makes three execution features safe and cheap:

* **resume** — an interrupted sweep restarted with the same configuration
  skips every cell whose result is already on disk;
* **sharding** — `repro shard run` executes a deterministic slice of the
  cell list on any host and writes its results here; `repro shard merge`
  reassembles the full grid from several stores;
* **incremental persistence** — completed cells are written the moment they
  finish (the streaming regroup in
  :class:`~repro.experiments.backends.PoolBackend` emits results in
  submission order as prefixes complete), so a crash loses at most the cells
  in flight.

Cell identity
-------------

:func:`cell_key` hashes the *physics* of a cell: the experiment name, the job
spec type, the job's canonical JSON form, and the cell/envelope schema
versions.  Execution-plane knobs are deliberately excluded — the determinism
contract (docs/ARCHITECTURE.md) guarantees they cannot change the result:

* ``config.workers`` (results are worker-count invariant);
* ``snapshot_path`` (snapshots are stream-exact, and the path is usually a
  temporary directory that changes between invocations).

Two invocations with the same experiment, config and options therefore
produce the same key for the same cell — across processes, hosts and worker
counts — which is exactly what lets a resumed or shard-merged sweep produce
an envelope byte-identical to an uninterrupted single-machine run.

Cell results are arbitrary driver dataclasses, so they are persisted as
pickles (one file per cell, written atomically via temp-file + rename so
concurrent shard runners never observe a torn cell).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterable, Sequence, Union

from repro.experiments.results import RESULT_SCHEMA_VERSION, json_safe

#: Cell identity schema, bumped when the key material or the pickle layout
#: changes (old stores are then simply ignored rather than misread).
CELL_SCHEMA_VERSION = 1

#: Job-spec fields that configure *how* a cell runs, not *what* it computes.
#: They are stripped from the key material; see the module docstring.
_EXECUTION_ONLY_JOB_FIELDS = ("snapshot_path",)
_EXECUTION_ONLY_CONFIG_FIELDS = ("workers",)


def canonical_job(job: Any) -> Any:
    """The JSON-safe, execution-plane-free canonical form of a job spec."""
    data = json_safe(job)
    if isinstance(data, dict):
        for field in _EXECUTION_ONLY_JOB_FIELDS:
            data.pop(field, None)
        config = data.get("config")
        if isinstance(config, dict):
            for field in _EXECUTION_ONLY_CONFIG_FIELDS:
                config.pop(field, None)
    return data


def cell_key(experiment: str, job: Any) -> str:
    """Content-derived identity of one grid cell.

    Args:
        experiment: the registry name of the experiment the cell belongs to.
        job: the picklable job spec (a frozen dataclass of plain values).

    Returns:
        A hex digest stable across processes, hosts and worker counts.
    """
    material = {
        "cell_schema": CELL_SCHEMA_VERSION,
        "result_schema": RESULT_SCHEMA_VERSION,
        "experiment": experiment,
        "job_type": type(job).__qualname__,
        "job": canonical_job(job),
    }
    encoded = json.dumps(material, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


class CellStore:
    """One directory of completed cell results, keyed by :func:`cell_key`.

    Args:
        root: directory the store writes into (created on first save).
        extra_roots: additional read-only stores consulted by :meth:`has` /
            :meth:`load` — this is how ``repro shard merge`` reassembles a
            grid from several per-shard stores without copying files.
    """

    CELL_DIR = "cells"
    SUFFIX = ".pkl"

    def __init__(
        self,
        root: Union[str, Path],
        extra_roots: Sequence[Union[str, Path]] = (),
    ) -> None:
        self.root = Path(root)
        self.extra_roots = tuple(Path(extra) for extra in extra_roots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extras = f", extra_roots={list(map(str, self.extra_roots))}" if self.extra_roots else ""
        return f"CellStore({str(self.root)!r}{extras})"

    # ------------------------------------------------------------------ paths
    def _cell_path(self, root: Path, key: str) -> Path:
        return root / self.CELL_DIR / f"{key}{self.SUFFIX}"

    def _lookup(self, key: str) -> Union[Path, None]:
        for root in (self.root, *self.extra_roots):
            path = self._cell_path(root, key)
            if path.is_file():
                return path
        return None

    # ------------------------------------------------------------------- read
    def has(self, key: str) -> bool:
        """Whether a completed result for ``key`` exists in any root."""
        return self._lookup(key) is not None

    def load(self, key: str) -> Any:
        """Load one completed cell result."""
        path = self._lookup(key)
        if path is None:
            raise KeyError(f"no checkpointed cell {key!r} under {self.root}")
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def keys(self) -> list[str]:
        """All cell keys visible through this store, sorted."""
        found = set()
        for root in (self.root, *self.extra_roots):
            cell_dir = root / self.CELL_DIR
            if not cell_dir.is_dir():
                continue
            found.update(
                path.name[: -len(self.SUFFIX)]
                for path in cell_dir.iterdir()
                if path.name.endswith(self.SUFFIX)
            )
        return sorted(found)

    def __len__(self) -> int:
        return len(self.keys())

    # ------------------------------------------------------------------ write
    def save(self, key: str, result: Any) -> Path:
        """Persist one completed cell result atomically.

        Concurrent writers of the same key (two shard runners with
        overlapping slices, or a resume racing a straggler) are harmless:
        both pickles hold the same deterministic result and ``os.replace``
        is atomic, so readers always see one complete file.
        """
        path = self._cell_path(self.root, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # -------------------------------------------------------------- manifest
    MANIFEST = "shard.json"

    def write_manifest(self, data: dict[str, Any]) -> Path:
        """Record shard provenance (experiment, slice, counts) for humans."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / self.MANIFEST
        path.write_text(json.dumps(json_safe(data), indent=2, sort_keys=True) + "\n")
        return path

    def read_manifests(self) -> list[dict[str, Any]]:
        """All shard manifests visible through this store's roots."""
        manifests = []
        for root in (self.root, *self.extra_roots):
            path = root / self.MANIFEST
            if path.is_file():
                manifests.append(json.loads(path.read_text()))
        return manifests


def missing_keys(store: CellStore, keys: Iterable[str]) -> list[str]:
    """The subset of ``keys`` with no completed result in ``store``."""
    return [key for key in keys if not store.has(key)]
