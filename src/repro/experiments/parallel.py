"""Parallel experiment execution.

Every figure and extension in this repository aggregates *independent*
(protocol, seed) simulations: each job builds its own network from one master
seed, runs its own :class:`~repro.sim.engine.Simulator`, and the driver merges
the per-job results.  That independence is what :class:`ParallelRunner`
exploits — jobs fan out over a process pool and a deterministic merge step
(performed by each driver, in job-submission order) reproduces the exact
serial aggregates.

Determinism contract
--------------------

* Each job derives **all** of its randomness from its own master seed through
  :class:`~repro.sim.rng.RandomService`, so a job's result does not depend on
  which process runs it, or when.
* ``map_jobs`` returns results **in submission order**, regardless of
  completion order, so driver-side merges see the same sequence as the serial
  loop.
* ``workers <= 1`` does not touch ``multiprocessing`` at all: the job function
  is invoked inline, which is the bit-exact serial path.

Consequently ``workers=1`` and ``workers=N`` produce identical results — the
only difference is wall-clock time.

Job specifications must be picklable (frozen dataclasses of plain values) and
the job function must be a module-level callable, so specs survive the trip
through a process pool under every start method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TypeVar

from repro.experiments.backends import (  # noqa: F401 - resolve_workers re-exported
    InlineBackend,
    PoolBackend,
    resolve_workers,
)
from repro.experiments.config import ExperimentConfig
from repro.workloads.scenarios import AttackSpec, ChurnSchedule

JobT = TypeVar("JobT")
ResultT = TypeVar("ResultT")


class ParallelRunner:
    """Fans picklable job specs out over a process pool, preserving order.

    Since the execution-plane refactor this is a thin facade over the
    executor backends (:mod:`repro.experiments.backends`): the serial path
    is :class:`~repro.experiments.backends.InlineBackend` and the
    multi-process path is :class:`~repro.experiments.backends.PoolBackend`,
    which chunks adaptively and streams results back via ``as_completed``
    with an ordered regroup — submission-order return is preserved, but a
    caller's ``on_result`` callback sees each completed prefix immediately
    instead of waiting for the whole map.

    Args:
        workers: worker processes; 0 means one per CPU, and 1 (the default)
            executes jobs inline with no multiprocessing involved.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 0:
            raise ValueError("workers cannot be negative (0 means one per CPU)")
        self.workers = workers

    @classmethod
    def from_config(cls, config: ExperimentConfig) -> "ParallelRunner":
        """Runner configured from :attr:`ExperimentConfig.workers`."""
        return cls(workers=config.workers)

    def map_jobs(
        self,
        job_fn: Callable[[JobT], ResultT],
        jobs: Sequence[JobT],
        *,
        on_result: Optional[Callable[[int, ResultT], None]] = None,
    ) -> list[ResultT]:
        """Run ``job_fn`` over every job, returning results in job order.

        ``job_fn`` must be a module-level function and every job spec must be
        picklable when more than one worker is used.  ``on_result(index,
        result)`` is invoked in submission order as results become available
        (streaming), letting driver-side merges and checkpoint writes
        overlap slow straggler cells.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        workers = resolve_workers(self.workers, len(jobs))
        if workers <= 1:
            backend = InlineBackend()
        else:
            backend = PoolBackend(workers)
        return backend.run(job_fn, jobs, on_result)


# --------------------------------------------------------------------- jobs
@dataclass(frozen=True)
class PropagationJob:
    """One (protocol label, seed) propagation campaign.

    Attributes:
        label: protocol label as reported in results (may carry a threshold
            suffix, e.g. ``"bcbpt@50ms"``).
        policy_name: the underlying policy to build (``"bitcoin"``, ``"lbc"``
            or ``"bcbpt"``).
        threshold_s: BCBPT latency threshold ``d_t`` in seconds.
        seed: master seed for the job's network and simulator.
        config: shared experiment configuration.
        snapshot_path: optional path to a pre-built network snapshot for this
            job's (node count, seed); when set the worker loads it instead of
            rebuilding the network (stream-exact, so results are unchanged).
    """

    label: str
    policy_name: str
    threshold_s: float
    seed: int
    config: ExperimentConfig
    snapshot_path: Optional[str] = None


@dataclass(frozen=True)
class PropagationJobResult:
    """Everything the serial merge reads from one propagation campaign."""

    label: str
    seed: int
    result: object  # PropagationResult; typed loosely to avoid an import cycle
    cluster_summary: dict[str, float]
    build_report: object


def run_propagation_job(job: PropagationJob) -> PropagationJobResult:
    """Execute one (protocol, seed) campaign — the process-pool entry point."""
    # Imported lazily: this module is imported by config-level code and the
    # experiment runner imports us back for the fan-out.
    from repro.experiments.runner import PropagationExperiment
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    parameters = NetworkParameters(node_count=job.config.node_count, seed=job.seed)
    scenario = build_scenario(
        job.policy_name,
        parameters,
        latency_threshold_s=job.threshold_s,
        max_outbound=job.config.max_outbound,
        snapshot=job.snapshot_path,
    )
    scenario.name = job.label
    experiment = PropagationExperiment(scenario, job.config)
    result = experiment.run()
    return PropagationJobResult(
        label=job.label,
        seed=job.seed,
        result=result,
        cluster_summary=result.cluster_summaries[job.seed],
        build_report=result.build_reports[job.seed],
    )


@dataclass(frozen=True)
class DoubleSpendJob:
    """One (protocol, seed) batch of double-spend races."""

    protocol: str
    seed: int
    races_per_seed: int
    race_horizon_s: float
    config: ExperimentConfig


@dataclass(frozen=True)
class DoubleSpendJobResult:
    """Per-(protocol, seed) race tallies, merged by the driver."""

    protocol: str
    seed: int
    races: int
    attacker_shares: tuple[float, ...]
    detections: int
    detection_times_s: tuple[float, ...]


def run_doublespend_job(job: DoubleSpendJob) -> DoubleSpendJobResult:
    """Stage one seed's double-spend races — the process-pool entry point."""
    from repro.experiments.doublespend import run_doublespend_seed

    return run_doublespend_seed(job)


@dataclass(frozen=True)
class ThresholdJob:
    """One (threshold, seed) BCBPT campaign for the fine-grained sweep."""

    threshold_s: float
    seed: int
    config: ExperimentConfig


@dataclass(frozen=True)
class ThresholdJobResult:
    """Per-(threshold, seed) measurements merged by the sweep driver."""

    threshold_s: float
    seed: int
    delay_samples: tuple[float, ...]
    cluster_count: float
    mean_cluster_size: float
    mean_link_rtt_s: Optional[float]
    long_link_fraction: Optional[float]


def run_threshold_job(job: ThresholdJob) -> ThresholdJobResult:
    """Execute one sweep point — the process-pool entry point."""
    from repro.experiments.runner import PropagationExperiment
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    scenario = build_scenario(
        "bcbpt",
        NetworkParameters(node_count=job.config.node_count, seed=job.seed),
        latency_threshold_s=job.threshold_s,
        max_outbound=job.config.max_outbound,
    )
    experiment = PropagationExperiment(scenario, job.config)
    result = experiment.run()
    summary = scenario.policy.clusters.summary()
    network = scenario.network.network
    links = list(network.topology.links())
    mean_link_rtt_s: Optional[float] = None
    long_link_fraction: Optional[float] = None
    if links:
        mean_link_rtt_s = sum(
            network.base_rtt(link.node_a, link.node_b) for link in links
        ) / len(links)
        long_link_fraction = sum(1 for link in links if link.is_long_link) / len(links)
    return ThresholdJobResult(
        threshold_s=job.threshold_s,
        seed=job.seed,
        delay_samples=tuple(result.delays.samples),
        cluster_count=summary["cluster_count"],
        mean_cluster_size=summary["mean_size"],
        mean_link_rtt_s=mean_link_rtt_s,
        long_link_fraction=long_link_fraction,
    )


@dataclass(frozen=True)
class ChurnResilienceJob:
    """One (protocol, churn level, seed) dynamic-membership campaign.

    Attributes:
        protocol: policy under test (one of ``POLICY_NAMES``).
        level: human-readable churn-intensity label (``"static"``, ...).
        schedule: the churn schedule for this level, or None for a static
            (no-churn) control.
        threshold_s: BCBPT latency threshold ``d_t`` in seconds.
        seed: master seed for the job's network and simulator.
        config: shared experiment configuration.
    """

    protocol: str
    level: str
    schedule: Optional[ChurnSchedule]
    threshold_s: float
    seed: int
    config: ExperimentConfig


@dataclass(frozen=True)
class ChurnJobResult:
    """Everything the churn-resilience merge reads from one campaign."""

    protocol: str
    level: str
    seed: int
    delay_samples: tuple[float, ...]
    coverages: tuple[float, ...]
    timed_out_receptions: int
    failed_runs: int
    join_events: int
    leave_events: int
    repair_sweeps: int
    orphans_reassigned: int
    representatives_replaced: int
    bridges_created: int
    cluster_before: dict[str, float]
    cluster_after: dict[str, float]


def run_churn_resilience_job(job: ChurnResilienceJob) -> ChurnJobResult:
    """Execute one churn campaign — the process-pool entry point."""
    from repro.experiments.churn_resilience import run_churn_seed

    return run_churn_seed(job)


@dataclass(frozen=True)
class RelayJob:
    """One (relay strategy, protocol, seed) block-propagation campaign.

    Attributes:
        relay: relay-strategy name (one of
            :data:`repro.protocol.relay.RELAY_NAMES`).
        protocol: neighbour-selection policy under test.
        seed: master seed for the job's network and simulator.
        blocks: blocks mined (and measured) in the campaign.
        txs_per_block: fresh transactions injected and drained before each
            block, so compact reconstruction has a mempool to draw from.
        block_horizon_s: simulated time allowed for each block to reach the
            whole network.
        threshold_s: BCBPT latency threshold ``d_t`` in seconds.
        config: shared experiment configuration.
    """

    relay: str
    protocol: str
    seed: int
    blocks: int
    txs_per_block: int
    block_horizon_s: float
    threshold_s: float
    config: ExperimentConfig


@dataclass(frozen=True)
class RelayJobResult:
    """Per-(relay, protocol, seed) tallies merged by the relay driver."""

    relay: str
    protocol: str
    seed: int
    block_delay_samples: tuple[float, ...]
    blocks_measured: int
    relay_messages: int
    relay_bytes: int
    block_payload_bytes: int
    message_breakdown: dict[str, int]
    coverage: float
    compact_blocks_reconstructed: int
    compact_txs_requested: int
    compact_fallbacks: int
    blocks_pushed: int
    compact_txn_timeouts: int = 0
    adaptive_fanout_widened: int = 0
    adaptive_fanout_narrowed: int = 0
    mean_final_fanout: float = float("nan")
    fanout_samples: tuple[tuple[float, int], ...] = ()
    getheaders_sent: int = 0
    headers_received: int = 0
    header_bodies_requested: int = 0


def run_relay_job(job: RelayJob) -> RelayJobResult:
    """Execute one relay campaign — the process-pool entry point."""
    from repro.experiments.relay_comparison import run_relay_seed

    return run_relay_seed(job)


@dataclass(frozen=True)
class ScaleJob:
    """One (node count, protocol, seed) scale-measurement cell.

    Attributes:
        node_count: network size of this ladder point.
        protocol: neighbour-selection policy under test.
        seed: master seed for the cell's network and simulator.
        threshold_s: BCBPT latency threshold ``d_t`` in seconds.
        prune_depth: ``NodeConfig.prune_depth`` applied to every node (None
            disables in-run pruning).
        cell_runs: measurement runs per cell (kept small — the cell measures
            resource scaling, not delay statistics).
        profile_memory: trace the cell's Python allocations with
            ``tracemalloc`` (accurate per-cell peaks, roughly 2x slower).
        snapshot_path: optional pre-built network snapshot for this
            (node count, seed); the worker loads it instead of rebuilding.
        config: shared experiment configuration.
    """

    node_count: int
    protocol: str
    seed: int
    threshold_s: float
    prune_depth: Optional[int]
    cell_runs: int
    profile_memory: bool
    snapshot_path: Optional[str]
    config: ExperimentConfig


@dataclass(frozen=True)
class ScaleJobResult:
    """Per-cell resource measurements merged by the scale driver."""

    node_count: int
    protocol: str
    seed: int
    build_s: float
    run_s: float
    events: int
    delay_samples: int
    peak_traced_mb: Optional[float]
    rss_mb: float
    state_prunes: int
    pruned_inventory_entries: int

    @property
    def wall_s(self) -> float:
        """Total cell wall time (network acquire + campaign)."""
        return self.build_s + self.run_s

    @property
    def events_per_s(self) -> float:
        """Simulation throughput over the campaign phase."""
        if self.run_s <= 0:
            return float("nan")
        return self.events / self.run_s


def run_scale_job(job: ScaleJob) -> ScaleJobResult:
    """Execute one scale cell — the process-pool entry point."""
    import resource
    import time
    import tracemalloc

    from repro.experiments.runner import PropagationExperiment
    from repro.experiments.scale import scale_parameters
    from repro.workloads.scenarios import build_scenario

    cfg = job.config.with_overrides(
        node_count=job.node_count,
        runs=job.cell_runs,
        measuring_nodes=1,
        seeds=(job.seed,),
    )
    if job.profile_memory:
        tracemalloc.start()
    try:
        start = time.perf_counter()
        scenario = build_scenario(
            job.protocol,
            scale_parameters(job.node_count, job.seed, job.prune_depth),
            latency_threshold_s=job.threshold_s,
            max_outbound=cfg.max_outbound,
            snapshot=job.snapshot_path,
        )
        built = time.perf_counter()
        result = PropagationExperiment(scenario, cfg, fund_measuring_only=True).run()
        finished = time.perf_counter()
        peak_traced_mb: Optional[float] = None
        if job.profile_memory:
            peak_traced_mb = tracemalloc.get_traced_memory()[1] / 1e6
    finally:
        if job.profile_memory:
            tracemalloc.stop()
    nodes = scenario.network.nodes.values()
    return ScaleJobResult(
        node_count=job.node_count,
        protocol=job.protocol,
        seed=job.seed,
        build_s=built - start,
        run_s=finished - built,
        events=scenario.simulator.events_executed,
        delay_samples=len(result.delays),
        peak_traced_mb=peak_traced_mb,
        # ru_maxrss is the process-lifetime high-water mark in KB on Linux;
        # under a reused pool worker it is an upper bound, not a per-cell peak
        # (the tracemalloc figure is the per-cell one).
        rss_mb=resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
        state_prunes=sum(node.stats.state_prunes for node in nodes),
        pruned_inventory_entries=sum(
            node.stats.pruned_inventory_entries for node in nodes
        ),
    )


@dataclass(frozen=True)
class OverheadJob:
    """One (protocol, seed) topology-build + campaign overhead measurement."""

    protocol: str
    seed: int
    config: ExperimentConfig


@dataclass(frozen=True)
class OverheadJobResult:
    """Per-(protocol, seed) overhead counters merged by the overhead driver."""

    protocol: str
    seed: int
    ping_messages_per_node: float
    control_messages_per_node: float
    control_bytes_per_node: float
    handshake_messages_per_node: float
    total_build_bytes_per_node: float
    delay_samples: tuple[float, ...]


def run_overhead_job(job: OverheadJob) -> OverheadJobResult:
    """Measure one seed's build overhead and delays — process-pool entry point."""
    from repro.experiments.overhead import run_overhead_seed

    return run_overhead_seed(job)


@dataclass(frozen=True)
class EclipseJob:
    """One (protocol, seed) eclipse-exposure measurement."""

    protocol: str
    seed: int
    adversary_fraction: float
    config: ExperimentConfig


@dataclass(frozen=True)
class EclipseJobResult:
    """Per-(protocol, seed) eclipse counters merged by the attacks driver."""

    protocol: str
    seed: int
    victim_connection_count: int
    adversarial_connection_count: int


def run_eclipse_job(job: EclipseJob) -> EclipseJobResult:
    """Measure one seed's eclipse exposure — process-pool entry point."""
    from repro.experiments.attacks import run_eclipse_seed

    return run_eclipse_seed(job)


@dataclass(frozen=True)
class PartitionJob:
    """One (protocol, seed) partition-cost measurement."""

    protocol: str
    seed: int
    config: ExperimentConfig


@dataclass(frozen=True)
class PartitionJobResult:
    """Per-(protocol, seed) partition counters merged by the attacks driver."""

    protocol: str
    seed: int
    target_group_size: int
    boundary_links: int
    total_links: int
    partition_achieved: bool
    largest_component_fraction: float


def run_partition_job(job: PartitionJob) -> PartitionJobResult:
    """Measure one seed's partition cost — process-pool entry point."""
    from repro.experiments.attacks import run_partition_seed

    return run_partition_seed(job)


@dataclass(frozen=True)
class AttackJob:
    """One (attack, protocol, seed) dynamic-adversary campaign.

    Attributes:
        attack: attack kind (one of
            :data:`repro.workloads.scenarios.ATTACK_KINDS`; ``"none"`` is the
            honest baseline cell the degradation metrics divide by).
        protocol: neighbour-selection policy under test.
        seed: master seed for the cell's network, adversary and mining
            streams.
        spec: the full adversary composition (picklable).
        blocks: blocks mined (and measured) in the campaign.
        txs_per_block: fresh transactions injected before each block.
        block_horizon_s: simulated seconds allowed per block to spread.
        threshold_s: BCBPT latency threshold ``d_t`` in seconds.
        config: shared experiment configuration.
    """

    attack: str
    protocol: str
    seed: int
    spec: AttackSpec
    blocks: int
    txs_per_block: int
    block_horizon_s: float
    threshold_s: float
    config: ExperimentConfig


@dataclass(frozen=True)
class AttackJobResult:
    """Per-(attack, protocol, seed) dynamic outcomes merged by the driver.

    Plain values only (tuples, never live distributions; ``None`` — not NaN,
    which breaks ``==`` across a pickle round trip — for unmeasured revenue),
    so the pooled payload compares field-by-field across worker counts.
    """

    attack: str
    protocol: str
    seed: int
    block_delay_samples: tuple[float, ...]
    blocks_measured: int
    coverage: float
    victim_coverage: float
    byzantine_nodes: tuple[int, ...]
    messages_suppressed: int
    attacker_id: int
    attacker_hashpower: float
    blocks_withheld: int
    blocks_released: int
    races_started: int
    revenue_share: Optional[float]


def run_attack_job(job: AttackJob) -> AttackJobResult:
    """Execute one dynamic attack cell — the process-pool entry point."""
    from repro.experiments.attacks import run_attack_seed

    return run_attack_seed(job)


@dataclass(frozen=True)
class AblationJob:
    """One (variant, seed) BCBPT ablation measurement."""

    variant: str
    seed: int
    verification_enabled: bool
    long_links_per_node: int
    config: ExperimentConfig


@dataclass(frozen=True)
class AblationJobResult:
    """Per-(variant, seed) measurements merged by the ablation driver."""

    variant: str
    seed: int
    delay_samples: tuple[float, ...]
    average_degree: float
    average_path_length: float


def run_ablation_job(job: AblationJob) -> AblationJobResult:
    """Execute one ablation point — the process-pool entry point."""
    from repro.experiments.ablation import build_ablation_scenario
    from repro.experiments.runner import PropagationExperiment

    scenario = build_ablation_scenario(
        job.config,
        job.seed,
        verification_enabled=job.verification_enabled,
        long_links_per_node=job.long_links_per_node,
    )
    topology = scenario.network.network.topology
    average_degree = topology.average_degree()
    average_path_length = topology.average_shortest_path_length()
    result = PropagationExperiment(scenario, job.config).run()
    return AblationJobResult(
        variant=job.variant,
        seed=job.seed,
        delay_samples=tuple(result.delays.samples),
        average_degree=average_degree,
        average_path_length=average_path_length,
    )


@dataclass(frozen=True)
class LoadJob:
    """One (protocol, offered load, seed) sustained-traffic cell.

    Attributes:
        protocol: neighbour-selection policy under test.
        offered_tps: target aggregate transaction arrival rate (tx/s).
        profile_kind: traffic schedule shape (``"constant"``, ``"ramp"`` or
            ``"step"``; ramp/step reach ``offered_tps`` halfway through the
            horizon).
        seed: master seed for the cell's network, traffic and mining streams.
        horizon_s: simulated seconds of sustained load.
        block_interval_s: network-wide mean block interval.
        max_block_bytes: block size cap (drives the fee market once offered
            bytes/s exceed block bytes/s).
        mempool_max_size: per-node mempool capacity (fee-priority eviction
            above it).
        confirmation_depth: burials needed before a transaction counts as
            confirmed (``k`` in tx-generated → buried-``k``-deep).
        mean_fee_satoshi: mean of the exponential per-transaction fee draw.
        funding_outputs: confirmed outputs funded per node before load starts.
        threshold_s: BCBPT latency threshold ``d_t`` in seconds.
        config: shared experiment configuration.
    """

    protocol: str
    offered_tps: float
    profile_kind: str
    seed: int
    horizon_s: float
    block_interval_s: float
    max_block_bytes: int
    mempool_max_size: int
    confirmation_depth: int
    mean_fee_satoshi: float
    funding_outputs: int
    threshold_s: float
    config: ExperimentConfig


@dataclass(frozen=True)
class LoadJobResult:
    """Per-(protocol, rate, seed) streamed tallies merged by the load driver.

    Confirmation quantiles are P² streaming estimates finalised inside the
    worker (the estimator state cannot be merged), so the driver only ever
    aggregates per-seed scalars — which is what makes the merge independent
    of worker count.
    """

    protocol: str
    offered_tps: float
    seed: int
    txs_generated: int
    generation_failures: int
    txs_confirmed: int
    pending_at_end: int
    confirmation_p50_s: float
    confirmation_p99_s: float
    confirmation_mean_s: float
    confirmation_max_s: float
    backlog_curve: tuple[tuple[float, int], ...]
    blocks_mined: int
    full_blocks_mined: int
    total_fees_collected: int
    fee_evictions: int
    capacity_drops: int
    conflict_evictions: int
    events: int
    horizon_s: float

    @property
    def generated_tps(self) -> float:
        """Achieved generation rate (tx/s) over the horizon."""
        return self.txs_generated / self.horizon_s if self.horizon_s > 0 else 0.0

    @property
    def confirmed_tps(self) -> float:
        """Confirmed throughput (tx/s) over the horizon."""
        return self.txs_confirmed / self.horizon_s if self.horizon_s > 0 else 0.0

    @property
    def backlog_final(self) -> int:
        """Observer mempool depth at the end of the horizon."""
        return self.backlog_curve[-1][1] if self.backlog_curve else 0

    @property
    def backlog_mid(self) -> int:
        """Observer mempool depth halfway through the horizon."""
        if not self.backlog_curve:
            return 0
        return self.backlog_curve[len(self.backlog_curve) // 2][1]


def run_load_job(job: LoadJob) -> LoadJobResult:
    """Execute one load cell — the process-pool entry point."""
    from repro.experiments.load_frontier import run_load_seed

    return run_load_seed(job)
