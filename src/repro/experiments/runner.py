"""The propagation experiment runner.

:class:`PropagationExperiment` executes the paper's measurement methodology on
one built :class:`~repro.workloads.scenarios.Scenario`:

1. fund every node so wallets can emit payments;
2. pick a set of measuring nodes spread across the id space;
3. run the Fig. 2 measuring-node campaign from each of them;
4. aggregate the Δt_{m,n} samples into one distribution per protocol.

:func:`run_protocol_comparison` repeats that over several protocols and seeds
on *identically parameterised* networks — the controlled comparison behind
Fig. 3 — and returns per-protocol aggregates.  Because every (protocol, seed)
job is an independent simulation, the comparison fans jobs out over the shared
seed-grid executor (:func:`~repro.experiments.grid.run_seed_grid`, layered on
:class:`~repro.experiments.parallel.ParallelRunner`) when
``config.workers != 1``; the merge below consumes job results in submission
order, so the aggregates are identical for every worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.analysis.samples import SampleLog
from repro.experiments.backends import current_plan
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import PropagationJob, run_propagation_job
from repro.measurement.measuring_node import CampaignResult, MeasurementCampaign, MeasuringNode
from repro.measurement.stats import DelayDistribution
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, ensure_network_snapshot
from repro.workloads.scenarios import Scenario, validate_policy_name


@dataclass
class PropagationResult:
    """Aggregated propagation-delay measurements for one protocol.

    Attributes:
        protocol: protocol label ("bitcoin", "lbc", "bcbpt", or
            "bcbpt@XXms" for threshold sweeps).
        delays: all Δt samples pooled across seeds and measuring nodes.
        per_seed: Δt distribution per master seed.
        per_rank: Δt distribution by reception rank (1 = first connection to
            receive), pooled across seeds — the x-axis of the paper's figures.
        campaigns: the underlying per-measuring-node campaign results.
        cluster_summaries: cluster statistics per seed (empty for "bitcoin").
        build_reports: topology build reports per seed.
    """

    protocol: str
    delays: DelayDistribution = field(default_factory=DelayDistribution)
    per_seed: dict[int, DelayDistribution] = field(default_factory=dict)
    per_rank: dict[int, DelayDistribution] = field(default_factory=dict)
    campaigns: list[CampaignResult] = field(default_factory=list)
    cluster_summaries: dict[int, dict[str, float]] = field(default_factory=dict)
    build_reports: dict[int, object] = field(default_factory=dict)

    def summary(self) -> dict[str, float]:
        """Summary statistics of the pooled Δt distribution."""
        return self.delays.summary()

    def rank_variance_curve(self) -> list[tuple[int, float]]:
        """(rank, variance) pairs pooled across campaigns."""
        curve = []
        for rank in sorted(self.per_rank):
            dist = self.per_rank[rank]
            if len(dist) >= 2:
                curve.append((rank, dist.variance()))
        return curve

    def rank_mean_curve(self) -> list[tuple[int, float]]:
        """(rank, mean Δt) pairs pooled across campaigns."""
        return [
            (rank, self.per_rank[rank].mean())
            for rank in sorted(self.per_rank)
            if len(self.per_rank[rank]) >= 1
        ]


def select_measuring_nodes(node_ids: Sequence[int], count: int) -> list[int]:
    """Measuring nodes spread evenly across the node id space.

    The single source of the placement rule: every experiment that rotates
    measuring nodes (the figure campaigns, the churn-resilience sweep) uses
    this, so cross-experiment comparisons observe from the same nodes.
    """
    count = min(count, len(node_ids))
    stride = max(1, len(node_ids) // count)
    return [node_ids[i * stride] for i in range(count)]


class PropagationExperiment:
    """Runs the measuring-node campaign on one prepared scenario.

    Args:
        scenario: the built scenario to measure.
        config: shared experiment configuration.
        fund_measuring_only: fund only the measuring nodes instead of every
            node.  Only measuring nodes spend during a campaign, but funding
            everyone installs O(nodes × outputs) UTXO entries *per node* —
            quadratic in network size — so 10k-node scale cells opt out.
            Default False: the funding block's contents feed every node's
            inventory, so the figure experiments keep the historical
            fund-everyone behaviour (pinned by the golden-fingerprint tests).
    """

    def __init__(
        self,
        scenario: Scenario,
        config: Optional[ExperimentConfig] = None,
        *,
        fund_measuring_only: bool = False,
    ) -> None:
        self.scenario = scenario
        self.config = config if config is not None else ExperimentConfig(
            node_count=scenario.network.node_count
        )
        self.fund_measuring_only = fund_measuring_only
        self._funded = False

    def _ensure_funding(self) -> None:
        if self._funded:
            return
        fund_nodes(
            list(self.scenario.network.nodes.values()),
            outputs_per_node=self.config.funding_outputs,
            funded_node_ids=self.measuring_node_ids() if self.fund_measuring_only else None,
        )
        self._funded = True

    def measuring_node_ids(self) -> list[int]:
        """Measuring nodes spread evenly across the node id space."""
        return select_measuring_nodes(
            self.scenario.network.node_ids(), self.config.measuring_nodes
        )

    def run(self, repetitions: Optional[int] = None) -> PropagationResult:
        """Execute the campaign and return pooled results for this scenario."""
        self._ensure_funding()
        runs = repetitions if repetitions is not None else self.config.runs
        result = PropagationResult(protocol=self.scenario.name)
        simulated = self.scenario.network
        for measuring_id in self.measuring_node_ids():
            node = simulated.node(measuring_id)
            measuring = MeasuringNode(
                node,
                simulated.simulator.random.stream(f"measuring-{measuring_id}"),
                payment_satoshi=self.config.payment_satoshi,
                run_timeout_s=self.config.run_timeout_s,
                exclude_long_links=self.config.exclude_long_links,
            )
            campaign = MeasurementCampaign(measuring, self.scenario.name)
            campaign_result = campaign.run(runs)
            result.campaigns.append(campaign_result)
            result.delays = result.delays.merge(campaign_result.delays)
            for rank, dist in campaign_result.per_rank_delays.items():
                result.per_rank.setdefault(rank, DelayDistribution()).extend(dist.samples)
        seed = simulated.parameters.seed
        result.per_seed[seed] = result.delays
        result.cluster_summaries[seed] = self.scenario.policy.clusters.summary()
        result.build_reports[seed] = self.scenario.build_report
        return result


def collect_propagation_samples(
    results: dict[str, PropagationResult],
) -> SampleLog:
    """Raw-sample extraction shared by the propagation experiments (Fig. 3/4).

    Per label, the log carries one ``delay_s`` series per master seed (in the
    merge's insertion order, so the pooled concatenation reproduces
    ``PropagationResult.delays`` exactly and is worker-count invariant) plus
    the ``rank_variance_s2`` curve the paper plots against the connection
    rank.  This is what lets ``repro report`` regenerate Fig. 3/4 from a
    stored envelope without re-simulation.
    """
    log = SampleLog()
    for label, result in results.items():
        log.add_per_seed(
            label,
            "delay_s",
            {seed: dist.samples for seed, dist in result.per_seed.items()},
            unit="s",
        )
        for rank, variance in result.rank_variance_curve():
            log.add_point(label, "rank_variance_s2", float(rank), variance, unit="s^2")
    return log


def run_protocol_comparison(
    protocols: Sequence[str],
    config: ExperimentConfig,
    *,
    thresholds: Optional[dict[str, float]] = None,
    snapshot_dir: Optional[Union[str, Path]] = None,
) -> dict[str, PropagationResult]:
    """Run the same measurement campaign under several protocols and seeds.

    Args:
        protocols: protocol labels to compare (see
            :data:`repro.workloads.scenarios.POLICY_NAMES`); a label of the
            form ``"bcbpt@50ms"`` selects BCBPT with that threshold.
        config: shared experiment configuration.
        thresholds: optional per-label latency-threshold overrides (seconds).
        snapshot_dir: when given, each (node count, seed) network is built
            once here (serially, before the fan-out) and every job loads the
            snapshot instead of rebuilding it.  Snapshots are stream-exact, so
            results are byte-identical with or without this; it trades disk
            for the per-job network build time the grid would otherwise
            repeat ``len(protocols)`` times per seed.  Defaults to the
            active :class:`~repro.experiments.backends.ExecutionPlan`'s
            ``snapshot_dir`` (the CLI's ``--snapshot-dir``), which also
            feeds the pool backend's warm per-worker snapshot caches.

    Returns:
        Label -> pooled :class:`PropagationResult` across all seeds.
    """
    resolved = {label: _parse_label(label, config, thresholds) for label in protocols}

    active = current_plan()
    if snapshot_dir is None and active is not None:
        snapshot_dir = active.snapshot_dir

    snapshot_paths: dict[int, str] = {}
    if snapshot_dir is not None and (active is None or active.execute):
        # Pre-build serially in the driver process: workers only ever read.
        # Skipped under `repro shard merge` (execute=False): no cell body
        # runs there, and cell keys never include snapshot paths.
        for seed in config.seeds:
            parameters = NetworkParameters(node_count=config.node_count, seed=seed)
            snapshot_paths[seed] = str(ensure_network_snapshot(parameters, snapshot_dir))

    def make_job(label: str, seed: int) -> PropagationJob:
        policy_name, threshold = resolved[label]
        return PropagationJob(
            label=label,
            policy_name=policy_name,
            threshold_s=threshold,
            seed=seed,
            config=config,
            snapshot_path=snapshot_paths.get(seed),
        )

    grid = run_seed_grid(protocols, make_job, run_propagation_job, config)

    # Merge in submission order — exactly the order the serial nested loop
    # used, so pooled aggregates are identical for every worker count.
    results: dict[str, PropagationResult] = {}
    for label, seed_results in grid:
        pooled = results.get(label)
        if pooled is None:
            pooled = results[label] = PropagationResult(protocol=label)
        for seed, job_result in zip(config.seeds, seed_results):
            result = job_result.result
            pooled.delays = pooled.delays.merge(result.delays)
            pooled.per_seed[seed] = result.delays
            pooled.campaigns.extend(result.campaigns)
            pooled.cluster_summaries[seed] = job_result.cluster_summary
            pooled.build_reports[seed] = job_result.build_report
            for rank, dist in result.per_rank.items():
                pooled.per_rank.setdefault(rank, DelayDistribution()).extend(dist.samples)
    return results


def _parse_label(
    label: str,
    config: ExperimentConfig,
    thresholds: Optional[dict[str, float]],
) -> tuple[str, float]:
    """Resolve a protocol label to (policy name, latency threshold).

    The base name is validated against
    :data:`~repro.workloads.scenarios.POLICY_NAMES` here, at job-construction
    time, so a typo fails immediately in the driver process instead of deep
    inside a pool worker.
    """
    if thresholds is not None and label in thresholds:
        base = label.split("@", 1)[0]
        return validate_policy_name(base), thresholds[label]
    if "@" in label:
        base, spec = label.split("@", 1)
        if not spec.endswith("ms"):
            raise ValueError(f"threshold spec must end in 'ms': {label!r}")
        return validate_policy_name(base), float(spec[:-2]) / 1000.0
    return validate_policy_name(label), config.latency_threshold_s
