"""Fig. 4 — Δt distribution for BCBPT under thresholds d_t ∈ {30, 50, 100} ms.

"Results reveal that less distance threshold performs less variance of delays
... the number of nodes at each cluster is minimised due to the limited
coverage physical topology which is offered [by] d_t."  This driver sweeps the
same three thresholds, reports the Δt summary per threshold plus the cluster
structure that explains the trend, and checks the monotonicity criterion.

Run via ``python -m repro.experiments run fig4 [--thresholds-ms 30 50 100]``;
``python -m repro.experiments.fig4`` remains as a deprecated shim.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_delay_summaries, format_table
from repro.experiments.runner import (
    PropagationResult,
    collect_propagation_samples,
    run_protocol_comparison,
)


def threshold_labels(thresholds_s: Sequence[float]) -> list[str]:
    """Protocol labels of the form ``"bcbpt@30ms"`` for a threshold sweep."""
    return [f"bcbpt@{round(t * 1000):g}ms" for t in thresholds_s]


def build_report(results: dict[str, PropagationResult]) -> ExperimentReport:
    """Turn Fig. 4 results into a structured text report."""
    report = ExperimentReport(
        experiment_id="Fig. 4",
        description="Δt distribution for BCBPT at d_t = 30, 50, 100 ms",
    )
    summaries = {name: result.summary() for name, result in results.items()}
    report.add_section("Delay summary by threshold", format_delay_summaries(summaries))
    report.add_data("summaries", summaries)

    cluster_rows = []
    for name, result in results.items():
        sizes = [s["mean_size"] for s in result.cluster_summaries.values() if s.get("cluster_count")]
        counts = [s["cluster_count"] for s in result.cluster_summaries.values() if s.get("cluster_count")]
        if sizes:
            cluster_rows.append(
                [
                    name,
                    sum(counts) / len(counts),
                    sum(sizes) / len(sizes),
                    summaries[name]["variance_s2"] * 1e6,
                ]
            )
    report.add_section(
        "Cluster structure vs delay variance",
        format_table(
            ["threshold", "mean cluster count", "mean cluster size", "variance (ms²)"],
            cluster_rows,
        ),
    )
    report.add_data("results", results)
    return report


def variance_is_monotone(results: dict[str, PropagationResult]) -> bool:
    """Reproduction criterion: Δt variance does not decrease as d_t grows."""
    ordered = sorted(results.items(), key=lambda item: _threshold_of(item[0]))
    variances = [result.summary()["variance_s2"] for _, result in ordered]
    return all(later >= earlier for earlier, later in zip(variances, variances[1:]))


def _threshold_of(label: str) -> float:
    if "@" not in label or not label.endswith("ms"):
        raise ValueError(f"not a threshold label: {label!r}")
    return float(label.split("@", 1)[1][:-2])


def summarize(results: dict[str, PropagationResult]) -> dict[str, dict[str, float]]:
    """Per-threshold scalar summaries for the result envelope."""
    return {name: result.summary() for name, result in results.items()}


@experiment(
    "fig4",
    experiment_id="Fig. 4",
    title="Δt distribution for BCBPT at d_t = 30, 50, 100 ms",
    description=__doc__,
    protocols=("bcbpt",),
    options=(
        ExperimentOption(
            flag="--thresholds-ms",
            dest="thresholds_ms",
            type=float,
            nargs="+",
            help="thresholds to sweep, in milliseconds (default: 30 50 100)",
            config_field="fig4_thresholds_s",
            convert=lambda values: tuple(t / 1000.0 for t in values),
        ),
    ),
    report=build_report,
    summarize=summarize,
    collect_samples=collect_propagation_samples,
    verdicts={"variance_monotone": variance_is_monotone},
)
def run_fig4(config: Optional[ExperimentConfig] = None) -> dict[str, PropagationResult]:
    """Execute the Fig. 4 threshold sweep and return per-threshold results."""
    cfg = config if config is not None else ExperimentConfig()
    labels = threshold_labels(cfg.fig4_thresholds_s)
    return run_protocol_comparison(labels, cfg)


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run fig4``."""
    return deprecated_main("fig4", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
