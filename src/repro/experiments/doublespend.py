"""Ext-4 — double-spend race outcomes under each protocol.

The paper motivates BCBPT with the fast-payment double-spend attack: slow
transaction propagation lets an attacker show a merchant one transaction while
the rest of the network (and its hash power) first sees a conflicting one.
This extension stages that race directly:

1. an attacker node builds a conflicting pair (pay-the-merchant vs
   pay-itself-back);
2. the merchant's copy is handed to the merchant's node and the attacker's
   copy is injected at a distant node at the same instant;
3. both propagate under the protocol's first-seen rule;
4. we record (a) how long the merchant needs to *detect* the conflict (hear
   about the attacker's transaction at all) and (b) what fraction of nodes —
   a proxy for hash power — first saw the attacker's version.

Faster propagation shortens the detection time and shrinks the attacker's
first-seen share, which is exactly the mechanism by which the paper argues
BCBPT reduces double-spend risk.

Run via ``python -m repro.experiments run doublespend [--races N --horizon S]``;
``python -m repro.experiments.doublespend`` remains as a deprecated shim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import (
    DoubleSpendJob,
    DoubleSpendJobResult,
    run_doublespend_job,
)
from repro.experiments.reporting import ExperimentReport, format_table
from repro.protocol.doublespend import DoubleSpendAttacker, merchant_detection, tally_first_seen
from repro.protocol.messages import TxMessage
from repro.protocol.node import NodeConfig
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import build_scenario

DOUBLESPEND_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")


def mean_detection_time_s(detection_times_s: Sequence[float]) -> float:
    """Mean merchant detection time; NaN when no race was detected.

    NaN (rather than 0.0 or an exception) keeps "never detected" visibly
    distinct from "detected instantly" in reports and comparisons.
    """
    if not detection_times_s:
        return float("nan")
    return sum(detection_times_s) / len(detection_times_s)


@dataclass(frozen=True)
class DoubleSpendPoint:
    """Aggregated race outcomes for one protocol."""

    protocol: str
    races: int
    mean_attacker_share: float
    mean_detection_time_s: float
    detection_rate: float

    def __post_init__(self) -> None:
        if self.races <= 0:
            raise ValueError("a double-spend point needs at least one race")


@experiment(
    "doublespend",
    experiment_id="Ext-4",
    title="Double-spend race outcomes (first-seen shares and detection)",
    description=__doc__,
    protocols=DOUBLESPEND_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--races",
            dest="races_per_seed",
            type=int,
            help="races per seed (default: 5)",
        ),
        ExperimentOption(
            flag="--horizon",
            dest="race_horizon_s",
            type=float,
            help="race horizon in simulated seconds (default: 2.0)",
        ),
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="protocols to evaluate (default: bitcoin lbc bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
    ),
    report=lambda points: build_report(points),
    summarize=lambda points: {p.protocol: asdict(p) for p in points},
)
def run_doublespend(
    config: Optional[ExperimentConfig] = None,
    *,
    races_per_seed: int = 5,
    race_horizon_s: float = 2.0,
    protocols: Sequence[str] = DOUBLESPEND_PROTOCOLS,
) -> list[DoubleSpendPoint]:
    """Stage repeated double-spend races under each protocol.

    (protocol, seed) race batches are independent simulations; the shared
    seed-grid executor fans them out over ``cfg.workers`` processes and
    regroups in submission order, so the outcome is identical for every
    worker count.
    """
    if races_per_seed <= 0:
        raise ValueError("races_per_seed must be positive")
    if race_horizon_s <= 0:
        raise ValueError("race_horizon_s must be positive")
    cfg = config if config is not None else ExperimentConfig()

    def make_job(protocol: str, seed: int) -> DoubleSpendJob:
        return DoubleSpendJob(
            protocol=protocol,
            seed=seed,
            races_per_seed=races_per_seed,
            race_horizon_s=race_horizon_s,
            config=cfg,
        )

    grid = run_seed_grid(protocols, make_job, run_doublespend_job, cfg)

    points: list[DoubleSpendPoint] = []
    for protocol, seed_results in grid:
        shares = [share for r in seed_results for share in r.attacker_shares]
        detection_times = [t for r in seed_results for t in r.detection_times_s]
        detections = sum(r.detections for r in seed_results)
        races = sum(r.races for r in seed_results)
        points.append(
            DoubleSpendPoint(
                protocol=protocol,
                races=races,
                mean_attacker_share=sum(shares) / len(shares) if shares else 0.0,
                mean_detection_time_s=mean_detection_time_s(detection_times),
                detection_rate=detections / races if races else 0.0,
            )
        )
    return points


def run_doublespend_seed(job: DoubleSpendJob) -> DoubleSpendJobResult:
    """Stage one seed's races under one protocol (the parallel job body)."""
    cfg = job.config
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(
            node_count=cfg.node_count,
            seed=job.seed,
            # Detection requires double-spend alerts: without them the
            # conflicting transaction halts at the first-seen frontier and
            # the merchant never hears of it (the old detection_rate=0 bug).
            node_config=NodeConfig(relay_conflicts=True),
        ),
        latency_threshold_s=cfg.latency_threshold_s,
        max_outbound=cfg.max_outbound,
    )
    simulated = scenario.network
    network = simulated.network
    simulator = simulated.simulator
    nodes = list(simulated.nodes.values())
    fund_nodes(nodes, outputs_per_node=job.races_per_seed + 1)
    node_ids = simulated.node_ids()
    attacker_id = node_ids[0]
    merchant_id = node_ids[len(node_ids) // 2]
    remote_id = node_ids[-1]
    attacker_node = simulated.node(attacker_id)
    merchant_node = simulated.node(merchant_id)
    attacker = DoubleSpendAttacker(attacker_node, merchant_node.keypair.address)
    shares: list[float] = []
    detection_times: list[float] = []
    detections = 0
    races = 0
    for _ in range(job.races_per_seed):
        pair = attacker.build_pair(cfg.payment_satoshi, created_at=simulator.now)
        start = simulator.now
        # Victim copy straight to the merchant, attacker copy to a distant
        # node, at the same instant.
        merchant_node.accept_transaction(pair.victim_tx, origin_peer=None)
        merchant_node.announce_transaction(pair.victim_tx.txid)
        network.send(
            attacker_id,
            remote_peer_for(network, attacker_id, remote_id),
            TxMessage(sender=attacker_id, transaction=pair.attacker_tx),
        )
        simulator.run(until=start + job.race_horizon_s)
        races += 1
        outcome = tally_first_seen(nodes, pair)
        shares.append(outcome.attacker_share)
        detected, detection_time = merchant_detection(
            merchant_node, pair, start_time=start, horizon_s=job.race_horizon_s
        )
        if detected:
            detections += 1
            detection_times.append(detection_time)
    return DoubleSpendJobResult(
        protocol=job.protocol,
        seed=job.seed,
        races=races,
        attacker_shares=tuple(shares),
        detections=detections,
        detection_times_s=tuple(detection_times),
    )


def remote_peer_for(network, attacker_id: int, preferred: int) -> int:
    """A peer of the attacker to inject the conflicting transaction through.

    The attacker pushes its self-paying transaction to one of its own
    neighbours (ideally one far from the merchant); if the preferred remote
    node is not a neighbour, the farthest current neighbour is used.
    """
    neighbors = network.neighbors(attacker_id)
    if not neighbors:
        raise RuntimeError(f"attacker {attacker_id} has no connections")
    if preferred in neighbors:
        return preferred
    return max(neighbors, key=lambda peer: network.base_rtt(attacker_id, peer))


def build_report(points: list[DoubleSpendPoint]) -> ExperimentReport:
    """Render the double-spend comparison."""
    report = ExperimentReport(
        experiment_id="Ext-4",
        description="Double-spend race outcomes (first-seen shares and detection)",
    )
    report.add_section(
        "Race outcomes",
        format_table(
            ["protocol", "races", "attacker share", "merchant detection rate", "mean detection s"],
            [
                [
                    p.protocol,
                    p.races,
                    p.mean_attacker_share,
                    p.detection_rate,
                    p.mean_detection_time_s,
                ]
                for p in points
            ],
        ),
    )
    report.add_data("points", points)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run doublespend``."""
    return deprecated_main("doublespend", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
