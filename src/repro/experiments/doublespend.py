"""Ext-4 — double-spend race outcomes under each protocol.

The paper motivates BCBPT with the fast-payment double-spend attack: slow
transaction propagation lets an attacker show a merchant one transaction while
the rest of the network (and its hash power) first sees a conflicting one.
This extension stages that race directly:

1. an attacker node builds a conflicting pair (pay-the-merchant vs
   pay-itself-back);
2. the merchant's copy is handed to the merchant's node and the attacker's
   copy is injected at a distant node at the same instant;
3. both propagate under the protocol's first-seen rule;
4. we record (a) how long the merchant needs to *detect* the conflict (hear
   about the attacker's transaction at all) and (b) what fraction of nodes —
   a proxy for hash power — first saw the attacker's version.

Faster propagation shortens the detection time and shrinks the attacker's
first-seen share, which is exactly the mechanism by which the paper argues
BCBPT reduces double-spend risk.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_table
from repro.protocol.doublespend import DoubleSpendAttacker, tally_first_seen
from repro.protocol.messages import TxMessage
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import build_scenario

DOUBLESPEND_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")


@dataclass(frozen=True)
class DoubleSpendPoint:
    """Aggregated race outcomes for one protocol."""

    protocol: str
    races: int
    mean_attacker_share: float
    mean_detection_time_s: float
    detection_rate: float

    def __post_init__(self) -> None:
        if self.races <= 0:
            raise ValueError("a double-spend point needs at least one race")


def run_doublespend(
    config: Optional[ExperimentConfig] = None,
    *,
    races_per_seed: int = 5,
    race_horizon_s: float = 2.0,
    protocols: Sequence[str] = DOUBLESPEND_PROTOCOLS,
) -> list[DoubleSpendPoint]:
    """Stage repeated double-spend races under each protocol."""
    if races_per_seed <= 0:
        raise ValueError("races_per_seed must be positive")
    if race_horizon_s <= 0:
        raise ValueError("race_horizon_s must be positive")
    cfg = config if config is not None else ExperimentConfig()
    points: list[DoubleSpendPoint] = []
    for protocol in protocols:
        shares: list[float] = []
        detection_times: list[float] = []
        detections = 0
        races = 0
        for seed in cfg.seeds:
            scenario = build_scenario(
                protocol,
                NetworkParameters(node_count=cfg.node_count, seed=seed),
                latency_threshold_s=cfg.latency_threshold_s,
                max_outbound=cfg.max_outbound,
            )
            simulated = scenario.network
            network = simulated.network
            simulator = simulated.simulator
            nodes = list(simulated.nodes.values())
            fund_nodes(nodes, outputs_per_node=races_per_seed + 1)
            rng = simulator.random.stream("doublespend")
            node_ids = simulated.node_ids()
            attacker_id = node_ids[0]
            merchant_id = node_ids[len(node_ids) // 2]
            remote_id = node_ids[-1]
            attacker_node = simulated.node(attacker_id)
            merchant_node = simulated.node(merchant_id)
            attacker = DoubleSpendAttacker(attacker_node, simulated.node(merchant_id).keypair.address)
            for _ in range(races_per_seed):
                pair = attacker.build_pair(cfg.payment_satoshi, created_at=simulator.now)
                start = simulator.now
                # Victim copy straight to the merchant, attacker copy to a
                # distant node, at the same instant.
                merchant_node.accept_transaction(pair.victim_tx, origin_peer=None)
                merchant_node.announce_transaction(pair.victim_tx.txid)
                network.send(
                    attacker_id,
                    remote_peer_for(network, attacker_id, remote_id),
                    TxMessage(sender=attacker_id, transaction=pair.attacker_tx),
                )
                simulator.run(until=start + race_horizon_s)
                races += 1
                outcome = tally_first_seen(nodes, pair)
                shares.append(outcome.attacker_share)
                if pair.attacker_tx.txid in merchant_node.known_transactions:
                    detections += 1
                    detection_times.append(race_horizon_s)
                # Detection time: when the merchant first learned of the
                # attacker transaction (reception implies knowledge).
                accept_time = None
                for node in nodes:
                    if node.node_id == merchant_id:
                        accept_time = node.transaction_accept_times.get(pair.attacker_tx.txid)
                if accept_time is not None and detection_times:
                    detection_times[-1] = accept_time - start
        points.append(
            DoubleSpendPoint(
                protocol=protocol,
                races=races,
                mean_attacker_share=sum(shares) / len(shares) if shares else 0.0,
                mean_detection_time_s=(
                    sum(detection_times) / len(detection_times) if detection_times else float("nan")
                ),
                detection_rate=detections / races if races else 0.0,
            )
        )
    return points


def remote_peer_for(network, attacker_id: int, preferred: int) -> int:
    """A peer of the attacker to inject the conflicting transaction through.

    The attacker pushes its self-paying transaction to one of its own
    neighbours (ideally one far from the merchant); if the preferred remote
    node is not a neighbour, the farthest current neighbour is used.
    """
    neighbors = network.neighbors(attacker_id)
    if not neighbors:
        raise RuntimeError(f"attacker {attacker_id} has no connections")
    if preferred in neighbors:
        return preferred
    return max(neighbors, key=lambda peer: network.base_rtt(attacker_id, peer))


def build_report(points: list[DoubleSpendPoint]) -> ExperimentReport:
    """Render the double-spend comparison."""
    report = ExperimentReport(
        experiment_id="Ext-4",
        description="Double-spend race outcomes (first-seen shares and detection)",
    )
    report.add_section(
        "Race outcomes",
        format_table(
            ["protocol", "races", "attacker share", "merchant detection rate", "mean detection s"],
            [
                [
                    p.protocol,
                    p.races,
                    p.mean_attacker_share,
                    p.detection_rate,
                    p.mean_detection_time_s,
                ]
                for p in points
            ],
        ),
    )
    report.add_data("points", points)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    ExperimentConfig.add_cli_arguments(parser)
    parser.add_argument("--races", type=int, default=5, help="races per seed")
    parser.add_argument("--horizon", type=float, default=2.0, help="race horizon (simulated s)")
    args = parser.parse_args(argv)
    config = ExperimentConfig.from_cli(args)
    points = run_doublespend(config, races_per_seed=args.races, race_horizon_s=args.horizon)
    print(build_report(points).render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
