"""Ext-6 — churn resilience: propagation delay and cluster quality under live join/leave.

The paper evaluates its proximity overlays on *static* memberships, yet its
central claim — clustering cuts propagation delay without hurting consistency
— only matters if the clusters survive the heavy churn real Bitcoin peers
exhibit (Section IV.B sketches maintenance but never measures it).  This
extension produces the figure the paper implies but does not have: for each
protocol (``bitcoin``, ``lbc``, ``bcbpt``) and each churn intensity it runs
the Fig. 2 measuring-node campaign while a
:class:`~repro.core.maintenance.ChurnMaintainer` drives sessions from the
scenario's :class:`~repro.workloads.scenarios.ChurnSchedule`, and reports

* the Δt distribution (mean/variance, as in Fig. 3) under churn,
* measurement coverage (connections that still received the transaction),
* cluster-quality drift (cluster count / size before vs after the run), and
* the repair work performed (orphans re-homed, representatives replaced,
  bridge links created).

(protocol, level, seed) campaigns are independent simulations; they fan out
over :class:`~repro.experiments.parallel.ParallelRunner` and merge in
submission order, so aggregates are identical for every worker count.

Run from the command line::

    PYTHONPATH=src python -m repro.experiments run churn_resilience \
        --nodes 120 --runs 4 --seeds 3 11 --levels static heavy --workers 0

(``python -m repro.experiments.churn_resilience`` remains as a deprecated
shim.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.analysis.samples import SampleLog
from repro.analysis.stats import mean
from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import (
    ChurnJobResult,
    ChurnResilienceJob,
    run_churn_resilience_job,
)
from repro.experiments.reporting import ExperimentReport, format_table
from repro.measurement.measuring_node import MeasuringNode
from repro.measurement.stats import DelayDistribution
from repro.workloads.scenarios import ChurnSchedule

#: Protocols compared by the churn-resilience experiment.
CHURN_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")

#: Named churn intensities swept by default.  ``static`` is the no-churn
#: control (the paper's original setting); the dynamic levels shorten the
#: median session until membership turns over several times per campaign.
CHURN_LEVELS: dict[str, Optional[ChurnSchedule]] = {
    "static": None,
    "mild": ChurnSchedule(
        median_session_s=240.0,
        sigma=1.0,
        stable_fraction=0.3,
        mean_downtime_s=30.0,
        discovery_interval_s=1.0,
        repair_interval_s=5.0,
    ),
    "heavy": ChurnSchedule(
        median_session_s=45.0,
        sigma=1.0,
        stable_fraction=0.1,
        mean_downtime_s=15.0,
        discovery_interval_s=1.0,
        repair_interval_s=5.0,
    ),
}


@dataclass
class ChurnResilienceResult:
    """Pooled measurements for one (protocol, churn level) pair.

    Attributes:
        protocol: policy label.
        level: churn-intensity label.
        delays: Δt samples pooled across seeds and measuring nodes.
        per_seed: Δt distribution per master seed.
        coverages: per-campaign fraction of connections reached.
        timed_out_receptions: connections that never received a measured
            transaction within the run horizon (churned away mid-run).
        failed_runs: repetitions abandoned because the measuring node had no
            connections at send time (heavy churn starved it momentarily).
        join_events / leave_events: churn volume over all seeds.
        repair_sweeps / orphans_reassigned / representatives_replaced /
            bridges_created: maintenance work over all seeds.
        cluster_before / cluster_after: per-seed cluster summaries at build
            time and after the campaign.
    """

    protocol: str
    level: str
    delays: DelayDistribution = field(default_factory=DelayDistribution)
    per_seed: dict[int, DelayDistribution] = field(default_factory=dict)
    coverages: list[float] = field(default_factory=list)
    timed_out_receptions: int = 0
    failed_runs: int = 0
    join_events: int = 0
    leave_events: int = 0
    repair_sweeps: int = 0
    orphans_reassigned: int = 0
    representatives_replaced: int = 0
    bridges_created: int = 0
    cluster_before: dict[int, dict[str, float]] = field(default_factory=dict)
    cluster_after: dict[int, dict[str, float]] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """The combined ``protocol/level`` result key."""
        return f"{self.protocol}/{self.level}"

    def summary(self) -> dict[str, float]:
        """Summary statistics of the pooled Δt distribution (``{"count": 0.0}``
        when heavy churn left no samples at all)."""
        if not self.delays:
            return {"count": 0.0}
        return self.delays.summary()

    def mean_coverage(self) -> float:
        """Mean fraction of measured connections that received the payment."""
        if not self.coverages:
            return 0.0
        return mean(self.coverages)

    def cluster_drift(self) -> dict[str, float]:
        """Mean absolute drift of cluster count / size across the run."""
        count_drift: list[float] = []
        size_drift: list[float] = []
        for seed, before in self.cluster_before.items():
            after = self.cluster_after.get(seed)
            if after is None:
                continue
            count_drift.append(abs(after["cluster_count"] - before["cluster_count"]))
            size_drift.append(abs(after["mean_size"] - before["mean_size"]))
        return {
            "cluster_count_drift": mean(count_drift) if count_drift else 0.0,
            "mean_size_drift": mean(size_drift) if size_drift else 0.0,
        }


def resolve_levels(
    names: Sequence[str],
    schedules: Optional[Mapping[str, Optional[ChurnSchedule]]] = None,
) -> dict[str, Optional[ChurnSchedule]]:
    """Map churn-level names to schedules, failing loudly on unknown names."""
    table = dict(CHURN_LEVELS)
    if schedules:
        table.update(schedules)
    resolved: dict[str, Optional[ChurnSchedule]] = {}
    for name in names:
        if name not in table:
            raise ValueError(
                f"unknown churn level {name!r}; expected one of {tuple(table)}"
            )
        resolved[name] = table[name]
    return resolved


# ----------------------------------------------------------------- job body
def run_churn_seed(job: ChurnResilienceJob) -> ChurnJobResult:
    """Execute one (protocol, level, seed) campaign — process-pool entry point."""
    # Imported lazily: parallel.py is config-level and imports us back.
    from repro.experiments.runner import select_measuring_nodes
    from repro.workloads.generators import fund_nodes
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    config = job.config
    schedule = job.schedule
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=config.node_count, seed=job.seed),
        latency_threshold_s=job.threshold_s,
        max_outbound=config.max_outbound,
        churn=schedule,
    )
    simulated = scenario.network
    cluster_before = dict(scenario.policy.clusters.summary())
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=config.funding_outputs)

    measuring_ids = select_measuring_nodes(simulated.node_ids(), config.measuring_nodes)
    if scenario.dynamic:
        # The measuring nodes are the experiment's observers; sparing them
        # from churn keeps every campaign comparable (the paper's measuring
        # node m never leaves either).
        scenario.start_churn(spare=measuring_ids)

    delays = DelayDistribution()
    coverages: list[float] = []
    timed_out = 0
    failed_runs = 0
    for measuring_id in measuring_ids:
        measuring = MeasuringNode(
            simulated.node(measuring_id),
            simulated.simulator.random.stream(f"measuring-{measuring_id}"),
            payment_satoshi=config.payment_satoshi,
            run_timeout_s=config.run_timeout_s,
            exclude_long_links=config.exclude_long_links,
        )
        simulator = simulated.simulator
        for index in range(config.runs):
            try:
                run = measuring.measure_once(run_index=index)
            except RuntimeError:
                # Churn momentarily starved the measuring node of
                # connections; the discovery sweep will top it up.
                failed_runs += 1
                simulator.run(until=simulator.now + 5.0)
                continue
            for record in run.receptions:
                delays.add(record.delta_t_s)
            coverages.append(run.coverage)
            timed_out += len(run.timed_out_nodes)
            # Idle gap between repetitions, letting relay traffic drain.
            simulator.run(until=simulator.now + 5.0)

    maintainer = scenario.maintainer
    return ChurnJobResult(
        protocol=job.protocol,
        level=job.level,
        seed=job.seed,
        delay_samples=tuple(delays.samples),
        coverages=tuple(coverages),
        timed_out_receptions=timed_out,
        failed_runs=failed_runs,
        join_events=maintainer.churn.join_events if maintainer else 0,
        leave_events=maintainer.churn.leave_events if maintainer else 0,
        repair_sweeps=maintainer.repair_sweeps if maintainer else 0,
        orphans_reassigned=maintainer.orphans_reassigned if maintainer else 0,
        representatives_replaced=maintainer.representatives_replaced if maintainer else 0,
        bridges_created=maintainer.bridges_created if maintainer else 0,
        cluster_before=cluster_before,
        cluster_after=dict(scenario.policy.clusters.summary()),
    )


def collect_samples(results: dict[str, ChurnResilienceResult]) -> SampleLog:
    """Raw Δt samples for the envelope's ``samples`` field.

    One ``delay_s`` series per (protocol/level, seed) — the merge's insertion
    order, so the pooled concatenation is worker-count invariant — plus the
    per-campaign ``coverage`` curve.
    """
    log = SampleLog()
    for key, result in results.items():
        log.add_per_seed(
            key,
            "delay_s",
            {seed: dist.samples for seed, dist in result.per_seed.items()},
            unit="s",
        )
        for index, coverage in enumerate(result.coverages):
            log.add_point(key, "coverage", float(index), coverage, unit="fraction")
    return log


# ------------------------------------------------------------------- driver
@experiment(
    "churn_resilience",
    experiment_id="Ext-6",
    title="Propagation delay and cluster quality under live join/leave churn",
    description=__doc__,
    protocols=CHURN_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="protocols to compare (default: bitcoin lbc bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
        ExperimentOption(
            flag="--levels",
            dest="levels",
            type=str,
            nargs="+",
            help="churn levels to sweep (default: static mild heavy)",
            convert=tuple,
        ),
    ),
    report=lambda results: build_report(results),
    summarize=lambda results: {
        key: {**result.summary(), "mean_coverage": result.mean_coverage(),
              "leave_events": float(result.leave_events),
              "join_events": float(result.join_events),
              **result.cluster_drift()}
        for key, result in results.items()
    },
    collect_samples=collect_samples,
    verdicts={"clustering_survives_churn": lambda results: clustering_survives_churn(results)},
)
def run_churn_resilience(
    config: Optional[ExperimentConfig] = None,
    *,
    protocols: Sequence[str] = CHURN_PROTOCOLS,
    levels: Sequence[str] = ("static", "mild", "heavy"),
    schedules: Optional[Mapping[str, Optional[ChurnSchedule]]] = None,
) -> dict[str, ChurnResilienceResult]:
    """Sweep churn intensity across protocols and pool results per pair.

    Args:
        config: shared experiment configuration.
        protocols: policy names to compare.
        levels: churn-level names, resolved against :data:`CHURN_LEVELS`
            (plus ``schedules`` overrides).
        schedules: extra/overriding ``name -> ChurnSchedule`` entries.

    Returns:
        ``"protocol/level"`` -> pooled :class:`ChurnResilienceResult`.
    """
    cfg = config if config is not None else ExperimentConfig()
    resolved = resolve_levels(levels, schedules)
    points = [
        (protocol, level, schedule)
        for protocol in protocols
        for level, schedule in resolved.items()
    ]

    def make_job(point: tuple[str, str, Optional[ChurnSchedule]], seed: int) -> ChurnResilienceJob:
        protocol, level, schedule = point
        return ChurnResilienceJob(
            protocol=protocol,
            level=level,
            schedule=schedule,
            threshold_s=cfg.latency_threshold_s,
            seed=seed,
            config=cfg,
        )

    grid = run_seed_grid(points, make_job, run_churn_resilience_job, cfg)

    # Merge in submission order — identical aggregates for every worker count.
    results: dict[str, ChurnResilienceResult] = {}
    for (protocol, level, _), seed_results in grid:
        key = f"{protocol}/{level}"
        pooled = results.get(key)
        if pooled is None:
            pooled = results[key] = ChurnResilienceResult(protocol=protocol, level=level)
        for seed, job_result in zip(cfg.seeds, seed_results):
            seed_delays = DelayDistribution(list(job_result.delay_samples))
            pooled.delays = pooled.delays.merge(seed_delays)
            pooled.per_seed[seed] = seed_delays
            pooled.coverages.extend(job_result.coverages)
            pooled.timed_out_receptions += job_result.timed_out_receptions
            pooled.failed_runs += job_result.failed_runs
            pooled.join_events += job_result.join_events
            pooled.leave_events += job_result.leave_events
            pooled.repair_sweeps += job_result.repair_sweeps
            pooled.orphans_reassigned += job_result.orphans_reassigned
            pooled.representatives_replaced += job_result.representatives_replaced
            pooled.bridges_created += job_result.bridges_created
            pooled.cluster_before[seed] = job_result.cluster_before
            pooled.cluster_after[seed] = job_result.cluster_after
    return results


def build_report(results: dict[str, ChurnResilienceResult]) -> ExperimentReport:
    """Turn churn-resilience results into a structured text report."""
    report = ExperimentReport(
        experiment_id="Ext-6",
        description="Propagation delay and cluster quality under live join/leave churn",
    )
    delay_rows = []
    for key, result in results.items():
        summary = result.summary()
        delay_rows.append(
            [
                key,
                len(result.delays),
                summary.get("mean_s", float("nan")) * 1e3,
                summary.get("variance_s2", float("nan")) * 1e6,
                result.mean_coverage(),
                result.timed_out_receptions,
            ]
        )
    report.add_section(
        "Δt under churn (ms / ms²)",
        format_table(
            ["protocol/level", "samples", "mean", "variance", "coverage", "timeouts"],
            delay_rows,
        ),
    )
    churn_rows = []
    for key, result in results.items():
        drift = result.cluster_drift()
        churn_rows.append(
            [
                key,
                result.leave_events,
                result.join_events,
                result.orphans_reassigned,
                result.representatives_replaced,
                result.bridges_created,
                drift["cluster_count_drift"],
                drift["mean_size_drift"],
            ]
        )
    report.add_section(
        "Churn volume and cluster maintenance",
        format_table(
            [
                "protocol/level",
                "leaves",
                "joins",
                "orphans rehomed",
                "reps replaced",
                "bridges",
                "cluster# drift",
                "size drift",
            ],
            churn_rows,
        ),
    )
    report.add_data("summaries", {key: r.summary() for key, r in results.items()})
    report.add_data("results", results)
    return report


def clustering_survives_churn(results: dict[str, ChurnResilienceResult]) -> bool:
    """The headline check: BCBPT still beats vanilla Bitcoin under churn.

    Compares pooled mean Δt at the heaviest dynamic level present for both
    protocols — "heaviest" judged by the churn volume actually observed
    (leave events), not by the order the levels were listed in.
    """
    levels = [key.split("/", 1)[1] for key in results if key.startswith("bcbpt/")]
    dynamic = [
        lvl
        for lvl in levels
        if f"bitcoin/{lvl}" in results
        and results[f"bcbpt/{lvl}"].leave_events + results[f"bitcoin/{lvl}"].leave_events > 0
    ]
    if not dynamic:
        return False
    level = max(
        dynamic,
        key=lambda lvl: results[f"bcbpt/{lvl}"].leave_events
        + results[f"bitcoin/{lvl}"].leave_events,
    )
    bcbpt = results[f"bcbpt/{level}"].summary()
    bitcoin = results[f"bitcoin/{level}"].summary()
    if "mean_s" not in bcbpt or "mean_s" not in bitcoin:
        return False
    return bcbpt["mean_s"] < bitcoin["mean_s"]


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run churn_resilience``."""
    return deprecated_main("churn_resilience", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
