"""The unified experiment result envelope and its persistent store.

Every experiment executed through :func:`repro.experiments.api.run_experiment`
produces one :class:`ExperimentResult`: a JSON-serialisable envelope carrying
the full configuration provenance (config, options, seeds), the per-label
summary statistics, the rendered report sections, and the verdict booleans the
old drivers printed as prose.  The envelope round-trips through JSON, so a run
written today can be reloaded and compared against a run written next month.

Since schema v2 the envelope also carries ``samples``: the raw per-seed
measurement series and time-series counters an experiment opted to persist
(the :meth:`repro.analysis.samples.SampleLog.to_dict` form).  Raw samples are
what make a stored run *re-analysable* — ``repro report`` regenerates the
paper's figures and percentile tables from them with no re-simulation.
Legacy v1 envelopes (no ``samples`` key) still load; they simply report with
summary tables only.

:class:`ResultStore` persists envelopes under timestamped run directories::

    results/
      fig3/
        20260729T144501-001/
          result.json     # the ExperimentResult envelope
          report.txt      # the rendered plain-text report
          report.md       # written by `repro report` (on demand)
          figures/        # written by `repro report` when matplotlib exists
        20260729T151210-002/
          ...

Run ids are ``"<experiment>/<directory>"`` (e.g. ``"fig3/20260729T144501-001"``)
and sort chronologically.  :meth:`ResultStore.diff` compares two stored runs:
config drift, per-label metric deltas, and verdict flips (raw samples are
deliberately *not* diffed — the scalar summaries derived from them are).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

#: Envelope schema version, bumped on breaking layout changes.
#: v2 added the optional ``samples`` field (raw measurement series); v1
#: envelopes load unchanged with an empty ``samples``.
RESULT_SCHEMA_VERSION = 2

_RUN_DIR_RE = re.compile(r"^\d{8}T\d{6}-\d{3}$")


def json_safe(value: Any) -> Any:
    """Recursively convert a value into JSON-serialisable plain data.

    Dataclasses become dicts, tuples/sets become lists, non-string mapping
    keys are stringified, and NaN/inf floats are preserved (Python's ``json``
    round-trips them).  Objects with no obvious plain form are rendered via
    ``repr`` — provenance beats a serialisation error.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: json_safe(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [json_safe(item) for item in items]
    return repr(value)


@dataclass
class ExperimentResult:
    """The JSON-serialisable outcome of one experiment run.

    Attributes:
        experiment: registry name (``"fig3"``, ``"churn_resilience"``, ...).
        experiment_id: the DESIGN.md index id (``"Fig. 3"``, ``"Ext-6"``).
        title: one-line human description of the experiment.
        created_at: POSIX timestamp of the run.
        config: :class:`~repro.experiments.config.ExperimentConfig` provenance
            as a plain dict (includes the seeds).
        options: experiment-specific options the run was invoked with.
        seeds: the master seeds the aggregates pooled over.
        summaries: per-label scalar summaries (label -> metric -> value); the
            machine-readable core used by :meth:`diff`.
        verdicts: named boolean reproduction criteria (e.g. the Fig. 3
            ordering check).
        sections: the rendered report as (heading, body) pairs.
        extras: any additional JSON-safe data an experiment wants persisted.
        samples: raw measurement series and time-series counters, in the
            plain :meth:`repro.analysis.samples.SampleLog.to_dict` form
            (empty for experiments that opted out, and for legacy v1
            envelopes).  This is what ``repro report`` regenerates figures
            and percentile tables from.
    """

    experiment: str
    experiment_id: str
    title: str
    created_at: float
    config: dict[str, Any]
    options: dict[str, Any] = field(default_factory=dict)
    seeds: list[int] = field(default_factory=list)
    summaries: dict[str, dict[str, Any]] = field(default_factory=dict)
    verdicts: dict[str, bool] = field(default_factory=dict)
    sections: list[tuple[str, str]] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)
    samples: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering (mirrors ``ExperimentReport.render``)."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for heading, body in self.sections:
            lines.append("")
            lines.append(f"--- {heading} ---")
            lines.append(body)
        if self.verdicts:
            lines.append("")
            lines.append("--- Verdicts ---")
            for name, value in self.verdicts.items():
                lines.append(f"{name}: {'PASS' if value else 'FAIL'}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """The envelope as plain JSON-safe data."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "experiment": self.experiment,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "created_at": self.created_at,
            "config": json_safe(self.config),
            "options": json_safe(self.options),
            "seeds": list(self.seeds),
            "summaries": json_safe(self.summaries),
            "verdicts": dict(self.verdicts),
            "sections": [[heading, body] for heading, body in self.sections],
            "extras": json_safe(self.extras),
            "samples": json_safe(self.samples),
        }

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise the envelope to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild an envelope from :meth:`to_dict` output."""
        version = data.get("schema_version", RESULT_SCHEMA_VERSION)
        if version > RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"result schema v{version} is newer than supported v{RESULT_SCHEMA_VERSION}"
            )
        return cls(
            experiment=data["experiment"],
            experiment_id=data["experiment_id"],
            title=data["title"],
            created_at=data["created_at"],
            config=dict(data.get("config", {})),
            options=dict(data.get("options", {})),
            seeds=[int(seed) for seed in data.get("seeds", [])],
            summaries={k: dict(v) for k, v in data.get("summaries", {}).items()},
            verdicts={k: bool(v) for k, v in data.get("verdicts", {}).items()},
            sections=[(heading, body) for heading, body in data.get("sections", [])],
            extras=dict(data.get("extras", {})),
            # Legacy (v1) envelopes predate raw-sample capture; they load
            # with an empty samples field and report with tables only.
            samples=dict(data.get("samples", {}) or {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Deserialise an envelope from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def diff(self, other: "ExperimentResult") -> "ResultDiff":
        """Compare this run (baseline) against ``other`` (candidate)."""
        return diff_results(self, other)


@dataclass
class ResultDiff:
    """A structured comparison of two experiment runs."""

    baseline: str
    candidate: str
    config_changes: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    metric_deltas: dict[str, dict[str, tuple[Any, Any]]] = field(default_factory=dict)
    labels_only_in_baseline: list[str] = field(default_factory=list)
    labels_only_in_candidate: list[str] = field(default_factory=list)
    verdict_changes: dict[str, tuple[Optional[bool], Optional[bool]]] = field(
        default_factory=dict
    )

    @property
    def identical(self) -> bool:
        """Whether the two runs agree on config, metrics and verdicts."""
        return not (
            self.config_changes
            or self.metric_deltas
            or self.labels_only_in_baseline
            or self.labels_only_in_candidate
            or self.verdict_changes
        )

    def render(self) -> str:
        """Human-readable diff report."""
        lines = [f"diff: {self.baseline} -> {self.candidate}"]
        if self.identical:
            lines.append("  (identical: config, summaries and verdicts all match)")
            return "\n".join(lines)
        for key, (old, new) in sorted(self.config_changes.items()):
            lines.append(f"  config {key}: {old!r} -> {new!r}")
        for label in self.labels_only_in_baseline:
            lines.append(f"  label only in baseline: {label}")
        for label in self.labels_only_in_candidate:
            lines.append(f"  label only in candidate: {label}")
        for label, metrics in sorted(self.metric_deltas.items()):
            for metric, (old, new) in sorted(metrics.items()):
                delta = ""
                if isinstance(old, (int, float)) and isinstance(new, (int, float)):
                    if old and not (math.isnan(old) or math.isnan(new)):
                        delta = f" ({(new - old) / abs(old):+.1%})"
                lines.append(f"  {label}.{metric}: {_fmt(old)} -> {_fmt(new)}{delta}")
        for name, (old, new) in sorted(self.verdict_changes.items()):
            lines.append(f"  verdict {name}: {old} -> {new}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def _values_differ(old: Any, new: Any) -> bool:
    if isinstance(old, float) and isinstance(new, float):
        if math.isnan(old) and math.isnan(new):
            return False
    return old != new


def diff_results(baseline: ExperimentResult, candidate: ExperimentResult) -> ResultDiff:
    """Field-by-field comparison of two runs of the same experiment."""
    if baseline.experiment != candidate.experiment:
        raise ValueError(
            f"cannot diff runs of different experiments: "
            f"{baseline.experiment!r} vs {candidate.experiment!r}"
        )
    diff = ResultDiff(
        baseline=f"{baseline.experiment}@{baseline.created_at:.0f}",
        candidate=f"{candidate.experiment}@{candidate.created_at:.0f}",
    )
    base_config = json_safe(baseline.config)
    cand_config = json_safe(candidate.config)
    for key in sorted(set(base_config) | set(cand_config)):
        old, new = base_config.get(key), cand_config.get(key)
        if _values_differ(old, new):
            diff.config_changes[key] = (old, new)
    base_sum = json_safe(baseline.summaries)
    cand_sum = json_safe(candidate.summaries)
    diff.labels_only_in_baseline = sorted(set(base_sum) - set(cand_sum))
    diff.labels_only_in_candidate = sorted(set(cand_sum) - set(base_sum))
    for label in sorted(set(base_sum) & set(cand_sum)):
        deltas: dict[str, tuple[Any, Any]] = {}
        old_metrics, new_metrics = base_sum[label], cand_sum[label]
        for metric in sorted(set(old_metrics) | set(new_metrics)):
            old, new = old_metrics.get(metric), new_metrics.get(metric)
            if _values_differ(old, new):
                deltas[metric] = (old, new)
        if deltas:
            diff.metric_deltas[label] = deltas
    for name in sorted(set(baseline.verdicts) | set(candidate.verdicts)):
        old = baseline.verdicts.get(name)
        new = candidate.verdicts.get(name)
        if old != new:
            diff.verdict_changes[name] = (old, new)
    return diff


class ResultStore:
    """Writes and reads :class:`ExperimentResult` envelopes on disk.

    Args:
        root: directory holding one subdirectory per experiment name
            (defaults to ``results/`` under the current working directory, or
            ``$REPRO_RESULTS_DIR`` when set).
    """

    RESULT_FILE = "result.json"
    REPORT_FILE = "report.txt"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_RESULTS_DIR", "results")
        self.root = Path(root)

    # ----------------------------------------------------------------- write
    def save(self, result: ExperimentResult) -> Path:
        """Persist one run; returns the created run directory."""
        stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(result.created_at))
        experiment_dir = self.root / result.experiment
        experiment_dir.mkdir(parents=True, exist_ok=True)
        for sequence in range(1, 1000):
            run_dir = experiment_dir / f"{stamp}-{sequence:03d}"
            if not run_dir.exists():
                break
        else:  # pragma: no cover - 999 runs in one second
            raise RuntimeError(f"no free run directory under {experiment_dir}")
        run_dir.mkdir()
        (run_dir / self.RESULT_FILE).write_text(result.to_json() + "\n")
        (run_dir / self.REPORT_FILE).write_text(result.render() + "\n")
        return run_dir

    # ------------------------------------------------------------------ read
    def run_ids(self, experiment: Optional[str] = None) -> list[str]:
        """All stored run ids (``"<experiment>/<dir>"``), oldest first."""
        if not self.root.is_dir():
            return []
        names = [experiment] if experiment else sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        )
        ids: list[str] = []
        for name in names:
            experiment_dir = self.root / name
            if not experiment_dir.is_dir():
                continue
            ids.extend(
                f"{name}/{p.name}"
                for p in sorted(experiment_dir.iterdir())
                if p.is_dir() and _RUN_DIR_RE.match(p.name)
            )
        return ids

    def _resolve(self, run_id: Union[str, Path]) -> Path:
        raw = Path(run_id)
        # A relative value may be a run id ("fig3/<stamp>-001", resolved
        # under the store root) or an actual directory path as returned by
        # :meth:`save` (e.g. "results/fig3/<stamp>-001"); try it as given
        # before prefixing the root so the latter is not double-prefixed.
        candidates = [raw] if raw.is_absolute() else [raw, self.root / raw]
        tried = []
        for path in candidates:
            if path.is_file():
                path = path.parent
            result_file = path / self.RESULT_FILE
            if result_file.is_file():
                return result_file
            tried.append(path)
        raise FileNotFoundError(f"no stored result at {run_id!r} (looked in {tried})")

    def load(self, run_id: Union[str, Path]) -> ExperimentResult:
        """Load one stored run by id or path."""
        return ExperimentResult.from_json(self._resolve(run_id).read_text())

    def run_dir(self, run_id: Union[str, Path]) -> Path:
        """The on-disk directory of one stored run (id or path accepted).

        ``repro report`` writes its rendered markdown and figures here by
        default, so a run directory stays a self-contained artifact.
        """
        return self._resolve(run_id).parent

    def latest(self, experiment: str, *, before: Optional[str] = None) -> Optional[str]:
        """The newest stored run id for an experiment (optionally before
        another run id), or None when nothing is stored."""
        ids = self.run_ids(experiment)
        if before is not None:
            ids = [run_id for run_id in ids if run_id < before]
        return ids[-1] if ids else None

    def diff(
        self, baseline_id: Union[str, Path], candidate_id: Union[str, Path]
    ) -> ResultDiff:
        """Diff two stored runs."""
        baseline = self.load(baseline_id)
        candidate = self.load(candidate_id)
        diff = diff_results(baseline, candidate)
        diff.baseline = str(baseline_id)
        diff.candidate = str(candidate_id)
        return diff
