"""The unified experiment result envelope and its persistent store.

Every experiment executed through :func:`repro.experiments.api.run_experiment`
produces one :class:`ExperimentResult`: a JSON-serialisable envelope carrying
the full configuration provenance (config, options, seeds), the per-label
summary statistics, the rendered report sections, and the verdict booleans the
old drivers printed as prose.  The envelope round-trips through JSON, so a run
written today can be reloaded and compared against a run written next month.

Since schema v2 the envelope also carries ``samples``: the raw per-seed
measurement series and time-series counters an experiment opted to persist
(the :meth:`repro.analysis.samples.SampleLog.to_dict` form).  Raw samples are
what make a stored run *re-analysable* — ``repro report`` regenerates the
paper's figures and percentile tables from them with no re-simulation.
Legacy v1 envelopes (no ``samples`` key) still load; they simply report with
summary tables only.

:class:`ResultStore` persists envelopes under timestamped run directories::

    results/
      fig3/
        20260729T144501-001/
          result.json     # the ExperimentResult envelope
          report.txt      # the rendered plain-text report
          report.md       # written by `repro report` (on demand)
          figures/        # written by `repro report` when matplotlib exists
        20260729T151210-002/
          ...

Run ids are ``"<experiment>/<directory>"`` (e.g. ``"fig3/20260729T144501-001"``)
and sort chronologically.  :meth:`ResultStore.diff` compares two stored runs:
config drift, per-label metric deltas, and verdict flips (raw samples are
deliberately *not* diffed — the scalar summaries derived from them are).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import re
import sqlite3
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence, Union

#: Envelope schema version, bumped on breaking layout changes.
#: v2 added the optional ``samples`` field (raw measurement series); v1
#: envelopes load unchanged with an empty ``samples``.
RESULT_SCHEMA_VERSION = 2

_RUN_DIR_RE = re.compile(r"^\d{8}T\d{6}-\d{3}$")


def json_safe(value: Any) -> Any:
    """Recursively convert a value into JSON-serialisable plain data.

    Dataclasses become dicts, tuples/sets become lists, non-string mapping
    keys are stringified, and NaN/inf floats are preserved (Python's ``json``
    round-trips them).  Objects with no obvious plain form are rendered via
    ``repr`` — provenance beats a serialisation error.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: json_safe(getattr(value, f.name)) for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(key): json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value, key=repr) if isinstance(value, (set, frozenset)) else value
        return [json_safe(item) for item in items]
    return repr(value)


@dataclass
class ExperimentResult:
    """The JSON-serialisable outcome of one experiment run.

    Attributes:
        experiment: registry name (``"fig3"``, ``"churn_resilience"``, ...).
        experiment_id: the DESIGN.md index id (``"Fig. 3"``, ``"Ext-6"``).
        title: one-line human description of the experiment.
        created_at: POSIX timestamp of the run.
        config: :class:`~repro.experiments.config.ExperimentConfig` provenance
            as a plain dict (includes the seeds).
        options: experiment-specific options the run was invoked with.
        seeds: the master seeds the aggregates pooled over.
        summaries: per-label scalar summaries (label -> metric -> value); the
            machine-readable core used by :meth:`diff`.
        verdicts: named boolean reproduction criteria (e.g. the Fig. 3
            ordering check).
        sections: the rendered report as (heading, body) pairs.
        extras: any additional JSON-safe data an experiment wants persisted.
        samples: raw measurement series and time-series counters, in the
            plain :meth:`repro.analysis.samples.SampleLog.to_dict` form
            (empty for experiments that opted out, and for legacy v1
            envelopes).  This is what ``repro report`` regenerates figures
            and percentile tables from.
    """

    experiment: str
    experiment_id: str
    title: str
    created_at: float
    config: dict[str, Any]
    options: dict[str, Any] = field(default_factory=dict)
    seeds: list[int] = field(default_factory=list)
    summaries: dict[str, dict[str, Any]] = field(default_factory=dict)
    verdicts: dict[str, bool] = field(default_factory=dict)
    sections: list[tuple[str, str]] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)
    samples: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text rendering (mirrors ``ExperimentReport.render``)."""
        lines = [f"=== {self.experiment_id}: {self.title} ==="]
        for heading, body in self.sections:
            lines.append("")
            lines.append(f"--- {heading} ---")
            lines.append(body)
        if self.verdicts:
            lines.append("")
            lines.append("--- Verdicts ---")
            for name, value in self.verdicts.items():
                lines.append(f"{name}: {'PASS' if value else 'FAIL'}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """The envelope as plain JSON-safe data."""
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "experiment": self.experiment,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "created_at": self.created_at,
            "config": json_safe(self.config),
            "options": json_safe(self.options),
            "seeds": list(self.seeds),
            "summaries": json_safe(self.summaries),
            "verdicts": dict(self.verdicts),
            "sections": [[heading, body] for heading, body in self.sections],
            "extras": json_safe(self.extras),
            "samples": json_safe(self.samples),
        }

    def to_json(self, *, indent: int = 2) -> str:
        """Serialise the envelope to a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild an envelope from :meth:`to_dict` output."""
        version = data.get("schema_version", RESULT_SCHEMA_VERSION)
        if version > RESULT_SCHEMA_VERSION:
            raise ValueError(
                f"result schema v{version} is newer than supported v{RESULT_SCHEMA_VERSION}"
            )
        return cls(
            experiment=data["experiment"],
            experiment_id=data["experiment_id"],
            title=data["title"],
            created_at=data["created_at"],
            config=dict(data.get("config", {})),
            options=dict(data.get("options", {})),
            seeds=[int(seed) for seed in data.get("seeds", [])],
            summaries={k: dict(v) for k, v in data.get("summaries", {}).items()},
            verdicts={k: bool(v) for k, v in data.get("verdicts", {}).items()},
            sections=[(heading, body) for heading, body in data.get("sections", [])],
            extras=dict(data.get("extras", {})),
            # Legacy (v1) envelopes predate raw-sample capture; they load
            # with an empty samples field and report with tables only.
            samples=dict(data.get("samples", {}) or {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Deserialise an envelope from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------ canonical form
    def canonical_dict(self) -> dict[str, Any]:
        """The envelope with every execution-plane/wall-clock field masked.

        Two runs of the same experiment with the same configuration produce
        *identical* canonical dicts regardless of when they ran, how many
        workers they used, whether they were interrupted and resumed, or how
        many shards they were split across — the determinism contract, made
        assertable.  Masked fields: ``created_at``, ``extras.duration_s``
        and ``config.workers``.
        """
        data = self.to_dict()
        data["created_at"] = 0.0
        extras = data.get("extras")
        if isinstance(extras, dict):
            extras.pop("duration_s", None)
        config = data.get("config")
        if isinstance(config, dict):
            config.pop("workers", None)
        return data

    def canonical_json(self) -> str:
        """Byte-stable JSON of :meth:`canonical_dict`."""
        return json.dumps(self.canonical_dict(), indent=2, sort_keys=True)

    def fingerprint(self) -> str:
        """SHA-256 over :meth:`canonical_json` — the run-equivalence digest."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def diff(self, other: "ExperimentResult") -> "ResultDiff":
        """Compare this run (baseline) against ``other`` (candidate)."""
        return diff_results(self, other)


@dataclass
class ResultDiff:
    """A structured comparison of two experiment runs."""

    baseline: str
    candidate: str
    config_changes: dict[str, tuple[Any, Any]] = field(default_factory=dict)
    metric_deltas: dict[str, dict[str, tuple[Any, Any]]] = field(default_factory=dict)
    labels_only_in_baseline: list[str] = field(default_factory=list)
    labels_only_in_candidate: list[str] = field(default_factory=list)
    verdict_changes: dict[str, tuple[Optional[bool], Optional[bool]]] = field(
        default_factory=dict
    )

    @property
    def identical(self) -> bool:
        """Whether the two runs agree on config, metrics and verdicts."""
        return not (
            self.config_changes
            or self.metric_deltas
            or self.labels_only_in_baseline
            or self.labels_only_in_candidate
            or self.verdict_changes
        )

    def render(self) -> str:
        """Human-readable diff report."""
        lines = [f"diff: {self.baseline} -> {self.candidate}"]
        if self.identical:
            lines.append("  (identical: config, summaries and verdicts all match)")
            return "\n".join(lines)
        for key, (old, new) in sorted(self.config_changes.items()):
            lines.append(f"  config {key}: {old!r} -> {new!r}")
        for label in self.labels_only_in_baseline:
            lines.append(f"  label only in baseline: {label}")
        for label in self.labels_only_in_candidate:
            lines.append(f"  label only in candidate: {label}")
        for label, metrics in sorted(self.metric_deltas.items()):
            for metric, (old, new) in sorted(metrics.items()):
                delta = ""
                if isinstance(old, (int, float)) and isinstance(new, (int, float)):
                    if old and not (math.isnan(old) or math.isnan(new)):
                        delta = f" ({(new - old) / abs(old):+.1%})"
                lines.append(f"  {label}.{metric}: {_fmt(old)} -> {_fmt(new)}{delta}")
        for name, (old, new) in sorted(self.verdict_changes.items()):
            lines.append(f"  verdict {name}: {old} -> {new}")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return repr(value)


def _values_differ(old: Any, new: Any) -> bool:
    if isinstance(old, float) and isinstance(new, float):
        if math.isnan(old) and math.isnan(new):
            return False
    return old != new


def diff_results(baseline: ExperimentResult, candidate: ExperimentResult) -> ResultDiff:
    """Field-by-field comparison of two runs of the same experiment."""
    if baseline.experiment != candidate.experiment:
        raise ValueError(
            f"cannot diff runs of different experiments: "
            f"{baseline.experiment!r} vs {candidate.experiment!r}"
        )
    diff = ResultDiff(
        baseline=f"{baseline.experiment}@{baseline.created_at:.0f}",
        candidate=f"{candidate.experiment}@{candidate.created_at:.0f}",
    )
    base_config = json_safe(baseline.config)
    cand_config = json_safe(candidate.config)
    for key in sorted(set(base_config) | set(cand_config)):
        old, new = base_config.get(key), cand_config.get(key)
        if _values_differ(old, new):
            diff.config_changes[key] = (old, new)
    base_sum = json_safe(baseline.summaries)
    cand_sum = json_safe(candidate.summaries)
    diff.labels_only_in_baseline = sorted(set(base_sum) - set(cand_sum))
    diff.labels_only_in_candidate = sorted(set(cand_sum) - set(base_sum))
    for label in sorted(set(base_sum) & set(cand_sum)):
        deltas: dict[str, tuple[Any, Any]] = {}
        old_metrics, new_metrics = base_sum[label], cand_sum[label]
        for metric in sorted(set(old_metrics) | set(new_metrics)):
            old, new = old_metrics.get(metric), new_metrics.get(metric)
            if _values_differ(old, new):
                deltas[metric] = (old, new)
        if deltas:
            diff.metric_deltas[label] = deltas
    for name in sorted(set(baseline.verdicts) | set(candidate.verdicts)):
        old = baseline.verdicts.get(name)
        new = candidate.verdicts.get(name)
        if old != new:
            diff.verdict_changes[name] = (old, new)
    return diff


class ResultStore:
    """Writes and reads :class:`ExperimentResult` envelopes on disk.

    Args:
        root: directory holding one subdirectory per experiment name
            (defaults to ``results/`` under the current working directory, or
            ``$REPRO_RESULTS_DIR`` when set).
    """

    RESULT_FILE = "result.json"
    REPORT_FILE = "report.txt"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_RESULTS_DIR", "results")
        self.root = Path(root)

    # ----------------------------------------------------------------- write
    def save(self, result: ExperimentResult) -> Path:
        """Persist one run; returns the created run directory.

        The run directory is claimed with an atomic ``mkdir``: two writers
        that compute the same ``<timestamp>-<seq>`` id (concurrent shard
        runners, parallel CI jobs) cannot both succeed on the same path —
        the loser's ``FileExistsError`` simply advances it to the next
        sequence number.  An exists-then-mkdir check would race between the
        check and the create.
        """
        stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(result.created_at))
        experiment_dir = self.root / result.experiment
        experiment_dir.mkdir(parents=True, exist_ok=True)
        for sequence in range(1, 1000):
            run_dir = experiment_dir / f"{stamp}-{sequence:03d}"
            try:
                run_dir.mkdir()
            except FileExistsError:
                continue
            break
        else:  # pragma: no cover - 999 runs in one second
            raise RuntimeError(f"no free run directory under {experiment_dir}")
        (run_dir / self.RESULT_FILE).write_text(result.to_json() + "\n")
        (run_dir / self.REPORT_FILE).write_text(result.render() + "\n")
        # Best-effort provenance indexing: a locked or unwritable index never
        # fails the save — `query` lazily re-syncs from the run directories.
        try:
            self.index().add(f"{result.experiment}/{run_dir.name}", result)
        except (sqlite3.Error, OSError):  # pragma: no cover - degraded disk
            pass
        return run_dir

    # ------------------------------------------------------------------ read
    def run_ids(self, experiment: Optional[str] = None) -> list[str]:
        """All stored run ids (``"<experiment>/<dir>"``), oldest first."""
        if not self.root.is_dir():
            return []
        names = [experiment] if experiment else sorted(
            p.name for p in self.root.iterdir() if p.is_dir()
        )
        ids: list[str] = []
        for name in names:
            experiment_dir = self.root / name
            if not experiment_dir.is_dir():
                continue
            ids.extend(
                f"{name}/{p.name}"
                for p in sorted(experiment_dir.iterdir())
                if p.is_dir() and _RUN_DIR_RE.match(p.name)
            )
        return ids

    def _resolve(self, run_id: Union[str, Path]) -> Path:
        raw = Path(run_id)
        # A relative value may be a run id ("fig3/<stamp>-001", resolved
        # under the store root) or an actual directory path as returned by
        # :meth:`save` (e.g. "results/fig3/<stamp>-001"); try it as given
        # before prefixing the root so the latter is not double-prefixed.
        candidates = [raw] if raw.is_absolute() else [raw, self.root / raw]
        tried = []
        for path in candidates:
            if path.is_file():
                path = path.parent
            result_file = path / self.RESULT_FILE
            if result_file.is_file():
                return result_file
            tried.append(path)
        raise FileNotFoundError(f"no stored result at {run_id!r} (looked in {tried})")

    def load(self, run_id: Union[str, Path]) -> ExperimentResult:
        """Load one stored run by id or path."""
        return ExperimentResult.from_json(self._resolve(run_id).read_text())

    def run_dir(self, run_id: Union[str, Path]) -> Path:
        """The on-disk directory of one stored run (id or path accepted).

        ``repro report`` writes its rendered markdown and figures here by
        default, so a run directory stays a self-contained artifact.
        """
        return self._resolve(run_id).parent

    def latest(self, experiment: str, *, before: Optional[str] = None) -> Optional[str]:
        """The newest stored run id for an experiment (optionally before
        another run id), or None when nothing is stored."""
        ids = self.run_ids(experiment)
        if before is not None:
            ids = [run_id for run_id in ids if run_id < before]
        return ids[-1] if ids else None

    def diff(
        self, baseline_id: Union[str, Path], candidate_id: Union[str, Path]
    ) -> ResultDiff:
        """Diff two stored runs."""
        baseline = self.load(baseline_id)
        candidate = self.load(candidate_id)
        diff = diff_results(baseline, candidate)
        diff.baseline = str(baseline_id)
        diff.candidate = str(candidate_id)
        return diff

    # ----------------------------------------------------------------- query
    def index(self) -> "ResultIndex":
        """The sqlite provenance index at the store root."""
        return ResultIndex(self.root)

    def query(
        self,
        where: Mapping[str, str],
        experiment: Optional[str] = None,
    ) -> list[str]:
        """Run ids matching every ``key=value`` condition, oldest first.

        Conditions select on config fields, experiment options, summary
        labels and seeds as indexed by :class:`ResultIndex` — e.g.
        ``{"nodes": "10000", "policy": "bcbpt"}``.  The index is re-synced
        against the run directories first, so runs written by other
        processes (shard runners, older checkouts without the index) are
        always visible.
        """
        index = self.index()
        index.refresh(self)
        return index.query(where, experiment=experiment)


# ------------------------------------------------------------------ queries
#: Friendly aliases accepted in `--where` conditions alongside the exact
#: config-field / option / index keys.
WHERE_ALIASES = {
    "nodes": "node_count",
    "policy": "label",
    "protocol": "label",
    "threshold_s": "latency_threshold_s",
}


def parse_where(text: str) -> dict[str, str]:
    """Parse ``"nodes=10000,policy=bcbpt"`` into a condition mapping."""
    conditions: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"--where expects KEY=VALUE[,KEY=VALUE...] — got {part!r}")
        key, _, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not key or not value:
            raise ValueError(f"--where condition {part!r} is missing a key or value")
        conditions[key] = value
    if not conditions:
        raise ValueError("--where supplies no conditions")
    return conditions


def resolve_run_selector(store: ResultStore, ref: str) -> str:
    """Resolve a run reference that may select by parameters.

    ``"fig3?nodes=200,policy=bcbpt"`` (or bare ``"?nodes=200"`` across all
    experiments) resolves — via the sqlite index — to the **newest** stored
    run matching every condition.  Anything without a ``?`` passes through
    unchanged (plain run ids, paths and experiment names keep working).
    """
    if "?" not in ref:
        return ref
    experiment, _, expr = ref.partition("?")
    matches = store.query(parse_where(expr), experiment=experiment or None)
    if not matches:
        raise FileNotFoundError(f"no stored run matches {ref!r}")
    return matches[-1]


class ResultIndex:
    """A sqlite index over stored runs' configuration provenance.

    One database per store root (``results/index.sqlite``) with two tables:
    ``runs`` (one row per stored run) and ``params`` (one row per indexed
    key/value, several rows per multi-valued key).  Indexed per run:

    * every scalar ``config`` field (``node_count``, ``latency_threshold_s``,
      ...) — sequence fields additionally index each element;
    * every resolved experiment option (``relays``, ``rates``, ...);
    * each summary label under ``label`` (so ``policy=bcbpt`` finds every
      run that compared BCBPT, whatever the experiment);
    * each master seed under ``seed``;
    * the experiment name under ``experiment``.

    Numeric values also carry a REAL column so ``nodes=10000`` matches
    however the number was spelled.  All writes are short transactions with
    a generous busy timeout, so concurrent shard runners indexing into the
    same store serialise instead of corrupting.
    """

    DB_FILE = "index.sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS runs (
            run_id TEXT PRIMARY KEY,
            experiment TEXT NOT NULL,
            created_at REAL
        );
        CREATE TABLE IF NOT EXISTS params (
            run_id TEXT NOT NULL,
            key TEXT NOT NULL,
            value TEXT NOT NULL,
            number REAL
        );
        CREATE INDEX IF NOT EXISTS params_by_key_value ON params (key, value);
        CREATE INDEX IF NOT EXISTS params_by_run ON params (run_id);
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / self.DB_FILE

    def _connect(self) -> sqlite3.Connection:
        self.root.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(self.path, timeout=10.0)
        connection.executescript(self._SCHEMA)
        return connection

    # ----------------------------------------------------------------- write
    def add(self, run_id: str, result: ExperimentResult) -> None:
        """(Re-)index one stored run."""
        rows = [
            (run_id, key, value, number)
            for key, value, number in _provenance_rows(result)
        ]
        with self._connect() as connection:
            connection.execute("DELETE FROM params WHERE run_id = ?", (run_id,))
            connection.execute(
                "INSERT OR REPLACE INTO runs (run_id, experiment, created_at) "
                "VALUES (?, ?, ?)",
                (run_id, result.experiment, result.created_at),
            )
            connection.executemany(
                "INSERT INTO params (run_id, key, value, number) VALUES (?, ?, ?, ?)",
                rows,
            )

    def remove(self, run_id: str) -> None:
        """Drop one run from the index."""
        with self._connect() as connection:
            connection.execute("DELETE FROM params WHERE run_id = ?", (run_id,))
            connection.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))

    def refresh(self, store: ResultStore) -> None:
        """Sync the index with the run directories on disk.

        Runs saved by other processes (or before the index existed) are
        indexed from their envelopes; rows for deleted run directories are
        dropped.  Append-mostly stores make this a cheap set difference.
        """
        on_disk = set(store.run_ids())
        with self._connect() as connection:
            indexed = {row[0] for row in connection.execute("SELECT run_id FROM runs")}
        for run_id in sorted(on_disk - indexed):
            try:
                self.add(run_id, store.load(run_id))
            except (OSError, ValueError, KeyError):  # pragma: no cover - torn run dir
                continue
        for run_id in sorted(indexed - on_disk):
            self.remove(run_id)

    # ------------------------------------------------------------------ read
    def query(
        self,
        where: Mapping[str, str],
        experiment: Optional[str] = None,
    ) -> list[str]:
        """Run ids matching every condition (AND), oldest first."""
        sql = "SELECT run_id FROM runs"
        clauses: list[str] = []
        arguments: list[Any] = []
        if experiment:
            clauses.append("experiment = ?")
            arguments.append(experiment)
        for raw_key, raw_value in where.items():
            key = WHERE_ALIASES.get(raw_key, raw_key)
            value = str(raw_value)
            try:
                number: Optional[float] = float(value)
            except ValueError:
                number = None
            clauses.append(
                "run_id IN (SELECT run_id FROM params WHERE key = ? "
                "AND (value = ? OR (number IS NOT NULL AND number = ?)))"
            )
            arguments.extend([key, value, number])
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY run_id"
        with self._connect() as connection:
            return [row[0] for row in connection.execute(sql, arguments)]


def _provenance_rows(result: ExperimentResult) -> list[tuple[str, str, Optional[float]]]:
    """Flatten one envelope into (key, value, numeric value) index rows."""
    rows: list[tuple[str, str, Optional[float]]] = []

    def emit(key: str, value: Any) -> None:
        if isinstance(value, (list, tuple)):
            for item in value:
                emit(key, item)
            rows.append((key, ",".join(str(item) for item in value), None))
            return
        if isinstance(value, Mapping):
            rows.append((key, json.dumps(json_safe(value), sort_keys=True), None))
            return
        number: Optional[float] = None
        if isinstance(value, bool):
            number = float(value)
        elif isinstance(value, (int, float)) and not (
            isinstance(value, float) and math.isnan(value)
        ):
            number = float(value)
        rows.append((key, str(value), number))

    emit("experiment", result.experiment)
    for key, value in json_safe(result.config).items():
        emit(key, value)
    for key, value in json_safe(result.options).items():
        emit(key, value)
    for seed in result.seeds:
        emit("seed", seed)
    for label in result.summaries:
        emit("label", label)
        # Threshold-suffixed labels ("bcbpt@50ms") also index their base
        # policy so `policy=bcbpt` finds them.
        if "@" in label:
            emit("label", label.split("@", 1)[0])
    return rows
