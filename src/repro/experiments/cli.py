"""The unified experiment CLI: ``python -m repro.experiments`` / ``repro``.

One command drives every registered experiment::

    repro list                                  # all experiments
    repro describe fig3                         # spec, options, verdicts
    repro run fig3 --nodes 200 --runs 10 --workers 4
    repro run fig4 --thresholds-ms 30 50 100
    repro run fig3 --sweep latency_threshold_s=0.02,0.03
    repro run fig3 --backend pool --resume      # checkpoint + resume cells
    repro shard run fig3 --shard 0/2 --cells a  # one deterministic slice
    repro shard merge fig3 a b                  # reassemble the full grid
    repro compare fig3                          # diff the two newest runs
    repro compare fig3/<run-a> fig3/<run-b>     # diff two specific runs
    repro compare fig3 --where nodes=200        # ... two newest matching runs
    repro report                                # markdown report, newest run
    repro report fig3                           # ... newest fig3 run
    repro report fig3/<run-a>                   # ... one specific run
    repro report 'fig3?nodes=200,policy=bcbpt'  # ... newest matching run
    repro report --compare fig3/<a> fig3/<b>    # side-by-side deltas

``run`` composes the shared :meth:`ExperimentConfig.add_arguments` flags with
the experiment's declarative options, executes through the registry dispatch
(:func:`repro.experiments.api.run_experiment`), prints the report, and
persists the envelope to the :class:`~repro.experiments.results.ResultStore`
(``results/`` by default; disable with ``--no-save``).  ``--sweep
field=v1,v2`` repeats the run across the values of any
:class:`~repro.experiments.config.ExperimentConfig` field or experiment
option; several ``--sweep`` flags form a grid.

``report`` re-analyses a *stored* run with no re-simulation: it renders a
self-contained markdown report (provenance, verdicts, percentile tables,
Fig. 3/4 regenerated from the envelope's raw samples) into the run directory
via :mod:`repro.analysis.report`.  Figures become PNG/SVG when matplotlib
(the ``repro[plots]`` extra) is installed and markdown tables otherwise.
"""

from __future__ import annotations

import argparse
import itertools
import sys
from typing import Any, Optional, Sequence

from repro.experiments.api import (
    ExperimentSpec,
    experiment_names,
    get_experiment,
    run_experiment,
)
from repro.experiments.backends import BACKEND_NAMES, ExecutionPlan, GridIncomplete
from repro.experiments.checkpoint import CellStore
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import format_table
from repro.experiments.results import (
    ResultStore,
    diff_results,
    json_safe,
    parse_where,
    resolve_run_selector,
)

PROG = "repro"

#: Exit code for a sweep that completed without producing every cell — the
#: *expected* outcome of `--max-cells`-limited runs; distinct from a verdict
#: failure (1) and a usage error (2) so drivers can branch on it.
EXIT_INCOMPLETE = 3


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "run":
        return _dispatch_run(argv[1:])
    if argv and argv[0] == "shard":
        return _dispatch_shard(argv[1:])
    parser = _top_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args.name)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "report":
        return _cmd_report(args)
    parser.print_help()
    return 2


def _top_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=PROG,
        description="Run, inspect and compare the paper's experiments.",
        epilog="Use `%(prog)s run <name> --help` for an experiment's full flag set.",
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list all registered experiments")
    describe = sub.add_parser("describe", help="show one experiment's spec")
    describe.add_argument("name", help="experiment name (see `list`)")
    # `run` is documented here but parsed by _dispatch_run so that the
    # experiment's own options appear in `run <name> --help`.
    run = sub.add_parser("run", help="run an experiment", add_help=False)
    run.add_argument("name", nargs="?")
    # `shard` is likewise parsed by _dispatch_shard (it reuses the per-
    # experiment run parser); this stub only provides the help line.
    shard = sub.add_parser(
        "shard",
        help="run one deterministic slice of a sweep, or merge shard stores",
        add_help=False,
    )
    shard.add_argument("mode", nargs="?")
    compare = sub.add_parser("compare", help="diff two stored runs")
    compare.add_argument(
        "runs",
        nargs="+",
        help="either two run refs (run ids like fig3/20260729T144501-001, or "
        "parameter selectors like 'fig3?nodes=200,policy=bcbpt' meaning the "
        "newest matching run) or one experiment name, meaning its two newest "
        "stored runs",
    )
    compare.add_argument(
        "--where",
        default=None,
        metavar="K=V[,K=V...]",
        help="with one experiment name: restrict the 'two newest runs' to "
        "those matching every condition (config fields, options, protocol "
        "labels, seeds — e.g. nodes=10000,policy=bcbpt)",
    )
    compare.add_argument(
        "--results-dir", default=None, help="result store root (default: results/)"
    )
    report = sub.add_parser(
        "report",
        help="render a markdown report (figures included) from a stored run",
    )
    report.add_argument(
        "ref",
        nargs="?",
        default=None,
        help="run id (fig3/<stamp>-001), run directory, experiment name "
        "(meaning its newest run), parameter selector "
        "('fig3?nodes=200,policy=bcbpt': the newest matching run) or "
        "'latest' (the default: newest run overall)",
    )
    report.add_argument(
        "--where",
        default=None,
        metavar="K=V[,K=V...]",
        help="select the newest stored run matching every condition "
        "(scoped to REF when REF is an experiment name)",
    )
    report.add_argument(
        "--compare",
        nargs=2,
        metavar=("BASELINE", "CANDIDATE"),
        help="instead of one run's report, print a side-by-side markdown "
        "comparison of two stored runs",
    )
    report.add_argument(
        "--out", default=None, help="output directory (default: the run directory)"
    )
    report.add_argument(
        "--formats",
        nargs="+",
        default=["png", "svg"],
        help="figure formats when matplotlib is available (default: png svg)",
    )
    report.add_argument(
        "--no-figures",
        action="store_true",
        help="skip image rendering even when matplotlib is available",
    )
    report.add_argument(
        "--stdout",
        action="store_true",
        help="also print the rendered markdown to stdout",
    )
    report.add_argument(
        "--results-dir", default=None, help="result store root (default: results/)"
    )
    return parser


# -------------------------------------------------------------------- list
def _cmd_list() -> int:
    rows = []
    for name in experiment_names():
        spec = get_experiment(name)
        rows.append([name, spec.experiment_id, spec.title])
    print(format_table(["name", "id", "title"], rows))
    return 0


def _cmd_describe(name: str) -> int:
    try:
        spec = get_experiment(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(spec.describe())
    return 0


# --------------------------------------------------------------------- run
def _dispatch_run(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        names = ", ".join(experiment_names())
        print(f"usage: {PROG} run <name> [options]\n\nexperiments: {names}")
        return 0 if argv else 2
    name = argv[0]
    try:
        spec = get_experiment(name)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    parser = build_run_parser(spec)
    args = parser.parse_args(argv[1:])
    return _execute_run(spec, args)


def build_run_parser(spec: ExperimentSpec) -> argparse.ArgumentParser:
    """The full argparse parser for ``run <spec.name>``: shared flags plus
    the experiment's declarative options."""
    parser = argparse.ArgumentParser(
        prog=f"{PROG} run {spec.name}",
        description=f"{spec.experiment_id}: {spec.title}",
    )
    ExperimentConfig.add_arguments(parser)
    for option in spec.options:
        kwargs: dict[str, Any] = {
            "dest": option.dest,
            "type": option.type,
            "default": None,
            "help": option.help,
        }
        if option.nargs is not None:
            kwargs["nargs"] = option.nargs
        parser.add_argument(option.flag, **kwargs)
    parser.add_argument(
        "--sweep",
        action="append",
        default=[],
        metavar="FIELD=V1,V2",
        help="repeat the run for each value of a config field or experiment "
        "option; may be given several times to form a grid",
    )
    parser.add_argument(
        "--no-save", action="store_true", help="do not persist the result envelope"
    )
    parser.add_argument(
        "--results-dir", default=None, help="result store root (default: results/)"
    )
    parser.add_argument(
        "--diff-latest",
        action="store_true",
        help="after the run, diff it against the previous stored run",
    )
    plane = parser.add_argument_group(
        "execution plane",
        "how the sweep's (point × seed) cells execute; none of these can "
        "change a result — only whether/where/when each cell runs",
    )
    plane.add_argument(
        "--backend",
        choices=BACKEND_NAMES,
        default="auto",
        help="cell executor: inline (serial, bit-exact reference), pool "
        "(process pool with warm workers), or auto (by worker count; default)",
    )
    plane.add_argument(
        "--cells",
        default=None,
        metavar="DIR",
        help="cell checkpoint store: completed cells are persisted here the "
        "moment they finish, and already-completed cells are loaded instead "
        "of re-executed",
    )
    plane.add_argument(
        "--resume",
        action="store_true",
        help="checkpoint into (and resume from) the default cell store, "
        "<results-dir>/.cells/<experiment> — or --cells DIR when given",
    )
    plane.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N not-yet-checkpointed cells, then exit with "
        f"code {EXIT_INCOMPLETE}; combine with --resume to time-box long sweeps",
    )
    plane.add_argument(
        "--snapshot-dir",
        default=None,
        metavar="DIR",
        help="persistent directory for network snapshots (drivers default to "
        "a temporary one); lets repeated/resumed runs reuse built networks",
    )
    return parser


def _parse_sweep_value(raw: str) -> Any:
    for parse in (int, float):
        try:
            return parse(raw)
        except ValueError:
            continue
    return raw


def parse_sweep_axes(
    spec: ExperimentSpec, entries: Sequence[str]
) -> list[tuple[str, list[Any]]]:
    """Parse ``--sweep field=v1,v2`` entries into named value axes."""
    config_fields = set(ExperimentConfig.__dataclass_fields__)
    option_dests = {option.dest for option in spec.options}
    axes: list[tuple[str, list[Any]]] = []
    for entry in entries:
        if "=" not in entry:
            raise SystemExit(f"--sweep expects FIELD=V1,V2 — got {entry!r}")
        field, _, raw_values = entry.partition("=")
        if field not in config_fields and field not in option_dests:
            valid = sorted(config_fields | option_dests)
            raise SystemExit(
                f"--sweep field {field!r} is neither an ExperimentConfig field "
                f"nor a {spec.name!r} option; valid: {valid}"
            )
        values = [_parse_sweep_value(v) for v in raw_values.split(",") if v != ""]
        if not values:
            raise SystemExit(f"--sweep {entry!r} supplies no values")
        axes.append((field, values))
    return axes


def _cell_store(spec: ExperimentSpec, args: argparse.Namespace) -> Optional[CellStore]:
    """The checkpoint store selected by ``--cells`` / ``--resume`` (or None).

    ``--resume`` without an explicit directory checkpoints under the result
    store root (``<results-dir>/.cells/<experiment>``), so the plain
    ``repro run X --resume`` → interrupt → ``repro run X --resume`` loop
    needs no bookkeeping from the user.
    """
    if args.cells:
        return CellStore(args.cells)
    if args.resume:
        return CellStore(ResultStore(args.results_dir).root / ".cells" / spec.name)
    return None


def _build_plan(spec: ExperimentSpec, args: argparse.Namespace, **overrides: Any) -> ExecutionPlan:
    """One invocation's :class:`ExecutionPlan` from the shared CLI flags."""
    plan_kwargs: dict[str, Any] = {
        "backend": args.backend,
        "store": _cell_store(spec, args),
        "max_cells": args.max_cells,
        "snapshot_dir": args.snapshot_dir,
    }
    plan_kwargs.update(overrides)
    return ExecutionPlan(**plan_kwargs)


def _report_incomplete(
    spec: ExperimentSpec, plan: ExecutionPlan, exc: GridIncomplete
) -> int:
    print(str(exc), file=sys.stderr)
    if plan.store is not None:
        print(
            f"resume with: {PROG} run {spec.name} <same flags> "
            f"--cells {plan.store.root}",
            file=sys.stderr,
        )
    return EXIT_INCOMPLETE


def _execute_run(spec: ExperimentSpec, args: argparse.Namespace) -> int:
    base_config = ExperimentConfig.from_args(args)
    base_options = {
        option.dest: getattr(args, option.dest)
        for option in spec.options
        if getattr(args, option.dest) is not None
    }
    axes = parse_sweep_axes(spec, args.sweep)
    # The store is always available for reading (--diff-latest works even
    # with --no-save); --no-save only skips the write.
    store = ResultStore(args.results_dir)

    config_fields = set(ExperimentConfig.__dataclass_fields__)
    option_by_dest = {option.dest: option for option in spec.options}
    grid = list(itertools.product(*(values for _, values in axes))) if axes else [()]
    exit_code = 0
    sweep_rows: list[list[object]] = []
    for combo in grid:
        config = base_config
        options = dict(base_options)
        point_label = ", ".join(
            f"{field}={value}" for (field, _), value in zip(axes, combo)
        )
        for (field, _), value in zip(axes, combo):
            if field in config_fields:
                # A sweep point carries one scalar; sequence-typed config
                # fields (seeds, fig4_thresholds_s, ...) take it as a
                # one-element tuple so each point is one valid setting.
                current = getattr(config, field)
                if isinstance(current, (tuple, list)) and not isinstance(
                    value, (tuple, list)
                ):
                    value = (value,)
                config = config.with_overrides(**{field: value})
            else:
                option = option_by_dest[field]
                if option.nargs is not None and not isinstance(value, (tuple, list)):
                    value = [value]
                options[field] = value
        if point_label:
            print(f"### sweep point: {point_label}")
        previous = store.latest(spec.name) if args.diff_latest else None
        # A fresh plan per sweep point: progress counters and the global cell
        # index are per-invocation (the cell *store* is shared — content-
        # derived keys keep different points' cells apart).
        plan = _build_plan(spec, args)
        try:
            result = run_experiment(spec.name, config, options, plan=plan)
        except GridIncomplete as exc:
            return _report_incomplete(spec, plan, exc)
        print(result.render())
        candidate_label = "(unsaved run)"
        if not args.no_save:
            run_dir = store.save(result)
            candidate_label = str(run_dir)
            print()
            print(f"saved: {run_dir}")
        if args.diff_latest:
            if previous is None:
                print("no previous run to diff against")
            else:
                diff = diff_results(store.load(previous), result)
                diff.baseline = previous
                diff.candidate = candidate_label
                print(diff.render())
        verdict_ok = (
            result.verdicts.get(spec.exit_verdict, True) if spec.exit_verdict else True
        )
        if not verdict_ok:
            exit_code = 1
        if point_label:
            sweep_rows.append(
                [point_label]
                + [
                    f"{name}:{'PASS' if value else 'FAIL'}"
                    for name, value in result.verdicts.items()
                ]
            )
            print()
    if sweep_rows:
        width = max(len(row) for row in sweep_rows)
        headers = ["sweep point"] + [f"verdict {i}" for i in range(1, width)]
        padded = [row + [""] * (width - len(row)) for row in sweep_rows]
        print(format_table(headers, padded, title="Sweep summary"))
    return exit_code


# ------------------------------------------------------------------ report
def _cmd_report(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis layer sits above the experiments layer
    # and is only needed by this subcommand.
    from repro.analysis import report as report_mod

    store = ResultStore(args.results_dir)
    try:
        if args.compare:
            baseline = resolve_run_selector(store, args.compare[0])
            candidate = resolve_run_selector(store, args.compare[1])
            print(report_mod.render_comparison(store, baseline, candidate), end="")
            return 0
        ref = args.ref
        if args.where:
            experiment = ref if ref not in (None, "latest") else None
            matches = store.query(parse_where(args.where), experiment=experiment)
            if not matches:
                scoped = f" of {experiment!r}" if experiment else ""
                raise FileNotFoundError(
                    f"no stored run{scoped} matches --where {args.where!r}"
                )
            ref = matches[-1]
        elif ref is not None:
            ref = resolve_run_selector(store, ref)
        artifacts = report_mod.write_report(
            store,
            ref,
            out_dir=args.out,
            formats=tuple(args.formats),
            render_figures=not args.no_figures,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(f"report: {artifacts.markdown_path}")
    for path in artifacts.figure_paths:
        print(f"figure: {path}")
    if args.stdout:
        print()
        print(artifacts.markdown, end="")
    return 0


# ----------------------------------------------------------------- compare
def _cmd_compare(args: argparse.Namespace) -> int:
    runs: list[str] = args.runs
    store = ResultStore(args.results_dir)
    try:
        if len(runs) == 1:
            # One experiment name: diff its two newest stored runs, optionally
            # restricted by `--where` parameter conditions (sqlite index).
            if args.where:
                ids = store.query(parse_where(args.where), experiment=runs[0])
            else:
                ids = store.run_ids(runs[0])
            if len(ids) < 2:
                conditions = f" matching --where {args.where!r}" if args.where else ""
                print(
                    f"need at least two stored runs of {runs[0]!r}{conditions} "
                    f"to compare (found {len(ids)})",
                    file=sys.stderr,
                )
                return 2
            baseline_id, candidate_id = ids[-2], ids[-1]
        else:
            baseline_id = resolve_run_selector(store, runs[0])
            candidate_id = resolve_run_selector(store, runs[1])
        diff = store.diff(baseline_id, candidate_id)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(diff.render())
    return 0 if diff.identical else 1


# ------------------------------------------------------------------- shard
_SHARD_USAGE = f"""usage: {PROG} shard run <name> --shard I/N --cells DIR [run flags]
       {PROG} shard merge <name> CELLS_DIR [CELLS_DIR...] [run flags]

`shard run` executes the deterministic slice of <name>'s sweep cells whose
global submission index is congruent to I (mod N), checkpointing each
completed cell under --cells.  `shard merge` re-drives the experiment with
execution disabled, serving every cell from the given stores; because cells
are merged in submission order regardless of where they ran, the resulting
envelope is byte-identical to a single-machine run (compare canonical
fingerprints, which mask wall-clock provenance).  All shard invocations must
use the same experiment flags; `--shard I/N` is 0-based."""


def _dispatch_shard(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(_SHARD_USAGE)
        return 0 if argv else 2
    mode, rest = argv[0], argv[1:]
    if mode not in ("run", "merge"):
        print(f"unknown shard mode {mode!r}; expected run or merge", file=sys.stderr)
        return 2
    if not rest or rest[0] in ("-h", "--help"):
        print(_SHARD_USAGE)
        return 0 if rest else 2
    try:
        spec = get_experiment(rest[0])
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if mode == "run":
        return _shard_run(spec, rest[1:])
    return _shard_merge(spec, rest[1:])


def _parse_shard_spec(text: str) -> tuple[int, int]:
    index_text, sep, count_text = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        return int(index_text), int(count_text)
    except ValueError:
        raise SystemExit(f"--shard expects I/N (e.g. 0/4), got {text!r}")


def _spec_options(spec: ExperimentSpec, args: argparse.Namespace) -> dict[str, Any]:
    return {
        option.dest: getattr(args, option.dest)
        for option in spec.options
        if getattr(args, option.dest) is not None
    }


def _shard_run(spec: ExperimentSpec, argv: list[str]) -> int:
    parser = build_run_parser(spec)
    parser.prog = f"{PROG} shard run {spec.name}"
    parser.add_argument(
        "--shard",
        required=True,
        metavar="I/N",
        help="execute cells with global submission index ≡ I (mod N); 0-based",
    )
    args = parser.parse_args(argv)
    if args.sweep:
        print(
            "shard run does not compose with --sweep; shard each sweep point "
            "separately",
            file=sys.stderr,
        )
        return 2
    if not args.cells:
        print(
            "shard run requires --cells DIR (the slice's checkpoint store)",
            file=sys.stderr,
        )
        return 2
    shard_index, shard_count = _parse_shard_spec(args.shard)
    config = ExperimentConfig.from_args(args)
    options = _spec_options(spec, args)
    store = CellStore(args.cells)
    plan = _build_plan(
        spec, args, store=store, shard_index=shard_index, shard_count=shard_count
    )
    result = None
    try:
        result = run_experiment(spec.name, config, options, plan=plan)
    except GridIncomplete:
        # The expected outcome: this invocation produced only its slice.
        pass
    progress = plan.progress()
    store.write_manifest(
        {
            "experiment": spec.name,
            "shard_index": shard_index,
            "shard_count": shard_count,
            "config": json_safe(config),
            "options": json_safe(options),
            "progress": progress,
        }
    )
    print(
        f"shard {shard_index}/{shard_count} of {spec.name}: "
        f"{progress['cells_executed']} cell(s) executed, "
        f"{progress['cells_cached']} loaded from checkpoints, "
        f"{progress['cells_missing']} left to other shards "
        f"(store: {store.root})"
    )
    if result is not None:
        # The slice covered the whole grid (N=1, or every other cell was
        # already checkpointed): behave like a plain run.
        print()
        print(result.render())
        if not args.no_save:
            run_dir = ResultStore(args.results_dir).save(result)
            print(f"saved: {run_dir}")
    return 0


def _shard_merge(spec: ExperimentSpec, argv: list[str]) -> int:
    parser = build_run_parser(spec)
    parser.prog = f"{PROG} shard merge {spec.name}"
    parser.add_argument(
        "cell_dirs",
        nargs="+",
        metavar="CELLS_DIR",
        help="per-shard cell stores; all are read, the first is primary",
    )
    args = parser.parse_args(argv)
    if args.sweep:
        print("shard merge does not compose with --sweep", file=sys.stderr)
        return 2
    config = ExperimentConfig.from_args(args)
    options = _spec_options(spec, args)
    store = CellStore(args.cell_dirs[0], extra_roots=args.cell_dirs[1:])
    plan = _build_plan(spec, args, store=store, execute=False)
    try:
        result = run_experiment(spec.name, config, options, plan=plan)
    except GridIncomplete as exc:
        print(str(exc), file=sys.stderr)
        print(
            f"shard merge is strict: {len(plan.missing_cell_keys)} cell(s) "
            "have no checkpointed result in the given stores — run the "
            "missing shards with the same experiment flags and merge again",
            file=sys.stderr,
        )
        return EXIT_INCOMPLETE
    print(result.render())
    if not args.no_save:
        run_dir = ResultStore(args.results_dir).save(result)
        print()
        print(f"saved: {run_dir}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m`
    raise SystemExit(main())
