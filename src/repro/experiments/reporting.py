"""Plain-text and markdown reporting helpers for experiment results.

The paper presents its results as figures; the terminal reports render the
same information as text tables (one row per protocol / threshold / rank)
that can be compared against the figures' shape, plus machine-readable
dictionaries for the tests.  Actual figure regeneration from stored raw
samples lives one layer up, in :mod:`repro.analysis` (``repro report``),
which builds its markdown tables with :func:`format_markdown_table` and takes
its distribution math from :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Format a simple aligned text table."""
    if not headers:
        raise ValueError("a table needs at least one column")
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.6g}"
    return str(cell)


def format_markdown_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Format a GitHub-flavoured markdown table (used by ``repro report``).

    Cells render like :func:`format_table` cells (floats at ``%.6g``), so a
    value appears identically in the terminal report and the markdown report.
    """
    if not headers:
        raise ValueError("a table needs at least one column")
    lines = [
        "| " + " | ".join(str(header) for header in headers) + " |",
        "|" + "|".join(["---"] * len(headers)) + "|",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(_render_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def format_delay_summaries(
    summaries: Mapping[str, Mapping[str, float]],
    *,
    title: str = "Delay distribution summary",
) -> str:
    """Render per-protocol delay summaries as one comparison table."""
    headers = ["protocol", "samples", "mean_ms", "median_ms", "std_ms", "var_ms2", "p90_ms", "max_ms"]
    rows = []
    for name, summary in summaries.items():
        rows.append(
            [
                name,
                int(summary["count"]),
                summary["mean_s"] * 1e3,
                summary["median_s"] * 1e3,
                summary["std_s"] * 1e3,
                summary["variance_s2"] * 1e6,
                summary["p90_s"] * 1e3,
                summary["max_s"] * 1e3,
            ]
        )
    return format_table(headers, rows, title=title)


@dataclass
class ExperimentReport:
    """A structured experiment report: named sections of text plus raw data."""

    experiment_id: str
    description: str
    sections: list[tuple[str, str]] = field(default_factory=list)
    data: dict[str, object] = field(default_factory=dict)

    def add_section(self, heading: str, body: str) -> None:
        """Append a titled text section."""
        self.sections.append((heading, body))

    def add_data(self, key: str, value: object) -> None:
        """Attach machine-readable data (used by tests and EXPERIMENTS.md)."""
        self.data[key] = value

    def render(self) -> str:
        """Full plain-text rendering of the report."""
        lines = [f"=== {self.experiment_id}: {self.description} ==="]
        for heading, body in self.sections:
            lines.append("")
            lines.append(f"--- {heading} ---")
            lines.append(body)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
