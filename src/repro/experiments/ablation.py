"""Ext-5 — ablations of the design choices DESIGN.md calls out.

Two ablations on the BCBPT configuration, run with the same measuring-node
methodology as the main figures:

* **Verification-delay ablation** — the paper (after Decker & Wattenhofer)
  blames part of the propagation delay on per-hop transaction verification;
  Stathakopoulou's "faster Bitcoin network" pipelines relay ahead of
  verification.  Comparing BCBPT with the verification delay charged vs
  skipped isolates how much of the remaining delay is CPU versus links.
* **Long-link ablation** — BCBPT keeps "a few long distance links to the
  outside cluster".  Varying that count (0, 2, 5 per node) shows the
  trade-off between intra-cluster delay (unaffected) and the overlay's
  inter-cluster connectivity (hop count / partition resilience).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.core.bcbpt import BcbptConfig, BcbptPolicy
from repro.experiments.api import deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import AblationJob, run_ablation_job
from repro.experiments.reporting import ExperimentReport, format_table
from repro.measurement.stats import DelayDistribution
from repro.protocol.node import NodeConfig
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.scenarios import Scenario


@dataclass(frozen=True)
class AblationPoint:
    """Result of one ablation variant."""

    variant: str
    mean_delay_s: float
    variance_s2: float
    p90_delay_s: float
    average_degree: float
    average_path_length: float


def build_ablation_scenario(
    cfg: ExperimentConfig,
    seed: int,
    *,
    verification_enabled: bool = True,
    long_links_per_node: int = 2,
) -> Scenario:
    """Build a BCBPT scenario with explicit ablation knobs."""
    parameters = NetworkParameters(
        node_count=cfg.node_count,
        seed=seed,
        node_config=NodeConfig(verification_enabled=verification_enabled),
    )
    simulated = build_network(parameters)
    policy = BcbptPolicy(
        simulated.network,
        simulated.seed_service,
        simulated.simulator.random.stream("policy-bcbpt"),
        BcbptConfig(
            latency_threshold_s=cfg.latency_threshold_s,
            max_outbound=cfg.max_outbound,
            long_links_per_node=long_links_per_node,
        ),
    )
    report = policy.build_topology()
    return Scenario(name="bcbpt", network=simulated, policy=policy, build_report=report)


def _measure_variants(
    cfg: ExperimentConfig, variants: Sequence[tuple[str, dict[str, object]]]
) -> list[AblationPoint]:
    """Measure several ablation variants, fanning (variant, seed) jobs out.

    The shared seed-grid executor regroups in submission order, so results
    are identical for every worker count.
    """

    def make_job(variant_knobs: tuple[str, dict[str, object]], seed: int) -> AblationJob:
        variant, knobs = variant_knobs
        return AblationJob(
            variant=variant,
            seed=seed,
            verification_enabled=bool(knobs.get("verification_enabled", True)),
            long_links_per_node=int(knobs.get("long_links_per_node", 2)),
            config=cfg,
        )

    grid = run_seed_grid(variants, make_job, run_ablation_job, cfg)

    points: list[AblationPoint] = []
    for (variant, _), seed_results in grid:
        delays = DelayDistribution()
        degrees: list[float] = []
        path_lengths: list[float] = []
        for seed_result in seed_results:
            delays.extend(seed_result.delay_samples)
            degrees.append(seed_result.average_degree)
            path_lengths.append(seed_result.average_path_length)
        stats = delays.summary()
        points.append(
            AblationPoint(
                variant=variant,
                mean_delay_s=stats["mean_s"],
                variance_s2=stats["variance_s2"],
                p90_delay_s=stats["p90_s"],
                average_degree=sum(degrees) / len(degrees),
                average_path_length=sum(path_lengths) / len(path_lengths),
            )
        )
    return points


@dataclass(frozen=True)
class AblationOutcome:
    """The combined payload of the registered ``ablation`` experiment."""

    verification: list[AblationPoint]
    long_links: list[AblationPoint]


def run_verification_ablation(config: Optional[ExperimentConfig] = None) -> list[AblationPoint]:
    """BCBPT with per-hop verification delay charged vs pipelined (skipped)."""
    cfg = config if config is not None else ExperimentConfig()
    return _measure_variants(
        cfg,
        [
            ("verify-then-relay", {"verification_enabled": True}),
            ("pipelined-relay", {"verification_enabled": False}),
        ],
    )


def run_long_link_ablation(
    config: Optional[ExperimentConfig] = None,
    counts: Sequence[int] = (0, 2, 5),
) -> list[AblationPoint]:
    """BCBPT with different numbers of long-distance links per node."""
    cfg = config if config is not None else ExperimentConfig()
    return _measure_variants(
        cfg,
        [(f"long-links={count}", {"long_links_per_node": count}) for count in counts],
    )


def build_report(
    verification_points: list[AblationPoint], long_link_points: list[AblationPoint]
) -> ExperimentReport:
    """Render both ablations."""
    report = ExperimentReport(
        experiment_id="Ext-5",
        description="Ablations: verification delay and long-distance links",
    )

    def rows(points: list[AblationPoint]) -> list[list[object]]:
        return [
            [
                point.variant,
                point.mean_delay_s * 1e3,
                point.variance_s2 * 1e6,
                point.p90_delay_s * 1e3,
                point.average_degree,
                point.average_path_length,
            ]
            for point in points
        ]

    headers = ["variant", "mean_ms", "var_ms2", "p90_ms", "avg degree", "avg path len"]
    report.add_section("Verification-delay ablation", format_table(headers, rows(verification_points)))
    report.add_section("Long-link ablation", format_table(headers, rows(long_link_points)))
    report.add_data("verification", verification_points)
    report.add_data("long_links", long_link_points)
    return report


def summarize(outcome: AblationOutcome) -> dict[str, dict[str, float]]:
    """Per-variant scalar summaries for the result envelope."""
    summaries: dict[str, dict[str, float]] = {}
    for group, points in (
        ("verification", outcome.verification),
        ("long-links", outcome.long_links),
    ):
        for point in points:
            summaries[f"{group}/{point.variant}"] = asdict(point)
    return summaries


@experiment(
    "ablation",
    experiment_id="Ext-5",
    title="Ablations: verification delay and long-distance links",
    description=__doc__,
    protocols=("bcbpt",),
    report=lambda outcome: build_report(outcome.verification, outcome.long_links),
    summarize=summarize,
)
def run_ablations(config: Optional[ExperimentConfig] = None) -> AblationOutcome:
    """Run both ablations and return the combined outcome."""
    return AblationOutcome(
        verification=run_verification_ablation(config),
        long_links=run_long_link_ablation(config),
    )


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run ablation``."""
    return deprecated_main("ablation", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
