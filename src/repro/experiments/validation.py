"""Val-1 — simulator validation against published real-network behaviour.

The authors validated their simulator against real-network propagation-delay
measurements (Section V.A).  Those traces are not public, so this experiment
validates the simulated substrate against the *published shape* of the real
network instead:

* the crawler-observed RTT distribution must be realistic: intra-region
  medians of a few tens of milliseconds, inter-region medians several times
  larger, and a long right tail (the same qualitative shape the authors'
  20,000-ping crawl and Decker & Wattenhofer's measurements show);
* the vanilla-Bitcoin Δt distribution must be right-skewed (mean above the
  median) with a long tail — the signature of store-and-forward INV/GETDATA
  relay over heterogeneous links.

Run via ``python -m repro.experiments run validation [--crawler-samples N]``;
``python -m repro.experiments.validation`` remains as a deprecated shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_table
from repro.experiments.runner import PropagationExperiment
from repro.measurement.crawler import CrawlerReport, NetworkCrawler
from repro.workloads.network_gen import NetworkParameters, build_network
from repro.workloads.scenarios import build_scenario


@dataclass(frozen=True)
class ValidationResultSummary:
    """The validation checks and their outcomes."""

    crawler: CrawlerReport
    rtt_median_s: float
    rtt_p90_s: float
    intra_region_median_s: float
    inter_region_median_s: float
    bitcoin_delay_mean_s: float
    bitcoin_delay_median_s: float
    bitcoin_delay_p95_s: float

    @property
    def rtt_shape_ok(self) -> bool:
        """Intra-region fast, inter-region several times slower, long tail."""
        return (
            0.001 <= self.intra_region_median_s <= 0.080
            and self.inter_region_median_s >= 2.0 * self.intra_region_median_s
            and self.rtt_p90_s > self.rtt_median_s
        )

    @property
    def delay_shape_ok(self) -> bool:
        """Right-skewed Δt with a long tail, as in real-network measurements."""
        return (
            self.bitcoin_delay_mean_s >= self.bitcoin_delay_median_s * 0.9
            and self.bitcoin_delay_p95_s >= 1.5 * self.bitcoin_delay_median_s
        )

    @property
    def all_ok(self) -> bool:
        """Whether every validation criterion passes."""
        return self.rtt_shape_ok and self.delay_shape_ok


def summarize(summary: ValidationResultSummary) -> dict[str, dict[str, float]]:
    """Scalar validation metrics for the result envelope."""
    return {
        "validation": {
            "rtt_median_s": summary.rtt_median_s,
            "rtt_p90_s": summary.rtt_p90_s,
            "intra_region_median_s": summary.intra_region_median_s,
            "inter_region_median_s": summary.inter_region_median_s,
            "bitcoin_delay_mean_s": summary.bitcoin_delay_mean_s,
            "bitcoin_delay_median_s": summary.bitcoin_delay_median_s,
            "bitcoin_delay_p95_s": summary.bitcoin_delay_p95_s,
            "reachable_nodes": float(summary.crawler.reachable_nodes),
            "ping_samples": float(summary.crawler.ping_samples),
        }
    }


@experiment(
    "validation",
    experiment_id="Val-1",
    title="Simulator validation against published real-network shapes",
    description=__doc__,
    protocols=("bitcoin",),
    options=(
        ExperimentOption(
            flag="--crawler-samples",
            dest="crawler_samples",
            type=int,
            help="ping samples for the substrate crawl (default: 5000)",
        ),
    ),
    report=lambda summary: build_report(summary),
    summarize=summarize,
    verdicts={
        "rtt_shape_ok": lambda summary: summary.rtt_shape_ok,
        "delay_shape_ok": lambda summary: summary.delay_shape_ok,
        "all_ok": lambda summary: summary.all_ok,
    },
    exit_verdict="all_ok",
)
def run_validation(
    config: Optional[ExperimentConfig] = None,
    *,
    crawler_samples: int = 5_000,
) -> ValidationResultSummary:
    """Crawl the substrate and measure the vanilla-Bitcoin delay shape."""
    if crawler_samples <= 0:
        raise ValueError("crawler_samples must be positive")
    cfg = config if config is not None else ExperimentConfig()
    seed = cfg.seeds[0]

    # Substrate RTT shape, measured the way the authors' crawler measured it.
    simulated = build_network(NetworkParameters(node_count=cfg.node_count, seed=seed))
    crawler = NetworkCrawler(simulated.network, simulated.simulator.random.stream("crawler"))
    crawl = crawler.crawl(crawler_samples)

    # Vanilla Bitcoin propagation-delay shape.
    scenario = build_scenario(
        "bitcoin",
        NetworkParameters(node_count=cfg.node_count, seed=seed),
        max_outbound=cfg.max_outbound,
    )
    result = PropagationExperiment(scenario, cfg).run()
    delays = result.summary()

    return ValidationResultSummary(
        crawler=crawl,
        rtt_median_s=crawl.rtt_distribution.median(),
        rtt_p90_s=crawl.rtt_distribution.percentile(90),
        intra_region_median_s=crawl.intra_region_median_s,
        inter_region_median_s=crawl.inter_region_median_s,
        bitcoin_delay_mean_s=delays["mean_s"],
        bitcoin_delay_median_s=delays["median_s"],
        bitcoin_delay_p95_s=delays["p95_s"],
    )


def build_report(summary: ValidationResultSummary) -> ExperimentReport:
    """Render the validation outcome."""
    report = ExperimentReport(
        experiment_id="Val-1",
        description="Simulator validation against published real-network shapes",
    )
    report.add_section(
        "Crawler RTT distribution",
        format_table(
            ["metric", "value"],
            [
                ["reachable nodes", summary.crawler.reachable_nodes],
                ["ping samples", summary.crawler.ping_samples],
                ["median RTT (ms)", summary.rtt_median_s * 1e3],
                ["p90 RTT (ms)", summary.rtt_p90_s * 1e3],
                ["intra-region median (ms)", summary.intra_region_median_s * 1e3],
                ["inter-region median (ms)", summary.inter_region_median_s * 1e3],
                ["RTT shape OK", summary.rtt_shape_ok],
            ],
        ),
    )
    report.add_section(
        "Vanilla Bitcoin Δt shape",
        format_table(
            ["metric", "value"],
            [
                ["mean Δt (ms)", summary.bitcoin_delay_mean_s * 1e3],
                ["median Δt (ms)", summary.bitcoin_delay_median_s * 1e3],
                ["p95 Δt (ms)", summary.bitcoin_delay_p95_s * 1e3],
                ["delay shape OK", summary.delay_shape_ok],
            ],
        ),
    )
    report.add_data("summary", summary)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run validation``."""
    return deprecated_main("validation", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
