"""Ext-3 — eclipse and partition attack susceptibility (the paper's future work).

Section V.C: "it would seem possible for an attacker to more easily launch
eclipse attacks by concentrating its bad peers within a small cluster ...
Similarly, partition attacks seem to have a great potential.  So our future
work will include evaluation of partition attacks as well as eclipse attacks."

Two scenario harnesses:

* **Eclipse**: an adversary controls a fraction of the node population and
  places its nodes in the victim's region (so they are both geographically and
  latency close to the victim).  After the topology is built we measure what
  fraction of the victim's connections are adversarial — the quantity that
  determines whether the victim's view of the network can be controlled.
* **Partition**: the adversary aims to split a target cluster from the rest of
  the network by severing inter-cluster links.  We count the links crossing
  the target cluster's boundary (the attack cost) and check whether removing
  them actually disconnects the cluster (the attack effect).  For the
  non-clustered Bitcoin baseline, the "cluster" is the victim's geographic
  region.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Optional, Sequence

import networkx as nx

from repro.experiments.config import ExperimentConfig
from repro.experiments.reporting import ExperimentReport, format_table
from repro.workloads.network_gen import NetworkParameters
from repro.workloads.scenarios import Scenario, build_scenario, validate_policy_name

ATTACK_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")


@dataclass(frozen=True)
class EclipseResult:
    """Outcome of one eclipse scenario."""

    protocol: str
    adversary_fraction: float
    victim_connection_count: int
    adversarial_connection_count: int

    @property
    def eclipsed_fraction(self) -> float:
        """Share of the victim's connections controlled by the adversary."""
        if self.victim_connection_count == 0:
            return 0.0
        return self.adversarial_connection_count / self.victim_connection_count


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one partition scenario."""

    protocol: str
    target_group_size: int
    boundary_links: int
    total_links: int
    partition_achieved: bool
    largest_component_fraction: float

    @property
    def boundary_fraction(self) -> float:
        """Share of all links the adversary must sever."""
        if self.total_links == 0:
            return 0.0
        return self.boundary_links / self.total_links


def _pick_victim(scenario: Scenario) -> int:
    """A deterministic victim: the first node of the most common region."""
    simulated = scenario.network
    by_region: dict[str, list[int]] = {}
    for node_id in simulated.node_ids():
        by_region.setdefault(simulated.node(node_id).position.region, []).append(node_id)
    region = max(by_region, key=lambda r: len(by_region[r]))
    return min(by_region[region])


def run_eclipse(
    config: Optional[ExperimentConfig] = None,
    *,
    adversary_fraction: float = 0.15,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
) -> list[EclipseResult]:
    """Measure the adversarial share of the victim's connections per protocol.

    The adversary's nodes are the ``adversary_fraction`` of nodes nearest (in
    latency) to the victim, modelling an attacker that deliberately provisions
    peers close to its target — the strategy the paper warns about.
    """
    if not 0 < adversary_fraction < 1:
        raise ValueError("adversary_fraction must be in (0, 1)")
    cfg = config if config is not None else ExperimentConfig()
    for protocol in protocols:
        validate_policy_name(protocol)
    results: list[EclipseResult] = []
    for protocol in protocols:
        victim_connections = 0
        adversarial = 0
        for seed in cfg.seeds:
            scenario = build_scenario(
                protocol,
                NetworkParameters(node_count=cfg.node_count, seed=seed),
                latency_threshold_s=cfg.latency_threshold_s,
                max_outbound=cfg.max_outbound,
            )
            network = scenario.network.network
            victim = _pick_victim(scenario)
            others = [n for n in scenario.network.node_ids() if n != victim]
            others.sort(key=lambda peer: network.base_rtt(victim, peer))
            adversary_count = max(1, int(adversary_fraction * cfg.node_count))
            adversary_nodes = set(others[:adversary_count])
            neighbors = network.neighbors(victim)
            victim_connections += len(neighbors)
            adversarial += sum(1 for peer in neighbors if peer in adversary_nodes)
        results.append(
            EclipseResult(
                protocol=protocol,
                adversary_fraction=adversary_fraction,
                victim_connection_count=victim_connections,
                adversarial_connection_count=adversarial,
            )
        )
    return results


def run_partition(
    config: Optional[ExperimentConfig] = None,
    *,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
) -> list[PartitionResult]:
    """Measure how cheaply an adversary can cut a target group off the network."""
    cfg = config if config is not None else ExperimentConfig()
    for protocol in protocols:
        validate_policy_name(protocol)
    results: list[PartitionResult] = []
    for protocol in protocols:
        boundary_total = 0
        links_total = 0
        group_total = 0
        achieved_any = False
        largest_fractions: list[float] = []
        for seed in cfg.seeds:
            scenario = build_scenario(
                protocol,
                NetworkParameters(node_count=cfg.node_count, seed=seed),
                latency_threshold_s=cfg.latency_threshold_s,
                max_outbound=cfg.max_outbound,
            )
            network = scenario.network.network
            target_group = _target_group(scenario)
            graph = network.topology.snapshot()
            boundary = [
                (a, b)
                for a, b in graph.edges
                if (a in target_group) != (b in target_group)
            ]
            boundary_total += len(boundary)
            links_total += graph.number_of_edges()
            group_total += len(target_group)
            attacked = graph.copy()
            attacked.remove_edges_from(boundary)
            components = list(nx.connected_components(attacked))
            achieved = any(set(c) == set(target_group) for c in components) or not nx.is_connected(
                attacked
            )
            achieved_any = achieved_any or achieved
            largest = max((len(c) for c in components), default=0)
            largest_fractions.append(largest / max(1, graph.number_of_nodes()))
        count = len(cfg.seeds)
        results.append(
            PartitionResult(
                protocol=protocol,
                target_group_size=group_total // count,
                boundary_links=boundary_total // count,
                total_links=links_total // count,
                partition_achieved=achieved_any,
                largest_component_fraction=sum(largest_fractions) / count,
            )
        )
    return results


def _target_group(scenario: Scenario) -> set[int]:
    """The group the partition adversary tries to isolate.

    For clustered protocols this is the largest cluster; for vanilla Bitcoin
    (no clusters) it is the node population of the most common region.
    """
    clusters = list(scenario.policy.clusters.clusters())
    if clusters:
        largest = max(clusters, key=lambda c: c.size)
        return set(largest.members)
    simulated = scenario.network
    by_region: dict[str, set[int]] = {}
    for node_id in simulated.node_ids():
        by_region.setdefault(simulated.node(node_id).position.region, set()).add(node_id)
    return max(by_region.values(), key=len)


def build_report(
    eclipse_results: list[EclipseResult], partition_results: list[PartitionResult]
) -> ExperimentReport:
    """Render both attack analyses into one report."""
    report = ExperimentReport(
        experiment_id="Ext-3",
        description="Eclipse and partition attack susceptibility",
    )
    report.add_section(
        "Eclipse: adversarial share of the victim's connections",
        format_table(
            ["protocol", "adversary frac", "victim conns", "adversarial", "eclipsed frac"],
            [
                [
                    r.protocol,
                    r.adversary_fraction,
                    r.victim_connection_count,
                    r.adversarial_connection_count,
                    r.eclipsed_fraction,
                ]
                for r in eclipse_results
            ],
        ),
    )
    report.add_section(
        "Partition: cost of isolating the largest cluster/region",
        format_table(
            [
                "protocol",
                "target size",
                "boundary links",
                "total links",
                "boundary frac",
                "partition achieved",
                "largest comp frac",
            ],
            [
                [
                    r.protocol,
                    r.target_group_size,
                    r.boundary_links,
                    r.total_links,
                    r.boundary_fraction,
                    r.partition_achieved,
                    r.largest_component_fraction,
                ]
                for r in partition_results
            ],
        ),
    )
    report.add_data("eclipse", eclipse_results)
    report.add_data("partition", partition_results)
    return report


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    ExperimentConfig.add_cli_arguments(parser)
    parser.add_argument("--adversary-fraction", type=float, default=0.15)
    args = parser.parse_args(argv)
    config = ExperimentConfig.from_cli(args)
    eclipse = run_eclipse(config, adversary_fraction=args.adversary_fraction)
    partition = run_partition(config)
    print(build_report(eclipse, partition).render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
