"""Ext-3 — eclipse and partition attack susceptibility (the paper's future work).

Section V.C: "it would seem possible for an attacker to more easily launch
eclipse attacks by concentrating its bad peers within a small cluster ...
Similarly, partition attacks seem to have a great potential.  So our future
work will include evaluation of partition attacks as well as eclipse attacks."

Two scenario harnesses:

* **Eclipse**: an adversary controls a fraction of the node population and
  places its nodes in the victim's region (so they are both geographically and
  latency close to the victim).  After the topology is built we measure what
  fraction of the victim's connections are adversarial — the quantity that
  determines whether the victim's view of the network can be controlled.
* **Partition**: the adversary aims to split a target cluster from the rest of
  the network by severing inter-cluster links.  We count the links crossing
  the target cluster's boundary (the attack cost) and check whether removing
  them actually disconnects the cluster (the attack effect).  For the
  non-clustered Bitcoin baseline, the "cluster" is the victim's geographic
  region.

Run via ``python -m repro.experiments run attacks [--adversary-fraction F]``;
``python -m repro.experiments.attacks`` remains as a deprecated shim.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional, Sequence

import networkx as nx

from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import (
    EclipseJob,
    EclipseJobResult,
    PartitionJob,
    PartitionJobResult,
    run_eclipse_job,
    run_partition_job,
)
from repro.experiments.reporting import ExperimentReport, format_table
from repro.workloads.scenarios import Scenario

ATTACK_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")


@dataclass(frozen=True)
class EclipseResult:
    """Outcome of one eclipse scenario."""

    protocol: str
    adversary_fraction: float
    victim_connection_count: int
    adversarial_connection_count: int

    @property
    def eclipsed_fraction(self) -> float:
        """Share of the victim's connections controlled by the adversary."""
        if self.victim_connection_count == 0:
            return 0.0
        return self.adversarial_connection_count / self.victim_connection_count


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one partition scenario."""

    protocol: str
    target_group_size: int
    boundary_links: int
    total_links: int
    partition_achieved: bool
    largest_component_fraction: float

    @property
    def boundary_fraction(self) -> float:
        """Share of all links the adversary must sever."""
        if self.total_links == 0:
            return 0.0
        return self.boundary_links / self.total_links


@dataclass(frozen=True)
class AttackOutcome:
    """The combined payload of the registered ``attacks`` experiment."""

    eclipse: list[EclipseResult]
    partition: list[PartitionResult]


def _pick_victim(scenario: Scenario) -> int:
    """A deterministic victim: the first node of the most common region."""
    simulated = scenario.network
    by_region: dict[str, list[int]] = {}
    for node_id in simulated.node_ids():
        by_region.setdefault(simulated.node(node_id).position.region, []).append(node_id)
    region = max(by_region, key=lambda r: len(by_region[r]))
    return min(by_region[region])


def run_eclipse_seed(job: EclipseJob) -> EclipseJobResult:
    """Measure one (protocol, seed) eclipse exposure — the parallel job body."""
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    cfg = job.config
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=cfg.node_count, seed=job.seed),
        latency_threshold_s=cfg.latency_threshold_s,
        max_outbound=cfg.max_outbound,
    )
    network = scenario.network.network
    victim = _pick_victim(scenario)
    others = [n for n in scenario.network.node_ids() if n != victim]
    others.sort(key=lambda peer: network.base_rtt(victim, peer))
    adversary_count = max(1, int(job.adversary_fraction * cfg.node_count))
    adversary_nodes = set(others[:adversary_count])
    neighbors = network.neighbors(victim)
    return EclipseJobResult(
        protocol=job.protocol,
        seed=job.seed,
        victim_connection_count=len(neighbors),
        adversarial_connection_count=sum(1 for peer in neighbors if peer in adversary_nodes),
    )


def run_eclipse(
    config: Optional[ExperimentConfig] = None,
    *,
    adversary_fraction: float = 0.15,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
) -> list[EclipseResult]:
    """Measure the adversarial share of the victim's connections per protocol.

    The adversary's nodes are the ``adversary_fraction`` of nodes nearest (in
    latency) to the victim, modelling an attacker that deliberately provisions
    peers close to its target — the strategy the paper warns about.  Each
    (protocol, seed) build fans out over the shared seed-grid executor.
    """
    if not 0 < adversary_fraction < 1:
        raise ValueError("adversary_fraction must be in (0, 1)")
    cfg = config if config is not None else ExperimentConfig()

    def make_job(protocol: str, seed: int) -> EclipseJob:
        return EclipseJob(
            protocol=protocol,
            seed=seed,
            adversary_fraction=adversary_fraction,
            config=cfg,
        )

    grid = run_seed_grid(protocols, make_job, run_eclipse_job, cfg)
    return [
        EclipseResult(
            protocol=protocol,
            adversary_fraction=adversary_fraction,
            victim_connection_count=sum(r.victim_connection_count for r in seed_results),
            adversarial_connection_count=sum(
                r.adversarial_connection_count for r in seed_results
            ),
        )
        for protocol, seed_results in grid
    ]


def run_partition_seed(job: PartitionJob) -> PartitionJobResult:
    """Measure one (protocol, seed) partition cost — the parallel job body."""
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    cfg = job.config
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=cfg.node_count, seed=job.seed),
        latency_threshold_s=cfg.latency_threshold_s,
        max_outbound=cfg.max_outbound,
    )
    network = scenario.network.network
    target_group = _target_group(scenario)
    graph = network.topology.snapshot()
    boundary = [
        (a, b) for a, b in graph.edges if (a in target_group) != (b in target_group)
    ]
    attacked = graph.copy()
    attacked.remove_edges_from(boundary)
    components = list(nx.connected_components(attacked))
    achieved = any(set(c) == set(target_group) for c in components) or not nx.is_connected(
        attacked
    )
    largest = max((len(c) for c in components), default=0)
    return PartitionJobResult(
        protocol=job.protocol,
        seed=job.seed,
        target_group_size=len(target_group),
        boundary_links=len(boundary),
        total_links=graph.number_of_edges(),
        partition_achieved=achieved,
        largest_component_fraction=largest / max(1, graph.number_of_nodes()),
    )


def run_partition(
    config: Optional[ExperimentConfig] = None,
    *,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
) -> list[PartitionResult]:
    """Measure how cheaply an adversary can cut a target group off the network.

    Each (protocol, seed) build fans out over the shared seed-grid executor.
    """
    cfg = config if config is not None else ExperimentConfig()

    def make_job(protocol: str, seed: int) -> PartitionJob:
        return PartitionJob(protocol=protocol, seed=seed, config=cfg)

    grid = run_seed_grid(protocols, make_job, run_partition_job, cfg)
    results: list[PartitionResult] = []
    for protocol, seed_results in grid:
        count = len(seed_results)
        results.append(
            PartitionResult(
                protocol=protocol,
                target_group_size=sum(r.target_group_size for r in seed_results) // count,
                boundary_links=sum(r.boundary_links for r in seed_results) // count,
                total_links=sum(r.total_links for r in seed_results) // count,
                partition_achieved=any(r.partition_achieved for r in seed_results),
                largest_component_fraction=sum(
                    r.largest_component_fraction for r in seed_results
                )
                / count,
            )
        )
    return results


def _target_group(scenario: Scenario) -> set[int]:
    """The group the partition adversary tries to isolate.

    For clustered protocols this is the largest cluster; for vanilla Bitcoin
    (no clusters) it is the node population of the most common region.
    """
    clusters = list(scenario.policy.clusters.clusters())
    if clusters:
        largest = max(clusters, key=lambda c: c.size)
        return set(largest.members)
    simulated = scenario.network
    by_region: dict[str, set[int]] = {}
    for node_id in simulated.node_ids():
        by_region.setdefault(simulated.node(node_id).position.region, set()).add(node_id)
    return max(by_region.values(), key=len)


def build_report(
    eclipse_results: list[EclipseResult], partition_results: list[PartitionResult]
) -> ExperimentReport:
    """Render both attack analyses into one report."""
    report = ExperimentReport(
        experiment_id="Ext-3",
        description="Eclipse and partition attack susceptibility",
    )
    report.add_section(
        "Eclipse: adversarial share of the victim's connections",
        format_table(
            ["protocol", "adversary frac", "victim conns", "adversarial", "eclipsed frac"],
            [
                [
                    r.protocol,
                    r.adversary_fraction,
                    r.victim_connection_count,
                    r.adversarial_connection_count,
                    r.eclipsed_fraction,
                ]
                for r in eclipse_results
            ],
        ),
    )
    report.add_section(
        "Partition: cost of isolating the largest cluster/region",
        format_table(
            [
                "protocol",
                "target size",
                "boundary links",
                "total links",
                "boundary frac",
                "partition achieved",
                "largest comp frac",
            ],
            [
                [
                    r.protocol,
                    r.target_group_size,
                    r.boundary_links,
                    r.total_links,
                    r.boundary_fraction,
                    r.partition_achieved,
                    r.largest_component_fraction,
                ]
                for r in partition_results
            ],
        ),
    )
    report.add_data("eclipse", eclipse_results)
    report.add_data("partition", partition_results)
    return report


def _outcome_report(outcome: AttackOutcome) -> ExperimentReport:
    return build_report(outcome.eclipse, outcome.partition)


def summarize(outcome: AttackOutcome) -> dict[str, dict[str, float]]:
    """Per-protocol scalar summaries for the result envelope."""
    summaries: dict[str, dict[str, float]] = {}
    for result in outcome.eclipse:
        summaries[f"eclipse/{result.protocol}"] = {
            **asdict(result),
            "eclipsed_fraction": result.eclipsed_fraction,
        }
    for result in outcome.partition:
        summaries[f"partition/{result.protocol}"] = {
            **asdict(result),
            "boundary_fraction": result.boundary_fraction,
        }
    return summaries


@experiment(
    "attacks",
    experiment_id="Ext-3",
    title="Eclipse and partition attack susceptibility",
    description=__doc__,
    protocols=ATTACK_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--adversary-fraction",
            dest="adversary_fraction",
            type=float,
            help="fraction of the node population the eclipse adversary "
            "controls (default: 0.15)",
        ),
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="protocols to evaluate (default: bitcoin lbc bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
    ),
    report=_outcome_report,
    summarize=summarize,
)
def run_attacks(
    config: Optional[ExperimentConfig] = None,
    adversary_fraction: float = 0.15,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
) -> AttackOutcome:
    """Run both attack analyses and return the combined outcome."""
    return AttackOutcome(
        eclipse=run_eclipse(
            config, adversary_fraction=adversary_fraction, protocols=protocols
        ),
        partition=run_partition(config, protocols=protocols),
    )


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run attacks``."""
    return deprecated_main("attacks", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
