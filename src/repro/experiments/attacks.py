"""Ext-3 — attack susceptibility: static surfaces and dynamic adversary outcomes.

Section V.C: "it would seem possible for an attacker to more easily launch
eclipse attacks by concentrating its bad peers within a small cluster ...
Similarly, partition attacks seem to have a great potential.  So our future
work will include evaluation of partition attacks as well as eclipse attacks."

Two *static* surface measurements (the original Ext-3 analyses):

* **Eclipse**: an adversary controls a fraction of the node population and
  places its nodes in the victim's region (so they are both geographically and
  latency close to the victim).  After the topology is built we measure what
  fraction of the victim's connections are adversarial — the quantity that
  determines whether the victim's view of the network can be controlled.
* **Partition**: the adversary aims to split a target cluster from the rest of
  the network by severing inter-cluster links.  We count the links crossing
  the target cluster's boundary (the attack cost) and check whether removing
  them actually disconnects the cluster (the attack effect).  For the
  non-clustered Bitcoin baseline, the "cluster" is the victim's geographic
  region.

Plus the *dynamic* adversary plane: every attack in
:data:`DYNAMIC_ATTACKS` is actually run as a full mining/propagation campaign
against every protocol, next to an honest ``"none"`` baseline cell, and the
outcome is measured rather than inferred from topology:

* ``byzantine`` — a random fraction of nodes accept-and-never-relay
  (:class:`~repro.protocol.adversary.SilentByzantine`); measured as block-Δt
  degradation and coverage loss versus the honest baseline.
* ``representatives`` — the same silent behaviour, but concentrated on the
  cluster representatives (PR-2's ``representative_of()`` role); the vanilla
  overlay gets an equal-size random capture as the fair control.  This is the
  "are clustered hubs a high-value target?" cell.
* ``delay`` — adversaries forward relay traffic late
  (:class:`~repro.protocol.adversary.DelayByzantine`), degrading every path
  through them without ever being provably malicious.
* ``eclipse`` — the latency-nearest fraction of nodes starves one victim of
  all relay traffic (:class:`~repro.protocol.adversary.SelectiveByzantine`),
  composed with membership churn so the victim keeps re-connecting into the
  adversarial ring; measured as the victim's block coverage.
* ``selfish`` — Eyal–Sirer block withholding
  (:class:`~repro.protocol.adversary.SelfishMiner`) on a miner with hash-power
  share α; measured as the attacker's revenue share of the honest best chain
  versus α.

Each (attack, protocol, seed) cell is one independent simulation fanned out
over :func:`~repro.experiments.grid.run_seed_grid`, so the dynamic plane
inherits ``--workers`` fan-out, checkpoint/resume and sharding, and all
aggregates are worker-count invariant.  Adversary randomness lives on the
named streams ``"adversary-selection"`` / ``"adversary-behavior"`` /
``"attack-mining"``, so adversary-off runs never perturb the fig3 golden
fingerprints.

The verdicts ask the paper's future-work question directly — does proximity
clustering widen or narrow each attack surface?

Run via ``python -m repro.experiments run attacks [--attacks ...]``;
``python -m repro.experiments.attacks`` remains as a deprecated shim.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Optional, Sequence

import networkx as nx

from repro.analysis.samples import SampleLog
from repro.analysis.stats import mean
from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import (
    AttackJob,
    AttackJobResult,
    EclipseJob,
    EclipseJobResult,
    PartitionJob,
    PartitionJobResult,
    run_attack_job,
    run_eclipse_job,
    run_partition_job,
)
from repro.experiments.reporting import ExperimentReport, format_table
from repro.workloads.scenarios import AttackSpec, Scenario, validate_attack_kind

ATTACK_PROTOCOLS = ("bitcoin", "lbc", "bcbpt")

#: Dynamic campaigns run by default (the honest ``"none"`` baseline cell is
#: always added in front — the degradation metrics divide by it).
DYNAMIC_ATTACKS = ("byzantine", "representatives", "delay", "eclipse", "selfish")


@dataclass(frozen=True)
class EclipseResult:
    """Outcome of one eclipse scenario."""

    protocol: str
    adversary_fraction: float
    victim_connection_count: int
    adversarial_connection_count: int

    @property
    def eclipsed_fraction(self) -> float:
        """Share of the victim's connections controlled by the adversary."""
        if self.victim_connection_count == 0:
            return 0.0
        return self.adversarial_connection_count / self.victim_connection_count


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of one partition scenario."""

    protocol: str
    target_group_size: int
    boundary_links: int
    total_links: int
    partition_achieved: bool
    largest_component_fraction: float

    @property
    def boundary_fraction(self) -> float:
        """Share of all links the adversary must sever."""
        if self.total_links == 0:
            return 0.0
        return self.boundary_links / self.total_links


@dataclass(frozen=True)
class DynamicAttackResult:
    """Pooled dynamic outcomes for one (attack, protocol) cell.

    Carries plain values only (tuples of floats, never live distribution
    objects), so two payloads produced at different worker counts compare
    equal field-by-field — the invariance the registry tests assert.

    Attributes:
        attack: attack kind (``"none"`` is the honest baseline).
        protocol: neighbour-selection policy under test.
        delay_samples: block Δt samples pooled across seeds, in merge order.
        per_seed: ``(seed, samples)`` pairs in seed order.
        blocks_measured: publicly propagated blocks tracked across seeds.
        coverages: per-seed mean fraction of nodes reached per block.
        victim_coverages: per-seed fraction of measured blocks that reached
            the observation victim within the horizon.
        byzantine_counts: per-seed number of corrupted nodes.
        messages_suppressed: messages silently dropped by behaviours, summed.
        blocks_withheld / blocks_released / races_started: selfish-mining
            state-machine counters, summed across seeds.
        revenue_shares: per-seed attacker revenue share (None when the cell
            has no selfish miner or no mined blocks landed).
        attacker_hashpower: the selfish miner's α (0.0 for other attacks).
    """

    attack: str
    protocol: str
    delay_samples: tuple[float, ...]
    per_seed: tuple[tuple[int, tuple[float, ...]], ...]
    blocks_measured: int
    coverages: tuple[float, ...]
    victim_coverages: tuple[float, ...]
    byzantine_counts: tuple[int, ...]
    messages_suppressed: int
    blocks_withheld: int
    blocks_released: int
    races_started: int
    revenue_shares: tuple[Optional[float], ...]
    attacker_hashpower: float

    @property
    def label(self) -> str:
        """The combined ``attack/protocol`` result key."""
        return f"{self.attack}/{self.protocol}"

    def mean_delay(self) -> float:
        """Mean block Δt across the pooled samples (NaN when unmeasured)."""
        if not self.delay_samples:
            return float("nan")
        return mean(self.delay_samples)

    def mean_coverage(self) -> float:
        """Mean per-block node coverage across seeds."""
        if not self.coverages:
            return 0.0
        return mean(self.coverages)

    def mean_victim_coverage(self) -> float:
        """Mean fraction of blocks that reached the victim across seeds."""
        if not self.victim_coverages:
            return 0.0
        return mean(self.victim_coverages)

    def mean_revenue_share(self) -> float:
        """Mean attacker revenue share across seeds (unmeasured seeds skipped)."""
        shares = [s for s in self.revenue_shares if s is not None]
        if not shares:
            return float("nan")
        return mean(shares)

    def summary(self) -> dict[str, float]:
        """Scalar summary for the result envelope.

        NaN entries (an unmeasured cell's mean Δt, a non-selfish cell's
        revenue) are omitted rather than serialised: NaN survives JSON but
        not equality, so it would break the envelope round-trip contract.
        """
        summary = {
            "count": float(len(self.delay_samples)),
            "mean_delay_s": self.mean_delay(),
            "blocks_measured": float(self.blocks_measured),
            "mean_coverage": self.mean_coverage(),
            "mean_victim_coverage": self.mean_victim_coverage(),
            "byzantine_count": float(sum(self.byzantine_counts)),
            "messages_suppressed": float(self.messages_suppressed),
            "blocks_withheld": float(self.blocks_withheld),
            "blocks_released": float(self.blocks_released),
            "races_started": float(self.races_started),
            "revenue_share": self.mean_revenue_share(),
            "attacker_hashpower": self.attacker_hashpower,
        }
        return {key: value for key, value in summary.items() if not math.isnan(value)}


@dataclass(frozen=True)
class AttackOutcome:
    """The combined payload of the registered ``attacks`` experiment."""

    eclipse: list[EclipseResult]
    partition: list[PartitionResult]
    dynamic: dict[str, DynamicAttackResult] = field(default_factory=dict)


def _pick_victim(scenario: Scenario) -> int:
    """A deterministic victim: the first node of the most common region."""
    simulated = scenario.network
    by_region: dict[str, list[int]] = {}
    for node_id in simulated.node_ids():
        by_region.setdefault(simulated.node(node_id).position.region, []).append(node_id)
    region = max(by_region, key=lambda r: len(by_region[r]))
    return min(by_region[region])


def run_eclipse_seed(job: EclipseJob) -> EclipseJobResult:
    """Measure one (protocol, seed) eclipse exposure — the parallel job body."""
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    cfg = job.config
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=cfg.node_count, seed=job.seed),
        latency_threshold_s=cfg.latency_threshold_s,
        max_outbound=cfg.max_outbound,
    )
    network = scenario.network.network
    victim = _pick_victim(scenario)
    others = [n for n in scenario.network.node_ids() if n != victim]
    others.sort(key=lambda peer: network.base_rtt(victim, peer))
    adversary_count = max(1, int(job.adversary_fraction * cfg.node_count))
    adversary_nodes = set(others[:adversary_count])
    neighbors = network.neighbors(victim)
    return EclipseJobResult(
        protocol=job.protocol,
        seed=job.seed,
        victim_connection_count=len(neighbors),
        adversarial_connection_count=sum(1 for peer in neighbors if peer in adversary_nodes),
    )


def run_eclipse(
    config: Optional[ExperimentConfig] = None,
    *,
    adversary_fraction: float = 0.15,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
) -> list[EclipseResult]:
    """Measure the adversarial share of the victim's connections per protocol.

    The adversary's nodes are the ``adversary_fraction`` of nodes nearest (in
    latency) to the victim, modelling an attacker that deliberately provisions
    peers close to its target — the strategy the paper warns about.  Each
    (protocol, seed) build fans out over the shared seed-grid executor.
    """
    if not 0 < adversary_fraction < 1:
        raise ValueError("adversary_fraction must be in (0, 1)")
    cfg = config if config is not None else ExperimentConfig()

    def make_job(protocol: str, seed: int) -> EclipseJob:
        return EclipseJob(
            protocol=protocol,
            seed=seed,
            adversary_fraction=adversary_fraction,
            config=cfg,
        )

    grid = run_seed_grid(protocols, make_job, run_eclipse_job, cfg)
    return [
        EclipseResult(
            protocol=protocol,
            adversary_fraction=adversary_fraction,
            victim_connection_count=sum(r.victim_connection_count for r in seed_results),
            adversarial_connection_count=sum(
                r.adversarial_connection_count for r in seed_results
            ),
        )
        for protocol, seed_results in grid
    ]


def run_partition_seed(job: PartitionJob) -> PartitionJobResult:
    """Measure one (protocol, seed) partition cost — the parallel job body."""
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario

    cfg = job.config
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=cfg.node_count, seed=job.seed),
        latency_threshold_s=cfg.latency_threshold_s,
        max_outbound=cfg.max_outbound,
    )
    network = scenario.network.network
    target_group = _target_group(scenario)
    graph = network.topology.snapshot()
    boundary = [
        (a, b) for a, b in graph.edges if (a in target_group) != (b in target_group)
    ]
    attacked = graph.copy()
    attacked.remove_edges_from(boundary)
    components = list(nx.connected_components(attacked))
    achieved = any(set(c) == set(target_group) for c in components) or not nx.is_connected(
        attacked
    )
    largest = max((len(c) for c in components), default=0)
    return PartitionJobResult(
        protocol=job.protocol,
        seed=job.seed,
        target_group_size=len(target_group),
        boundary_links=len(boundary),
        total_links=graph.number_of_edges(),
        partition_achieved=achieved,
        largest_component_fraction=largest / max(1, graph.number_of_nodes()),
    )


def run_partition(
    config: Optional[ExperimentConfig] = None,
    *,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
) -> list[PartitionResult]:
    """Measure how cheaply an adversary can cut a target group off the network.

    Each (protocol, seed) build fans out over the shared seed-grid executor.
    """
    cfg = config if config is not None else ExperimentConfig()

    def make_job(protocol: str, seed: int) -> PartitionJob:
        return PartitionJob(protocol=protocol, seed=seed, config=cfg)

    grid = run_seed_grid(protocols, make_job, run_partition_job, cfg)
    results: list[PartitionResult] = []
    for protocol, seed_results in grid:
        count = len(seed_results)
        results.append(
            PartitionResult(
                protocol=protocol,
                target_group_size=sum(r.target_group_size for r in seed_results) // count,
                boundary_links=sum(r.boundary_links for r in seed_results) // count,
                total_links=sum(r.total_links for r in seed_results) // count,
                partition_achieved=any(r.partition_achieved for r in seed_results),
                largest_component_fraction=sum(
                    r.largest_component_fraction for r in seed_results
                )
                / count,
            )
        )
    return results


def _target_group(scenario: Scenario) -> set[int]:
    """The group the partition adversary tries to isolate.

    For clustered protocols this is the largest cluster; for vanilla Bitcoin
    (no clusters) it is the node population of the most common region.
    """
    clusters = list(scenario.policy.clusters.clusters())
    if clusters:
        largest = max(clusters, key=lambda c: c.size)
        return set(largest.members)
    simulated = scenario.network
    by_region: dict[str, set[int]] = {}
    for node_id in simulated.node_ids():
        by_region.setdefault(simulated.node(node_id).position.region, set()).add(node_id)
    return max(by_region.values(), key=len)


# -------------------------------------------------- dynamic adversary plane
def run_attack_seed(job: AttackJob) -> AttackJobResult:
    """Execute one (attack, protocol, seed) campaign — process-pool entry point.

    Builds the scenario (with churn for attacks whose spec demands it),
    installs the spec's byzantine behaviours, wires the selfish miner when
    asked, then mines ``job.blocks`` blocks and measures how each publicly
    propagated block actually spreads through the corrupted network.
    """
    # Imported lazily: parallel.py is config-level and imports us back.
    from repro.analysis.samples import BlockArrivalRecorder
    from repro.protocol.adversary import SelfishMiner
    from repro.protocol.mining import MinerProfile, MiningProcess, equal_hash_power
    from repro.workloads.generators import fund_nodes
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import ChurnSchedule, build_scenario, install_attack

    cfg = job.config
    spec = job.spec
    # Eclipse composes with membership churn: ordinary nodes cycle sessions
    # while the adversarial ring (spared below) is always on, so the victim's
    # replacement connections keep landing on attackers.
    churn = (
        ChurnSchedule(median_session_s=45.0, mean_downtime_s=15.0, start_delay_s=5.0)
        if spec.needs_churn
        else None
    )
    scenario = build_scenario(
        job.protocol,
        NetworkParameters(node_count=cfg.node_count, seed=job.seed),
        latency_threshold_s=job.threshold_s,
        max_outbound=cfg.max_outbound,
        churn=churn,
    )
    simulated = scenario.network
    network = simulated.network
    simulator = simulated.simulator
    nodes = list(simulated.nodes.values())
    fund_nodes(nodes, outputs_per_node=cfg.funding_outputs)

    # The focal node: eclipse victim, selfish attacker, and (when honest) the
    # observation point the victim-coverage metric watches.
    focal = _pick_victim(scenario)
    byzantine = install_attack(
        scenario,
        spec,
        victim=focal if spec.kind == "eclipse" else None,
        protected=(focal,),
    )
    corrupted = set(byzantine)
    ids = simulated.node_ids()

    # Every node mines.  The baseline and all byzantine cells then consume
    # the "attack-mining" stream identically (same miner count, same uniform
    # weights), so each block is a *paired* comparison: same winner, same
    # template slot, only the relay plane differs.  A silent winner strands
    # its own block — that is the attack's damage, measured as coverage loss,
    # not an artefact to design away.
    if spec.mines_selfishly:
        others = [n for n in ids if n != focal]
        share = (1.0 - spec.hashpower) / len(others)
        miners = [MinerProfile(focal, spec.hashpower)]
        miners.extend(MinerProfile(n, share) for n in others)
        attacker_id = focal
        observer = min(others)
    else:
        miners = equal_hash_power(ids)
        attacker_id = -1
        observer = focal

    recorder = BlockArrivalRecorder()
    recorder.attach(nodes)
    mining = MiningProcess(
        simulator,
        simulated.nodes,
        miners,
        simulator.random.stream("attack-mining"),
    )
    selfish = (
        SelfishMiner(simulator, network, simulated.node(focal), mining)
        if spec.mines_selfishly
        else None
    )
    if churn is not None:
        scenario.start_churn(spare=corrupted | {focal, observer})

    delays: list[float] = []
    coverages: list[float] = []
    observer_hits = 0
    blocks_measured = 0
    creator_cursor = 0

    for _ in range(job.blocks):
        # Refill mempools (same creator rotation as the baseline cell, so the
        # injected transactions pair up too), then let the flood drain.
        for _ in range(job.txs_per_block):
            creator = simulated.node(ids[creator_cursor % len(ids)])
            creator_cursor += 1
            creator.create_transaction([(creator.keypair.address, cfg.payment_satoshi)])
        simulator.run(until=simulator.now + 10.0)

        block = mining.mine_one_block()
        if block is None:  # pragma: no cover - miners are spared from churn
            continue
        mined_at = simulator.now
        if selfish is not None and block.block_hash in selfish.withheld_hashes:
            # Withheld: nothing to measure yet — the release policy reacts to
            # later honest blocks (or the end-of-campaign flush).
            continue
        deadline = mined_at + job.block_horizon_s
        while simulator.now < deadline:
            if all(node.blockchain.has_block(block.block_hash) for node in nodes):
                break
            simulator.run(until=min(simulator.now + 0.5, deadline))

        blocks_measured += 1
        delays.extend(
            recorder.delays(block.block_hash, mined_at, exclude=(block.header.miner_id,))
        )
        receivers = recorder.receivers(block.block_hash)
        coverages.append(len(receivers) / len(nodes))
        if observer in receivers:
            observer_hits += 1

    if selfish is not None:
        # Cash out: publish the remaining private lead and let it compete.
        selfish.release_all()
        simulator.run(until=simulator.now + job.block_horizon_s)
        share = selfish.revenue_share(simulated.node(observer))
        # None, not NaN: NaN loses its identity across the worker-pool pickle
        # round trip and would break the payload's equality contract.
        revenue = None if math.isnan(share) else share
        blocks_withheld = selfish.blocks_withheld
        blocks_released = selfish.blocks_released
        races_started = selfish.races_started
    else:
        revenue = None
        blocks_withheld = blocks_released = races_started = 0

    return AttackJobResult(
        attack=job.attack,
        protocol=job.protocol,
        seed=job.seed,
        block_delay_samples=tuple(delays),
        blocks_measured=blocks_measured,
        coverage=mean(coverages) if coverages else 0.0,
        victim_coverage=observer_hits / blocks_measured if blocks_measured else 0.0,
        byzantine_nodes=tuple(byzantine),
        messages_suppressed=network.messages_suppressed,
        attacker_id=attacker_id,
        attacker_hashpower=spec.hashpower if spec.mines_selfishly else 0.0,
        blocks_withheld=blocks_withheld,
        blocks_released=blocks_released,
        races_started=races_started,
        revenue_share=revenue,
    )


def run_dynamic_attacks(
    config: Optional[ExperimentConfig] = None,
    *,
    attacks: Sequence[str] = DYNAMIC_ATTACKS,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
    adversary_fraction: float = 0.15,
    blocks: int = 2,
    txs_per_block: int = 4,
    block_horizon_s: float = 30.0,
    extra_delay_s: float = 0.25,
    selfish_hashpower: float = 0.35,
) -> dict[str, DynamicAttackResult]:
    """Run every (attack, protocol, seed) campaign and pool per cell.

    The honest ``"none"`` baseline is always run first for every protocol —
    the degradation metrics (:func:`degradation_ratio`,
    :func:`coverage_loss`) divide attacked cells by it.

    Returns:
        ``"attack/protocol"`` -> pooled :class:`DynamicAttackResult`, in
        sweep order (baseline first).
    """
    cfg = config if config is not None else ExperimentConfig()
    if blocks <= 0:
        raise ValueError("blocks must be positive")
    if txs_per_block < 0:
        raise ValueError("txs_per_block cannot be negative")
    if block_horizon_s <= 0:
        raise ValueError("block_horizon_s must be positive")
    for attack in attacks:
        validate_attack_kind(attack)

    kinds = ["none"]
    kinds.extend(a for a in dict.fromkeys(attacks) if a != "none")
    points = [(attack, protocol) for attack in kinds for protocol in protocols]

    def make_job(point: tuple[str, str], seed: int) -> AttackJob:
        attack, protocol = point
        return AttackJob(
            attack=attack,
            protocol=protocol,
            seed=seed,
            spec=AttackSpec(
                kind=attack,
                fraction=adversary_fraction,
                extra_delay_s=extra_delay_s,
                hashpower=selfish_hashpower,
            ),
            blocks=blocks,
            txs_per_block=txs_per_block,
            block_horizon_s=block_horizon_s,
            threshold_s=cfg.latency_threshold_s,
            config=cfg,
        )

    grid = run_seed_grid(points, make_job, run_attack_job, cfg)

    # Merge in submission order — identical aggregates for every worker count.
    results: dict[str, DynamicAttackResult] = {}
    for (attack, protocol), seed_results in grid:
        pooled: list[float] = []
        per_seed: list[tuple[int, tuple[float, ...]]] = []
        coverages: list[float] = []
        victim_coverages: list[float] = []
        byzantine_counts: list[int] = []
        revenue_shares: list[float] = []
        blocks_measured = 0
        messages_suppressed = 0
        blocks_withheld = blocks_released = races_started = 0
        hashpower = 0.0
        for seed, job_result in zip(cfg.seeds, seed_results):
            pooled.extend(job_result.block_delay_samples)
            per_seed.append((seed, job_result.block_delay_samples))
            coverages.append(job_result.coverage)
            victim_coverages.append(job_result.victim_coverage)
            byzantine_counts.append(len(job_result.byzantine_nodes))
            revenue_shares.append(job_result.revenue_share)
            blocks_measured += job_result.blocks_measured
            messages_suppressed += job_result.messages_suppressed
            blocks_withheld += job_result.blocks_withheld
            blocks_released += job_result.blocks_released
            races_started += job_result.races_started
            hashpower = job_result.attacker_hashpower
        results[f"{attack}/{protocol}"] = DynamicAttackResult(
            attack=attack,
            protocol=protocol,
            delay_samples=tuple(pooled),
            per_seed=tuple(per_seed),
            blocks_measured=blocks_measured,
            coverages=tuple(coverages),
            victim_coverages=tuple(victim_coverages),
            byzantine_counts=tuple(byzantine_counts),
            messages_suppressed=messages_suppressed,
            blocks_withheld=blocks_withheld,
            blocks_released=blocks_released,
            races_started=races_started,
            revenue_shares=tuple(revenue_shares),
            attacker_hashpower=hashpower,
        )
    return results


def _cell_mean_delay(dynamic: dict[str, DynamicAttackResult], key: str) -> float:
    """Mean block Δt of one ``attack/protocol`` cell, NaN when unmeasured."""
    result = dynamic.get(key)
    if result is None:
        return float("nan")
    return result.mean_delay()


def degradation_ratio(
    dynamic: dict[str, DynamicAttackResult], attack: str, protocol: str
) -> float:
    """Attacked mean Δt over the protocol's own honest-baseline mean Δt.

    > 1 means the attack slowed propagation; NaN when either cell is missing
    or unmeasured.  Each protocol is normalised by *its own* baseline, so the
    ratio isolates what the adversary added from how fast the overlay is.
    """
    attacked = _cell_mean_delay(dynamic, f"{attack}/{protocol}")
    baseline = _cell_mean_delay(dynamic, f"none/{protocol}")
    if math.isnan(attacked) or math.isnan(baseline) or baseline <= 0:
        return float("nan")
    return attacked / baseline


def coverage_loss(
    dynamic: dict[str, DynamicAttackResult], attack: str, protocol: str
) -> float:
    """Baseline mean coverage minus attacked mean coverage (NaN if missing)."""
    attacked = dynamic.get(f"{attack}/{protocol}")
    baseline = dynamic.get(f"none/{protocol}")
    if attacked is None or baseline is None:
        return float("nan")
    return baseline.mean_coverage() - attacked.mean_coverage()


# ------------------------------------------------------------------ verdicts
def clustering_contains_byzantine_degradation(
    dynamic: dict[str, DynamicAttackResult],
) -> bool:
    """Does BCBPT degrade no worse than vanilla under random silent nodes?

    Both protocols are normalised by their own honest baselines, so this
    compares the *relative* slowdown random byzantine relays inflict.  True
    means the clustered overlay's redundancy contains the damage at least as
    well as the random overlay — the surface did not widen.
    """
    bcbpt = degradation_ratio(dynamic, "byzantine", "bcbpt")
    vanilla = degradation_ratio(dynamic, "byzantine", "bitcoin")
    if math.isnan(bcbpt) or math.isnan(vanilla):
        return False
    return bcbpt <= vanilla


def representative_capture_widens_surface(
    dynamic: dict[str, DynamicAttackResult],
) -> bool:
    """Is capturing BCBPT's cluster representatives worse than random capture?

    On the vanilla overlay the ``representatives`` cell falls back to an
    equal-size random capture, so comparing the two degradation ratios asks
    whether clustering created a high-value target set the paper's design
    should worry about.
    """
    targeted = degradation_ratio(dynamic, "representatives", "bcbpt")
    control = degradation_ratio(dynamic, "representatives", "bitcoin")
    if math.isnan(targeted) or math.isnan(control):
        return False
    return targeted >= control


def clustering_widens_eclipse_surface(
    dynamic: dict[str, DynamicAttackResult],
) -> bool:
    """Is the eclipse victim starved harder on the clustered overlay?

    The paper's own warning: proximity selection concentrates the victim's
    candidate set, so latency-near adversaries capture more of its view.
    Measured directly as the victim's block coverage under attack.
    """
    bcbpt = dynamic.get("eclipse/bcbpt")
    vanilla = dynamic.get("eclipse/bitcoin")
    if bcbpt is None or vanilla is None:
        return False
    if not bcbpt.blocks_measured or not vanilla.blocks_measured:
        return False
    return bcbpt.mean_victim_coverage() <= vanilla.mean_victim_coverage()


def delay_injection_degrades_propagation(
    dynamic: dict[str, DynamicAttackResult],
) -> bool:
    """Do delay-injecting adversaries slow every measured protocol down?"""
    ratios = [
        degradation_ratio(dynamic, "delay", result.protocol)
        for key, result in dynamic.items()
        if result.attack == "delay"
    ]
    ratios = [r for r in ratios if not math.isnan(r)]
    if not ratios:
        return False
    return all(r > 1.0 for r in ratios)


def selfish_mining_pays_somewhere(
    dynamic: dict[str, DynamicAttackResult],
) -> bool:
    """Does withholding beat honest mining (revenue share > α) anywhere?

    Eyal–Sirer profitability depends on the attacker's effective γ, which
    here emerges from propagation racing; fast overlays can push it below
    the profitability threshold, so a False verdict is itself a finding.
    """
    for result in dynamic.values():
        if result.attack != "selfish":
            continue
        share = result.mean_revenue_share()
        if not math.isnan(share) and share > result.attacker_hashpower:
            return True
    return False


def build_report(
    eclipse_results: list[EclipseResult],
    partition_results: list[PartitionResult],
    dynamic: Optional[dict[str, DynamicAttackResult]] = None,
) -> ExperimentReport:
    """Render the static surfaces and the dynamic outcomes into one report."""
    report = ExperimentReport(
        experiment_id="Ext-3",
        description="Attack susceptibility: static surfaces and dynamic outcomes",
    )
    report.add_section(
        "Eclipse: adversarial share of the victim's connections",
        format_table(
            ["protocol", "adversary frac", "victim conns", "adversarial", "eclipsed frac"],
            [
                [
                    r.protocol,
                    r.adversary_fraction,
                    r.victim_connection_count,
                    r.adversarial_connection_count,
                    r.eclipsed_fraction,
                ]
                for r in eclipse_results
            ],
        ),
    )
    report.add_section(
        "Partition: cost of isolating the largest cluster/region",
        format_table(
            [
                "protocol",
                "target size",
                "boundary links",
                "total links",
                "boundary frac",
                "partition achieved",
                "largest comp frac",
            ],
            [
                [
                    r.protocol,
                    r.target_group_size,
                    r.boundary_links,
                    r.total_links,
                    r.boundary_fraction,
                    r.partition_achieved,
                    r.largest_component_fraction,
                ]
                for r in partition_results
            ],
        ),
    )
    if dynamic:
        report.add_section(
            "Dynamic outcomes per (attack, protocol) cell",
            format_table(
                [
                    "attack/protocol",
                    "samples",
                    "mean Δt (ms)",
                    "coverage",
                    "victim cov",
                    "suppressed",
                    "withheld",
                    "revenue",
                ],
                [
                    [
                        key,
                        len(result.delay_samples),
                        result.mean_delay() * 1e3,
                        result.mean_coverage(),
                        result.mean_victim_coverage(),
                        result.messages_suppressed,
                        result.blocks_withheld,
                        result.mean_revenue_share(),
                    ]
                    for key, result in dynamic.items()
                ],
            ),
        )
        degradation_rows = [
            [
                key,
                degradation_ratio(dynamic, result.attack, result.protocol),
                coverage_loss(dynamic, result.attack, result.protocol),
            ]
            for key, result in dynamic.items()
            if result.attack != "none"
        ]
        if degradation_rows:
            report.add_section(
                "Degradation vs each protocol's honest baseline",
                format_table(
                    ["attack/protocol", "Δt ratio", "coverage loss"], degradation_rows
                ),
            )
    report.add_data("eclipse", eclipse_results)
    report.add_data("partition", partition_results)
    if dynamic is not None:
        report.add_data("dynamic", dynamic)
    return report


def _outcome_report(outcome: AttackOutcome) -> ExperimentReport:
    return build_report(outcome.eclipse, outcome.partition, outcome.dynamic)


def summarize(outcome: AttackOutcome) -> dict[str, dict[str, float]]:
    """Per-protocol scalar summaries for the result envelope."""
    summaries: dict[str, dict[str, float]] = {}
    for result in outcome.eclipse:
        summaries[f"eclipse/{result.protocol}"] = {
            **asdict(result),
            "eclipsed_fraction": result.eclipsed_fraction,
        }
    for result in outcome.partition:
        summaries[f"partition/{result.protocol}"] = {
            **asdict(result),
            "boundary_fraction": result.boundary_fraction,
        }
    for key, dynamic_result in outcome.dynamic.items():
        cell = dynamic_result.summary()
        degradation = degradation_ratio(
            outcome.dynamic, dynamic_result.attack, dynamic_result.protocol
        )
        loss = coverage_loss(
            outcome.dynamic, dynamic_result.attack, dynamic_result.protocol
        )
        if not math.isnan(degradation):
            cell["degradation_ratio"] = degradation
        if not math.isnan(loss):
            cell["coverage_loss"] = loss
        summaries[f"dynamic/{key}"] = cell
    return summaries


def collect_samples(outcome: AttackOutcome) -> SampleLog:
    """Raw block-Δt samples per dynamic cell for the envelope.

    One ``block_delay_s`` series per (attack/protocol, seed) in merge order,
    plus the per-seed coverage curve — worker-count invariant like every
    other sample capture built on the seed grid.
    """
    log = SampleLog()
    for key, result in outcome.dynamic.items():
        log.add_per_seed(
            key,
            "block_delay_s",
            {seed: list(samples) for seed, samples in result.per_seed},
            unit="s",
        )
        for index, coverage in enumerate(result.coverages):
            log.add_point(key, "coverage", float(index), coverage, unit="fraction")
    return log


@experiment(
    "attacks",
    experiment_id="Ext-3",
    title="Attack susceptibility: static surfaces and dynamic adversary outcomes",
    description=__doc__,
    protocols=ATTACK_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--adversary-fraction",
            dest="adversary_fraction",
            type=float,
            help="fraction of the node population the adversary controls "
            "(default: 0.15)",
        ),
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="protocols to evaluate (default: bitcoin lbc bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
        ExperimentOption(
            flag="--attacks",
            dest="attacks",
            type=str,
            nargs="+",
            help="dynamic attack campaigns to run next to the honest baseline "
            "(default: byzantine representatives delay eclipse selfish)",
            convert=tuple,
        ),
        ExperimentOption(
            flag="--attack-blocks",
            dest="attack_blocks",
            type=int,
            help="blocks mined per dynamic (attack, protocol, seed) campaign "
            "(default: 2)",
        ),
        ExperimentOption(
            flag="--attack-txs",
            dest="attack_txs",
            type=int,
            help="fresh transactions injected before each dynamic block "
            "(default: 4)",
        ),
        ExperimentOption(
            flag="--attack-horizon",
            dest="attack_horizon_s",
            type=float,
            help="simulated seconds allowed per dynamic block to spread "
            "(default: 30)",
        ),
        ExperimentOption(
            flag="--attack-delay",
            dest="attack_delay_s",
            type=float,
            help="fixed extra forwarding delay of the delay adversary in "
            "seconds (default: 0.25)",
        ),
        ExperimentOption(
            flag="--selfish-hashpower",
            dest="selfish_hashpower",
            type=float,
            help="the selfish miner's hash-power share α (default: 0.35)",
        ),
    ),
    report=_outcome_report,
    summarize=summarize,
    collect_samples=collect_samples,
    verdicts={
        "clustering_contains_byzantine_degradation": lambda o: (
            clustering_contains_byzantine_degradation(o.dynamic)
        ),
        "representative_capture_widens_surface": lambda o: (
            representative_capture_widens_surface(o.dynamic)
        ),
        "clustering_widens_eclipse_surface": lambda o: (
            clustering_widens_eclipse_surface(o.dynamic)
        ),
        "delay_injection_degrades_propagation": lambda o: (
            delay_injection_degrades_propagation(o.dynamic)
        ),
        "selfish_mining_pays_somewhere": lambda o: (
            selfish_mining_pays_somewhere(o.dynamic)
        ),
    },
)
def run_attacks(
    config: Optional[ExperimentConfig] = None,
    adversary_fraction: float = 0.15,
    protocols: Sequence[str] = ATTACK_PROTOCOLS,
    attacks: Sequence[str] = DYNAMIC_ATTACKS,
    attack_blocks: int = 2,
    attack_txs: int = 4,
    attack_horizon_s: float = 30.0,
    attack_delay_s: float = 0.25,
    selfish_hashpower: float = 0.35,
) -> AttackOutcome:
    """Run the static analyses and the dynamic campaigns; combine the outcome."""
    return AttackOutcome(
        eclipse=run_eclipse(
            config, adversary_fraction=adversary_fraction, protocols=protocols
        ),
        partition=run_partition(config, protocols=protocols),
        dynamic=run_dynamic_attacks(
            config,
            attacks=attacks,
            protocols=protocols,
            adversary_fraction=adversary_fraction,
            blocks=attack_blocks,
            txs_per_block=attack_txs,
            block_horizon_s=attack_horizon_s,
            extra_delay_s=attack_delay_s,
            selfish_hashpower=selfish_hashpower,
        ),
    )


def main(argv: Optional[list[str]] = None) -> int:
    """Deprecated CLI shim; forwards to ``repro run attacks``."""
    return deprecated_main("attacks", argv)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
