"""Ext-9 — load frontier: throughput vs confirmation latency under sustained
Poisson traffic.

The paper measures propagation delay for individual transactions injected
into an otherwise idle network.  Its claim — clustered overlays propagate
faster — only pays off for users if it survives *sustained* load, where
mempools fill, blocks hit their byte cap, the fee market decides inclusion
and the user-visible metric becomes tx-generated → buried-``k``-deep
confirmation latency.  This experiment maps that frontier.

For every (policy, offered tx/s) pair it builds the policy's overlay, funds
every wallet, then drives an open-loop Poisson
:class:`~repro.workloads.traffic.TrafficModel` (per-transaction fees drawn
from a deterministic per-seed exponential) against byte-capped Poisson mining
for a long simulated horizon.  A
:class:`~repro.workloads.traffic.ConfirmationTracker` on one observer node
streams confirmation latency through constant-size P² quantile estimators, so
multi-hour horizons with thousands of blocks never hold a per-sample series.
The driver reports, per policy:

* the latency-vs-offered-load frontier (p50/p99 confirmation latency at each
  offered rate),
* the saturation point — the lowest offered rate at which confirmed
  throughput falls measurably below offered *and* the late-run backlog is
  deep and either still growing (the unbounded-queue signature) or pinned
  against mempool capacity (evictions — a capped queue overflows instead),
* fee-market telemetry (full blocks, fees collected, fee evictions).

The headline verdict, ``bcbpt_advantage_under_load``, asks whether the
paper's clustered overlay still confirms no slower than vanilla Bitcoin at
the highest offered load — i.e. whether the propagation advantage survives
congestion instead of being an idle-network artefact.

(policy, rate, seed) cells are independent simulations; they fan out over
:class:`~repro.experiments.parallel.ParallelRunner` and merge in submission
order.  Because the P² estimator state cannot be merged, every cell finalises
its quantiles *inside* the worker and the driver aggregates per-seed scalars
only — which is what keeps every aggregate identical for every worker count.

Run from the command line::

    PYTHONPATH=src python -m repro.experiments run load_frontier \
        --nodes 30 --seeds 3 11 --rates 0.5 2 8 --horizon 600 --workers 0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.analysis.samples import SampleLog
from repro.analysis.stats import mean
from repro.experiments.api import ExperimentOption, deprecated_main, experiment
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import run_seed_grid
from repro.experiments.parallel import LoadJob, LoadJobResult, run_load_job
from repro.experiments.reporting import ExperimentReport, format_table
from repro.workloads.traffic import PROFILE_KINDS

#: Policies compared by default: the vanilla baseline vs the paper's overlay.
LOAD_PROTOCOLS = ("bitcoin", "bcbpt")

#: Offered aggregate rates (tx/s) swept by default — spans comfortably
#: under-capacity to well past the default block-capacity (~1.7 tx/s).
DEFAULT_RATES = (0.5, 2.0, 8.0)

#: Default simulated seconds of sustained load per cell.
DEFAULT_HORIZON_S = 600.0

#: Default network-wide mean block interval (compressed from Bitcoin's 600 s
#: so a cell sees tens of blocks, the way the fork/double-spend drivers do).
DEFAULT_BLOCK_INTERVAL_S = 15.0

#: Default block size cap: ~26 payment transactions per block, so offered
#: rates past ~1.7 tx/s queue and the fee market decides inclusion.
DEFAULT_MAX_BLOCK_BYTES = 6_000

#: Default per-node mempool capacity (fee-priority eviction above it).
DEFAULT_MEMPOOL_MAX_SIZE = 500

#: Default burial depth for "confirmed" (k blocks deep on the best chain).
DEFAULT_CONFIRMATION_DEPTH = 3

#: Default mean of the exponential per-transaction fee draw (satoshi).
DEFAULT_MEAN_FEE_SATOSHI = 250.0

#: Default confirmed outputs funded per node before load starts.
DEFAULT_FUNDING_OUTPUTS = 8

#: Confirmed throughput below this fraction of offered load counts toward
#: saturation (the margin absorbs the confirmation-pipeline fill at the start
#: of the horizon).
SATURATION_THROUGHPUT_FRACTION = 0.9

#: The mean backlog over the final quarter of the horizon must exceed this
#: multiple of the second-quarter mean (and the absolute floor below) to
#: count as "still growing" — window means, so the between-blocks sawtooth
#: of a healthy queue does not read as growth.
SATURATION_BACKLOG_GROWTH = 1.5

#: Minimum final-quarter mean backlog (transactions) for the growth test.
SATURATION_BACKLOG_FLOOR = 5.0


@dataclass
class LoadCellResult:
    """Pooled measurements for one (protocol, offered rate) cell.

    Every latency figure is the across-seed mean of a per-seed streamed
    scalar (P² estimates finalised in the worker), never a pooled-sample
    statistic — see the module docstring for why.
    """

    protocol: str
    offered_tps: float
    seeds: list[int] = field(default_factory=list)
    txs_generated: int = 0
    generation_failures: int = 0
    txs_confirmed: int = 0
    pending_at_end: int = 0
    p50_by_seed: dict[int, float] = field(default_factory=dict)
    p99_by_seed: dict[int, float] = field(default_factory=dict)
    mean_by_seed: dict[int, float] = field(default_factory=dict)
    max_latency_s: float = 0.0
    generated_tps_values: list[float] = field(default_factory=list)
    confirmed_tps_values: list[float] = field(default_factory=list)
    backlog_mid_values: list[int] = field(default_factory=list)
    backlog_final_values: list[int] = field(default_factory=list)
    backlog_curves: dict[int, tuple[tuple[float, int], ...]] = field(default_factory=dict)
    blocks_mined: int = 0
    full_blocks_mined: int = 0
    total_fees_collected: int = 0
    fee_evictions: int = 0
    capacity_drops: int = 0
    conflict_evictions: int = 0
    events: int = 0

    def _seed_mean(self, by_seed: dict[int, float]) -> float:
        values = [value for value in by_seed.values() if value == value]  # NaN-safe
        return mean(values) if values else float("nan")

    def p50_latency_s(self) -> float:
        """Across-seed mean of the streamed p50 confirmation latency."""
        return self._seed_mean(self.p50_by_seed)

    def p99_latency_s(self) -> float:
        """Across-seed mean of the streamed p99 confirmation latency."""
        return self._seed_mean(self.p99_by_seed)

    def mean_latency_s(self) -> float:
        """Across-seed mean of the mean confirmation latency."""
        return self._seed_mean(self.mean_by_seed)

    def generated_tps(self) -> float:
        """Mean achieved generation rate (tx/s) across seeds."""
        return mean(self.generated_tps_values) if self.generated_tps_values else 0.0

    def confirmed_tps(self) -> float:
        """Mean confirmed throughput (tx/s) across seeds."""
        return mean(self.confirmed_tps_values) if self.confirmed_tps_values else 0.0

    def backlog_mid(self) -> float:
        """Mean observer backlog halfway through the horizon."""
        return mean([float(v) for v in self.backlog_mid_values]) if self.backlog_mid_values else 0.0

    def backlog_final(self) -> float:
        """Mean observer backlog at the end of the horizon."""
        return (
            mean([float(v) for v in self.backlog_final_values])
            if self.backlog_final_values
            else 0.0
        )

    def full_block_fraction(self) -> float:
        """Fraction of mined blocks whose template hit the byte cap."""
        if not self.blocks_mined:
            return 0.0
        return self.full_blocks_mined / self.blocks_mined

    def _window_means(self) -> list[tuple[float, float]]:
        """Per-seed (steady-window mean, final-window mean) of the backlog.

        Steady window = second quarter of the horizon (past the pipeline-fill
        transient), final window = last quarter.  Window means, not point
        samples, so the between-blocks sawtooth of a healthy queue averages
        out instead of masquerading as growth.
        """
        pairs = []
        for curve in self.backlog_curves.values():
            n = len(curve)
            if n < 4:
                continue
            steady = [float(depth) for _, depth in curve[n // 4 : n // 2]]
            final = [float(depth) for _, depth in curve[(3 * n) // 4 :]]
            if steady and final:
                pairs.append((mean(steady), mean(final)))
        return pairs

    def backlog_growth(self) -> float:
        """Final-quarter mean backlog over the second-quarter mean (per-seed
        ratios averaged; 0.0 when no curve is long enough to window)."""
        pairs = self._window_means()
        if not pairs:
            return 0.0
        return mean([final / max(steady, 1.0) for steady, final in pairs])

    def backlog_late(self) -> float:
        """Across-seed mean backlog over the final quarter of the horizon."""
        pairs = self._window_means()
        return mean([final for _, final in pairs]) if pairs else 0.0

    def pool_overflowed(self) -> bool:
        """Whether any mempool hit capacity (fee evictions or hard drops)."""
        return (self.fee_evictions + self.capacity_drops) > 0

    def is_saturated(self) -> bool:
        """Whether this cell shows the saturation signature.

        Confirmed throughput measurably below offered *and* a deep late-run
        backlog that is either still growing (the unbounded-queue signature)
        or has already pinned against a capacity-limited pool (evictions or
        drops — a capped queue cannot grow, it overflows).  Both conditions
        together, so neither the pipeline-fill transient nor a
        merely-deep-but-draining queue trips the detector.
        """
        throughput_short = (
            self.confirmed_tps() < SATURATION_THROUGHPUT_FRACTION * self.offered_tps
        )
        backlog_deep = self.backlog_late() >= SATURATION_BACKLOG_FLOOR
        backlog_stuck = (
            self.backlog_growth() > SATURATION_BACKLOG_GROWTH or self.pool_overflowed()
        )
        return throughput_short and backlog_deep and backlog_stuck

    def summary(self) -> dict[str, float]:
        """Scalar summary for the result envelope."""
        return {
            "offered_tps": self.offered_tps,
            "generated_tps": self.generated_tps(),
            "confirmed_tps": self.confirmed_tps(),
            "txs_generated": float(self.txs_generated),
            "txs_confirmed": float(self.txs_confirmed),
            "generation_failures": float(self.generation_failures),
            "pending_at_end": float(self.pending_at_end),
            "confirmation_p50_s": self.p50_latency_s(),
            "confirmation_p99_s": self.p99_latency_s(),
            "confirmation_mean_s": self.mean_latency_s(),
            "confirmation_max_s": self.max_latency_s,
            "backlog_mid": self.backlog_mid(),
            "backlog_final": self.backlog_final(),
            "backlog_growth": self.backlog_growth(),
            "blocks_mined": float(self.blocks_mined),
            "full_block_fraction": self.full_block_fraction(),
            "total_fees_collected": float(self.total_fees_collected),
            "fee_evictions": float(self.fee_evictions),
            "capacity_drops": float(self.capacity_drops),
            "conflict_evictions": float(self.conflict_evictions),
            "saturated": float(self.is_saturated()),
        }


def cell_label(protocol: str, offered_tps: float) -> str:
    """The stable ``"<protocol>@<rate>tps"`` label used everywhere downstream."""
    return f"{protocol}@{offered_tps:g}tps"


# ----------------------------------------------------------------- job body
def run_load_seed(job: LoadJob) -> LoadJobResult:
    """Execute one (protocol, rate, seed) cell — the process-pool entry point."""
    # Imported lazily: parallel.py is config-level and imports us back.
    from repro.protocol.mining import MiningProcess, equal_hash_power
    from repro.protocol.node import NodeConfig
    from repro.workloads.generators import fund_nodes
    from repro.workloads.network_gen import NetworkParameters
    from repro.workloads.scenarios import build_scenario
    from repro.workloads.traffic import (
        ConfirmationTracker,
        FeeModel,
        TrafficModel,
        TrafficProfile,
    )

    config = job.config
    parameters = NetworkParameters(
        node_count=config.node_count,
        seed=job.seed,
        node_config=NodeConfig(mempool_max_size=job.mempool_max_size),
    )
    scenario = build_scenario(
        job.protocol,
        parameters,
        latency_threshold_s=job.threshold_s,
        max_outbound=config.max_outbound,
    )
    simulated = scenario.network
    simulator = simulated.simulator
    nodes = list(simulated.nodes.values())
    ids = simulated.node_ids()
    fund_nodes(nodes, outputs_per_node=job.funding_outputs)

    if job.profile_kind == "constant":
        profile = TrafficProfile(kind="constant", rate_tps=job.offered_tps)
    elif job.profile_kind == "ramp":
        profile = TrafficProfile(
            kind="ramp",
            rate_tps=job.offered_tps,
            base_rate_tps=0.0,
            ramp_duration_s=job.horizon_s / 2.0,
        )
    else:
        profile = TrafficProfile(
            kind="step",
            rate_tps=job.offered_tps,
            base_rate_tps=job.offered_tps / 4.0,
            step_at_s=job.horizon_s / 2.0,
        )

    observer = simulated.node(ids[0])
    tracker = ConfirmationTracker(observer, depth=job.confirmation_depth)
    traffic = TrafficModel(
        simulator,
        simulated.nodes,
        profile=profile,
        fee_model=FeeModel(mean_fee_satoshi=job.mean_fee_satoshi),
        payment_satoshi=config.payment_satoshi,
        tracker=tracker,
    )
    mining = MiningProcess(
        simulator,
        simulated.nodes,
        equal_hash_power(ids),
        simulator.random.stream("load-mining"),
        block_interval_s=job.block_interval_s,
        max_block_bytes=job.max_block_bytes,
    )

    traffic.start()
    mining.start()

    # Advance in fixed slices, sampling the observer's backlog at each edge —
    # a bounded (~100-point) curve regardless of horizon length.
    backlog_curve: list[tuple[float, int]] = []
    sample_interval = max(job.horizon_s / 100.0, 1.0)
    now = 0.0
    while now < job.horizon_s:
        now = min(now + sample_interval, job.horizon_s)
        simulator.run(until=now)
        backlog_curve.append((now, len(observer.mempool)))
    traffic.stop()
    mining.stop()

    no_sample = float("nan")
    return LoadJobResult(
        protocol=job.protocol,
        offered_tps=job.offered_tps,
        seed=job.seed,
        txs_generated=traffic.txs_generated,
        generation_failures=traffic.generation_failures,
        txs_confirmed=tracker.confirmed,
        pending_at_end=tracker.pending,
        confirmation_p50_s=tracker.p50.value() if tracker.confirmed else no_sample,
        confirmation_p99_s=tracker.p99.value() if tracker.confirmed else no_sample,
        confirmation_mean_s=tracker.mean_latency if tracker.confirmed else no_sample,
        confirmation_max_s=tracker.latency_max,
        backlog_curve=tuple(backlog_curve),
        blocks_mined=mining.blocks_mined,
        full_blocks_mined=mining.full_blocks_mined,
        total_fees_collected=mining.total_fees_collected,
        fee_evictions=sum(node.stats.mempool_fee_evictions for node in nodes),
        capacity_drops=sum(node.stats.mempool_capacity_drops for node in nodes),
        conflict_evictions=sum(node.stats.mempool_conflict_evictions for node in nodes),
        events=simulator.events_executed,
        horizon_s=job.horizon_s,
    )


# ----------------------------------------------------------------- analysis
def saturation_point_tps(
    results: dict[str, LoadCellResult], protocol: str
) -> Optional[float]:
    """The lowest offered rate at which ``protocol`` saturates (None if never)."""
    saturated = [
        cell.offered_tps
        for cell in results.values()
        if cell.protocol == protocol and cell.is_saturated()
    ]
    return min(saturated) if saturated else None


def _cells_for(results: dict[str, LoadCellResult], protocol: str) -> list[LoadCellResult]:
    return sorted(
        (cell for cell in results.values() if cell.protocol == protocol),
        key=lambda cell: cell.offered_tps,
    )


def confirms_at_every_rate(results: dict[str, LoadCellResult]) -> bool:
    """Every (protocol, rate) cell confirmed at least one transaction."""
    return bool(results) and all(cell.txs_confirmed > 0 for cell in results.values())


def bcbpt_advantage_under_load(results: dict[str, LoadCellResult]) -> bool:
    """BCBPT confirms no slower than vanilla Bitcoin at the highest load.

    Compared on mean confirmation latency at each protocol's highest offered
    rate, with a 5% tolerance (confirmation latency is dominated by the block
    interval, so the overlay's propagation advantage is a small margin on
    top).  Vacuously true when either protocol is missing from the sweep.
    """
    bitcoin_cells = _cells_for(results, "bitcoin")
    bcbpt_cells = _cells_for(results, "bcbpt")
    if not bitcoin_cells or not bcbpt_cells:
        return True
    bitcoin_latency = bitcoin_cells[-1].mean_latency_s()
    bcbpt_latency = bcbpt_cells[-1].mean_latency_s()
    if bitcoin_latency != bitcoin_latency or bcbpt_latency != bcbpt_latency:
        return False  # a frontier edge with no confirmations is a failure
    return bcbpt_latency <= bitcoin_latency * 1.05


def saturation_no_earlier_for_bcbpt(results: dict[str, LoadCellResult]) -> bool:
    """BCBPT does not hit its saturation point at a lower rate than Bitcoin.

    Vacuously true when either protocol is absent from the sweep; a failure
    means both were swept and Bitcoin stayed unsaturated at a rate where
    BCBPT had already tipped over.
    """
    if not _cells_for(results, "bitcoin") or not _cells_for(results, "bcbpt"):
        return True
    bcbpt_point = saturation_point_tps(results, "bcbpt")
    if bcbpt_point is None:
        return True
    bitcoin_point = saturation_point_tps(results, "bitcoin")
    if bitcoin_point is None:
        return False
    return bcbpt_point >= bitcoin_point


def collect_samples(results: dict[str, LoadCellResult]) -> SampleLog:
    """Raw per-seed series for the envelope's ``samples`` field.

    One single-value series per (cell, seed) for each streamed latency
    scalar — that per-seed grouping is what lets ``repro report`` bootstrap
    confidence intervals across seeds without re-simulation — plus the
    observer backlog curve as a time series.
    """
    log = SampleLog()
    for key, cell in results.items():
        log.add_per_seed(
            key,
            "confirmation_p50_s",
            {seed: [value] for seed, value in cell.p50_by_seed.items() if value == value},
            unit="s",
        )
        log.add_per_seed(
            key,
            "confirmation_p99_s",
            {seed: [value] for seed, value in cell.p99_by_seed.items() if value == value},
            unit="s",
        )
        for seed in sorted(cell.backlog_curves):
            for time_s, depth in cell.backlog_curves[seed]:
                log.add_point(key, "mempool_backlog", time_s, float(depth), unit="txs")
    return log


# ------------------------------------------------------------------- report
def build_report(results: dict[str, LoadCellResult]) -> ExperimentReport:
    """Text report: the frontier table plus the per-policy saturation points."""
    report = ExperimentReport(
        "Ext-9",
        "Throughput/latency frontier under sustained Poisson load "
        "(fee-priority mempools, byte-capped blocks)",
    )
    rows = []
    for cell in sorted(results.values(), key=lambda c: (c.protocol, c.offered_tps)):
        rows.append(
            [
                cell.protocol,
                f"{cell.offered_tps:g}",
                f"{cell.generated_tps():.3g}",
                f"{cell.confirmed_tps():.3g}",
                f"{cell.p50_latency_s():.4g}",
                f"{cell.p99_latency_s():.4g}",
                f"{cell.backlog_final():.4g}",
                f"{cell.full_block_fraction():.2f}",
                "yes" if cell.is_saturated() else "no",
            ]
        )
    report.add_section(
        "Latency-vs-load frontier",
        format_table(
            [
                "policy",
                "offered tx/s",
                "generated tx/s",
                "confirmed tx/s",
                "p50 latency (s)",
                "p99 latency (s)",
                "final backlog",
                "full blocks",
                "saturated",
            ],
            rows,
        ),
    )
    protocols = sorted({cell.protocol for cell in results.values()})
    saturation_lines = []
    for protocol in protocols:
        point = saturation_point_tps(results, protocol)
        shown = f"{point:g} tx/s" if point is not None else "not reached in sweep"
        saturation_lines.append(f"{protocol}: {shown}")
    report.add_section("Saturation points", "\n".join(saturation_lines))
    for protocol in protocols:
        report.add_data(f"saturation_tps/{protocol}", saturation_point_tps(results, protocol))
    return report


# ------------------------------------------------------------------- driver
@experiment(
    "load_frontier",
    experiment_id="Ext-9",
    title="Throughput/latency frontier under sustained Poisson load",
    description=__doc__,
    protocols=LOAD_PROTOCOLS,
    options=(
        ExperimentOption(
            flag="--rates",
            dest="rates",
            type=float,
            nargs="+",
            help="offered aggregate loads to sweep, tx/s (default: 0.5 2 8)",
            convert=tuple,
        ),
        ExperimentOption(
            flag="--protocols",
            dest="protocols",
            type=str,
            nargs="+",
            help="policies to compare (default: bitcoin bcbpt)",
            convert=tuple,
            is_protocols=True,
        ),
        ExperimentOption(
            flag="--profile",
            dest="profile_kind",
            type=str,
            help="traffic schedule: constant, ramp or step (default: constant)",
        ),
        ExperimentOption(
            flag="--horizon",
            dest="horizon_s",
            type=float,
            help="simulated seconds of sustained load per cell (default: 600)",
        ),
        ExperimentOption(
            flag="--block-interval",
            dest="block_interval_s",
            type=float,
            help="mean block interval in simulated seconds (default: 15)",
        ),
        ExperimentOption(
            flag="--block-bytes",
            dest="max_block_bytes",
            type=int,
            help="block size cap in bytes (default: 6000)",
        ),
        ExperimentOption(
            flag="--mempool-cap",
            dest="mempool_max_size",
            type=int,
            help="per-node mempool capacity, transactions (default: 500)",
        ),
        ExperimentOption(
            flag="--depth",
            dest="confirmation_depth",
            type=int,
            help="burials before a transaction counts as confirmed (default: 3)",
        ),
        ExperimentOption(
            flag="--mean-fee",
            dest="mean_fee_satoshi",
            type=float,
            help="mean of the exponential per-tx fee draw, satoshi (default: 250)",
        ),
        ExperimentOption(
            flag="--funding-outputs",
            dest="funding_outputs",
            type=int,
            help="confirmed outputs funded per node before load starts (default: 8)",
        ),
    ),
    report=lambda results: build_report(results),
    summarize=lambda results: {key: cell.summary() for key, cell in results.items()},
    collect_samples=collect_samples,
    verdicts={
        "confirms_at_every_rate": confirms_at_every_rate,
        "bcbpt_advantage_under_load": bcbpt_advantage_under_load,
        "bcbpt_saturates_no_earlier": saturation_no_earlier_for_bcbpt,
    },
    exit_verdict="confirms_at_every_rate",
)
def run_load_frontier(
    config: Optional[ExperimentConfig] = None,
    *,
    rates: Sequence[float] = DEFAULT_RATES,
    protocols: Sequence[str] = LOAD_PROTOCOLS,
    profile_kind: str = "constant",
    horizon_s: float = DEFAULT_HORIZON_S,
    block_interval_s: float = DEFAULT_BLOCK_INTERVAL_S,
    max_block_bytes: int = DEFAULT_MAX_BLOCK_BYTES,
    mempool_max_size: int = DEFAULT_MEMPOOL_MAX_SIZE,
    confirmation_depth: int = DEFAULT_CONFIRMATION_DEPTH,
    mean_fee_satoshi: float = DEFAULT_MEAN_FEE_SATOSHI,
    funding_outputs: int = DEFAULT_FUNDING_OUTPUTS,
) -> dict[str, LoadCellResult]:
    """Sweep offered load across policies and pool results per cell.

    Args:
        config: shared experiment configuration.
        rates: offered aggregate transaction rates (tx/s) to sweep.
        protocols: policy names to compare.
        profile_kind: traffic schedule shape (:data:`PROFILE_KINDS`).
        horizon_s: simulated seconds of sustained load per cell.
        block_interval_s: network-wide mean block interval.
        max_block_bytes: block size cap in bytes.
        mempool_max_size: per-node mempool capacity.
        confirmation_depth: burials before "confirmed".
        mean_fee_satoshi: mean of the per-transaction fee draw.
        funding_outputs: confirmed outputs funded per node up front.

    Returns:
        ``"<protocol>@<rate>tps"`` -> pooled :class:`LoadCellResult`.
    """
    cfg = config if config is not None else ExperimentConfig()
    if not rates:
        raise ValueError("at least one offered rate is required")
    if any(rate <= 0 for rate in rates):
        raise ValueError("offered rates must be positive")
    if profile_kind not in PROFILE_KINDS:
        raise ValueError(
            f"unknown profile kind {profile_kind!r}; expected one of {PROFILE_KINDS}"
        )
    if horizon_s <= 0:
        raise ValueError("horizon_s must be positive")
    if block_interval_s <= 0:
        raise ValueError("block_interval_s must be positive")
    if max_block_bytes <= 0:
        raise ValueError("max_block_bytes must be positive")
    if mempool_max_size <= 0:
        raise ValueError("mempool_max_size must be positive")
    if confirmation_depth < 1:
        raise ValueError("confirmation_depth must be at least 1")
    if mean_fee_satoshi < 0:
        raise ValueError("mean_fee_satoshi cannot be negative")
    if funding_outputs < 1:
        raise ValueError("funding_outputs must be at least 1")

    points = [(protocol, float(rate)) for protocol in protocols for rate in rates]

    def make_job(point: tuple[str, float], seed: int) -> LoadJob:
        protocol, offered_tps = point
        return LoadJob(
            protocol=protocol,
            offered_tps=offered_tps,
            profile_kind=profile_kind,
            seed=seed,
            horizon_s=horizon_s,
            block_interval_s=block_interval_s,
            max_block_bytes=max_block_bytes,
            mempool_max_size=mempool_max_size,
            confirmation_depth=confirmation_depth,
            mean_fee_satoshi=mean_fee_satoshi,
            funding_outputs=funding_outputs,
            threshold_s=cfg.latency_threshold_s,
            config=cfg,
        )

    grid = run_seed_grid(points, make_job, run_load_job, cfg)

    # Merge in submission order — identical aggregates for every worker count.
    results: dict[str, LoadCellResult] = {}
    for (protocol, offered_tps), seed_results in grid:
        key = cell_label(protocol, offered_tps)
        cell = results.get(key)
        if cell is None:
            cell = results[key] = LoadCellResult(protocol=protocol, offered_tps=offered_tps)
        for seed, job_result in zip(cfg.seeds, seed_results):
            cell.seeds.append(seed)
            cell.txs_generated += job_result.txs_generated
            cell.generation_failures += job_result.generation_failures
            cell.txs_confirmed += job_result.txs_confirmed
            cell.pending_at_end += job_result.pending_at_end
            cell.p50_by_seed[seed] = job_result.confirmation_p50_s
            cell.p99_by_seed[seed] = job_result.confirmation_p99_s
            cell.mean_by_seed[seed] = job_result.confirmation_mean_s
            cell.max_latency_s = max(cell.max_latency_s, job_result.confirmation_max_s)
            cell.generated_tps_values.append(job_result.generated_tps)
            cell.confirmed_tps_values.append(job_result.confirmed_tps)
            cell.backlog_mid_values.append(job_result.backlog_mid)
            cell.backlog_final_values.append(job_result.backlog_final)
            cell.backlog_curves[seed] = job_result.backlog_curve
            cell.blocks_mined += job_result.blocks_mined
            cell.full_blocks_mined += job_result.full_blocks_mined
            cell.total_fees_collected += job_result.total_fees_collected
            cell.fee_evictions += job_result.fee_evictions
            cell.capacity_drops += job_result.capacity_drops
            cell.conflict_evictions += job_result.conflict_evictions
            cell.events += job_result.events
    return results


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Deprecated ``python -m repro.experiments.load_frontier`` entry point."""
    return deprecated_main("load_frontier", argv)


if __name__ == "__main__":
    raise SystemExit(main())
