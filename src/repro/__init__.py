"""repro: reproduction of the BCBPT proximity-aware Bitcoin clustering protocol.

This package reproduces "Proximity Awareness Approach to Enhance Propagation
Delay on the Bitcoin Peer-to-Peer Network" (Fadhil/Sallal, Owen, Adda —
ICDCS 2017): a discrete-event Bitcoin P2P simulator, the BCBPT ping-latency
clustering protocol, the LBC geographic baseline, the vanilla Bitcoin baseline,
the paper's measuring-node methodology, experiment drivers that regenerate its
figures, and an analysis plane (:mod:`repro.analysis`, CLI ``repro report``)
that re-renders Fig. 3/4 and percentile tables from any stored run's raw
samples without re-simulation.  See ``docs/ARCHITECTURE.md`` for the layer
map and the determinism contract.

Quickstart::

    from repro.workloads import NetworkParameters, build_scenario
    from repro.experiments import PropagationExperiment

    scenario = build_scenario("bcbpt", NetworkParameters(node_count=150, seed=7),
                              latency_threshold_s=0.025)
    result = PropagationExperiment(scenario).run(repetitions=20)
    print(result.delays.summary())
"""

from repro.version import __version__

__all__ = ["__version__"]
