"""The unspent transaction output (UTXO) ledger.

Section III of the paper: the balance of an account is the sum of all unspent
outputs owned by that account, and a transaction is valid only if the coins it
spends have not been spent before.  The UTXO set is the data structure every
node checks on receiving a new transaction ("a peer checks whether the Bitcoin
has been previously spent").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.protocol.transaction import Transaction, TxOutput


@dataclass(frozen=True)
class UtxoEntry:
    """One unspent output: where it came from and what it is worth."""

    txid: str
    index: int
    value: int
    address: str
    confirmed_in_block: Optional[str] = None

    @property
    def outpoint(self) -> tuple[str, int]:
        """The ``(txid, index)`` key of this output."""
        return (self.txid, self.index)


class UtxoSet:
    """Mutable set of unspent outputs, indexed by outpoint and by address."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, int], UtxoEntry] = {}
        self._by_address: dict[str, set[tuple[str, int]]] = {}

    # ---------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, outpoint: tuple[str, int]) -> bool:
        return outpoint in self._entries

    def get(self, outpoint: tuple[str, int]) -> Optional[UtxoEntry]:
        """The entry for an outpoint, or None if it is spent/unknown."""
        return self._entries.get(outpoint)

    def entries(self) -> Iterator[UtxoEntry]:
        """Iterate over all unspent entries."""
        return iter(self._entries.values())

    def balance(self, address: str) -> int:
        """Total unspent value held by an address."""
        outpoints = self._by_address.get(address, set())
        return sum(self._entries[op].value for op in outpoints)

    def spendable_by(self, address: str) -> list[UtxoEntry]:
        """All unspent entries owned by an address, ordered by outpoint."""
        outpoints = self._by_address.get(address, set())
        return sorted((self._entries[op] for op in outpoints), key=lambda e: e.outpoint)

    def total_value(self) -> int:
        """Sum of all unspent values in the ledger."""
        return sum(entry.value for entry in self._entries.values())

    # -------------------------------------------------------------- mutation
    def add(self, entry: UtxoEntry) -> None:
        """Add an unspent output.

        Raises:
            ValueError: if the outpoint already exists.
        """
        if entry.outpoint in self._entries:
            raise ValueError(f"outpoint {entry.outpoint} is already unspent")
        self._entries[entry.outpoint] = entry
        self._by_address.setdefault(entry.address, set()).add(entry.outpoint)

    def remove(self, outpoint: tuple[str, int]) -> UtxoEntry:
        """Spend (remove) an outpoint.

        Raises:
            KeyError: if the outpoint is not unspent.
        """
        if outpoint not in self._entries:
            raise KeyError(f"outpoint {outpoint} is not in the UTXO set")
        entry = self._entries.pop(outpoint)
        owners = self._by_address.get(entry.address)
        if owners is not None:
            owners.discard(outpoint)
            if not owners:
                del self._by_address[entry.address]
        return entry

    def apply_transaction(self, tx: Transaction, *, block_hash: Optional[str] = None) -> None:
        """Apply a transaction: spend its inputs, add its outputs.

        The caller is responsible for having validated the transaction first
        (see :class:`~repro.protocol.validation.TransactionValidator`); this
        method still refuses to spend missing outpoints to protect ledger
        integrity.
        """
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                self.remove(tx_input.outpoint)
        for index, output in enumerate(tx.outputs):
            self.add(
                UtxoEntry(
                    txid=tx.txid,
                    index=index,
                    value=output.value,
                    address=output.address,
                    confirmed_in_block=block_hash,
                )
            )

    def can_apply(self, tx: Transaction) -> bool:
        """Whether every input of ``tx`` is currently unspent."""
        if tx.is_coinbase:
            return True
        return all(tx_input.outpoint in self._entries for tx_input in tx.inputs)

    def copy(self) -> "UtxoSet":
        """Deep-enough copy for building candidate chain states."""
        clone = UtxoSet()
        clone._entries = dict(self._entries)
        clone._by_address = {address: set(ops) for address, ops in self._by_address.items()}
        return clone

    @staticmethod
    def from_transactions(transactions: Iterable[Transaction]) -> "UtxoSet":
        """Build a UTXO set by applying transactions in order."""
        utxo = UtxoSet()
        for tx in transactions:
            utxo.apply_transaction(tx)
        return utxo
