"""Blocks and block headers.

Every block links to its predecessor by hash (Section III of the paper); the
genesis block is the only block with no predecessor.  Proof-of-work is
simplified to a difficulty target on the numeric value of the header hash —
enough to make mining a stochastic race without burning CPU in the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.protocol.crypto import double_sha256_hex, sha256_hex
from repro.protocol.transaction import Transaction

#: Block reward in satoshi (12.5 BTC, the 2016-2020 subsidy era).
BLOCK_REWARD_SATOSHI = 1_250_000_000

#: Hash value space used by the simplified proof-of-work check.
HASH_SPACE = 2 ** 256


@dataclass(frozen=True)
class BlockHeader:
    """Header fields that determine a block's hash."""

    previous_hash: str
    merkle_root: str
    timestamp: float
    nonce: int
    miner_id: int = -1

    @property
    def block_hash(self) -> str:
        """Double SHA-256 of the serialized header (computed once, then cached)."""
        cached = getattr(self, "_block_hash", None)
        if cached is None:
            body = (
                f"{self.previous_hash}|{self.merkle_root}|{self.timestamp}|"
                f"{self.nonce}|{self.miner_id}"
            )
            cached = double_sha256_hex(body)
            object.__setattr__(self, "_block_hash", cached)
        return cached

    def meets_target(self, difficulty_target: int) -> bool:
        """Simplified proof-of-work check: hash value below the target."""
        return int(self.block_hash, 16) < difficulty_target


def merkle_root(transactions: Sequence[Transaction]) -> str:
    """Merkle root over transaction ids (pairwise SHA-256 reduction)."""
    if not transactions:
        return sha256_hex(b"empty")
    level = [tx.txid for tx in transactions]
    while len(level) > 1:
        if len(level) % 2 == 1:
            level.append(level[-1])
        level = [sha256_hex(level[i] + level[i + 1]) for i in range(0, len(level), 2)]
    return level[0]


@dataclass(frozen=True)
class Block:
    """A block: a header plus the transactions it confirms."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]
    height: int = 0

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError(f"block height cannot be negative, got {self.height}")
        if self.height > 0 and not self.transactions:
            raise ValueError("a non-genesis block must contain at least a coinbase transaction")

    @property
    def block_hash(self) -> str:
        """The block's hash (from its header)."""
        return self.header.block_hash

    @property
    def previous_hash(self) -> str:
        """Hash of the predecessor block."""
        return self.header.previous_hash

    @property
    def is_genesis(self) -> bool:
        """True for the unique block with no predecessor."""
        return self.header.previous_hash == ""

    @property
    def size_bytes(self) -> int:
        """Approximate serialized size (80-byte header + transactions)."""
        return 80 + sum(tx.size_bytes for tx in self.transactions)

    @property
    def txids(self) -> frozenset[str]:
        """Ids of all transactions confirmed by this block (cached)."""
        cached = getattr(self, "_txids", None)
        if cached is None:
            cached = frozenset(tx.txid for tx in self.transactions)
            object.__setattr__(self, "_txids", cached)
        return cached

    def contains(self, txid: str) -> bool:
        """Whether the block confirms the given transaction id."""
        return txid in self.txids

    @staticmethod
    def genesis(timestamp: float = 0.0) -> "Block":
        """The genesis block shared by every node in a simulation."""
        header = BlockHeader(
            previous_hash="",
            merkle_root=merkle_root(()),
            timestamp=timestamp,
            nonce=0,
            miner_id=-1,
        )
        return Block(header=header, transactions=(), height=0)

    @staticmethod
    def create(
        previous: "Block",
        transactions: Sequence[Transaction],
        *,
        timestamp: float,
        nonce: int,
        miner_id: int,
    ) -> "Block":
        """Assemble a block on top of ``previous``."""
        header = BlockHeader(
            previous_hash=previous.block_hash,
            merkle_root=merkle_root(transactions),
            timestamp=timestamp,
            nonce=nonce,
            miner_id=miner_id,
        )
        return Block(header=header, transactions=tuple(transactions), height=previous.height + 1)
