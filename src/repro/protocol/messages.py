"""The P2P message vocabulary.

These are the messages exchanged between simulated peers.  The standard
Bitcoin messages follow Fig. 1 of the paper (INV announcing a transaction,
GETDATA requesting it, TX delivering it) plus the handshake, address gossip
and ping keep-alive.  Two extra messages implement the clustering protocols'
control plane: ``JOIN`` / ``JOIN_ACCEPT`` (a node asking the closest
discovered node to admit it to its cluster, Section IV.B) and
``CLUSTER_MEMBERS`` (the admitting node returning the list of IPs in its
cluster so the joiner can connect to them).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.net.message import BLOCK_HEADER_BYTES
from repro.protocol.block import Block, BlockHeader
from repro.protocol.transaction import Transaction

_message_counter = itertools.count()

#: Bytes of a compact-block short transaction id on the wire (BIP 152 uses 6).
SHORT_ID_BYTES = 6

#: Hex characters of a short id (two per byte).
SHORT_ID_HEX_CHARS = SHORT_ID_BYTES * 2


def short_txid(txid: str) -> str:
    """The compact-relay short id of a transaction id (txid prefix).

    Real compact blocks salt short ids with SipHash per announcement; the
    simulation's txids are already uniform SHA-256 strings, so a plain prefix
    gives the same collision behaviour without the keying machinery.
    """
    return txid[:SHORT_ID_HEX_CHARS]


class InventoryType(enum.Enum):
    """Types of objects announced in INV / requested in GETDATA."""

    TRANSACTION = "tx"
    BLOCK = "block"


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages.

    Attributes:
        sender: node id of the sending peer.
        message_id: unique id used for tracing and de-duplication in tests.
    """

    sender: int
    message_id: int = field(default_factory=lambda: next(_message_counter), compare=False)

    #: Bitcoin wire command name; overridden by each concrete message.
    command: str = field(default="", init=False, repr=False)

    def wire_payload(self) -> Optional[object]:
        """Payload descriptor handed to :func:`repro.net.message.message_size_bytes`."""
        return None


@dataclass(frozen=True)
class VersionMessage(Message):
    """Handshake: advertises protocol version and listening address."""

    protocol_version: int = 70015
    user_agent: str = "/repro:1.0/"
    command: str = field(default="version", init=False, repr=False)


@dataclass(frozen=True)
class VerackMessage(Message):
    """Handshake acknowledgement."""

    command: str = field(default="verack", init=False, repr=False)


@dataclass(frozen=True)
class PingMessage(Message):
    """Keep-alive / latency probe."""

    nonce: int = 0
    command: str = field(default="ping", init=False, repr=False)


@dataclass(frozen=True)
class PongMessage(Message):
    """Reply to a ping, echoing its nonce."""

    nonce: int = 0
    command: str = field(default="pong", init=False, repr=False)


@dataclass(frozen=True)
class GetAddrMessage(Message):
    """Request for known peer addresses."""

    command: str = field(default="getaddr", init=False, repr=False)


@dataclass(frozen=True)
class AddrMessage(Message):
    """Gossip of known peer addresses (node ids in the simulation)."""

    addresses: tuple[int, ...] = ()
    command: str = field(default="addr", init=False, repr=False)

    def wire_payload(self) -> int:
        return len(self.addresses)


@dataclass(frozen=True)
class InvMessage(Message):
    """Announcement of available objects by hash (Fig. 1, step 1)."""

    inventory_type: InventoryType = InventoryType.TRANSACTION
    hashes: tuple[str, ...] = ()
    command: str = field(default="inv", init=False, repr=False)

    def wire_payload(self) -> int:
        return len(self.hashes)


@dataclass(frozen=True)
class GetDataMessage(Message):
    """Request for the full data of announced objects (Fig. 1, step 2)."""

    inventory_type: InventoryType = InventoryType.TRANSACTION
    hashes: tuple[str, ...] = ()
    command: str = field(default="getdata", init=False, repr=False)

    def wire_payload(self) -> int:
        return len(self.hashes)


@dataclass(frozen=True)
class TxMessage(Message):
    """Delivery of a full transaction (Fig. 1, step 3)."""

    transaction: Optional[Transaction] = None
    command: str = field(default="tx", init=False, repr=False)

    def wire_payload(self) -> Optional[int]:
        return self.transaction.size_bytes if self.transaction is not None else None


@dataclass(frozen=True)
class BlockMessage(Message):
    """Delivery of a full block."""

    block: Optional[Block] = None
    command: str = field(default="block", init=False, repr=False)

    def wire_payload(self) -> Optional[int]:
        return self.block.size_bytes if self.block is not None else None


@dataclass(frozen=True)
class CmpctBlockMessage(Message):
    """Compact-block announcement: header, short transaction ids, coinbase.

    The BIP 152-style relay optimisation: instead of announcing a block by
    hash (INV) and shipping the full payload on request, the relayer pushes
    the 80-byte header plus one :data:`SHORT_ID_HEX_CHARS`-character short id
    per confirmed transaction.  The receiver reconstructs the block from its
    own mempool and only requests the transactions it is missing with
    :class:`GetBlockTxnMessage`.  The coinbase can never be in anyone's
    mempool, so it is always prefilled.
    """

    header: Optional["BlockHeader"] = None
    height: int = 0
    short_ids: tuple[str, ...] = ()
    coinbase: Optional[Transaction] = None
    command: str = field(default="cmpctblock", init=False, repr=False)

    def wire_payload(self) -> int:
        coinbase_bytes = self.coinbase.size_bytes if self.coinbase is not None else 0
        return BLOCK_HEADER_BYTES + len(self.short_ids) * SHORT_ID_BYTES + coinbase_bytes

    @property
    def block_hash(self) -> str:
        """Hash of the announced block (from its header)."""
        if self.header is None:
            raise ValueError("compact block message carries no header")
        return self.header.block_hash


@dataclass(frozen=True)
class GetBlockTxnMessage(Message):
    """Request for the transactions a compact block could not reconstruct."""

    block_hash: str = ""
    indexes: tuple[int, ...] = ()
    command: str = field(default="getblocktxn", init=False, repr=False)

    def wire_payload(self) -> int:
        return len(self.indexes)


@dataclass(frozen=True)
class BlockTxnMessage(Message):
    """Reply to :class:`GetBlockTxnMessage`: the requested transactions."""

    block_hash: str = ""
    indexes: tuple[int, ...] = ()
    transactions: tuple[Transaction, ...] = ()
    command: str = field(default="blocktxn", init=False, repr=False)

    def wire_payload(self) -> int:
        return sum(tx.size_bytes for tx in self.transactions)


@dataclass(frozen=True)
class GetHeadersMessage(Message):
    """Request for the headers extending the requester's best chain.

    ``locator`` is a block locator: best-chain hashes starting at the tip with
    exponentially growing gaps, ending at genesis.  The responder finds the
    highest locator entry on its own best chain and replies with the headers
    that follow it (:class:`HeadersMessage`), so one round-trip discovers the
    whole gap however far behind the requester is.  ``stop_hash`` optionally
    truncates the reply at a specific block (empty means "as many as fit").
    """

    locator: tuple[str, ...] = ()
    stop_hash: str = ""
    command: str = field(default="getheaders", init=False, repr=False)

    def wire_payload(self) -> int:
        return len(self.locator)


@dataclass(frozen=True)
class HeadersMessage(Message):
    """Delivery of block headers (reply to GETHEADERS, or a BIP 130-style
    headers-first block announcement).

    ``heights`` carries the chain height of each header; the real protocol
    derives heights from the parent linkage, so the wire size stays 81 bytes
    per entry (80-byte header plus the empty tx-count byte).
    """

    headers: tuple[BlockHeader, ...] = ()
    heights: tuple[int, ...] = ()
    command: str = field(default="headers", init=False, repr=False)

    def wire_payload(self) -> int:
        return len(self.headers)


@dataclass(frozen=True)
class JoinMessage(Message):
    """Cluster-join request sent to the closest discovered node (Section IV.B)."""

    measured_rtt_s: float = 0.0
    command: str = field(default="join", init=False, repr=False)


@dataclass(frozen=True)
class JoinAcceptMessage(Message):
    """Positive response to a JOIN request."""

    cluster_id: int = -1
    command: str = field(default="join_accept", init=False, repr=False)


@dataclass(frozen=True)
class ClusterMembersMessage(Message):
    """List of node ids belonging to the responder's cluster (Section IV.B)."""

    cluster_id: int = -1
    members: tuple[int, ...] = ()
    command: str = field(default="cluster_members", init=False, repr=False)

    def wire_payload(self) -> int:
        return len(self.members)
