"""Per-node pool of unconfirmed transactions.

A node's mempool holds transactions it has verified but that are not yet
confirmed on its best chain.  It also tracks which outpoints those pending
transactions spend so that conflicting (double-spending) transactions can be
detected at admission time — the "first seen" rule Bitcoin nodes apply and the
rule the double-spend experiment relies on.

Since the traffic plane landed, the pool is also a fee market: every admitted
transaction carries a fee, and when the pool is full an incoming transaction
whose feerate strictly beats the cheapest pending one evicts it (lowest
feerate first) instead of being dropped blindly.  With all-zero fees the pool
behaves exactly like the pre-fee code — admission order, block selection and
the reject-at-capacity path are unchanged — which is what keeps the fig3
golden fingerprints byte-identical when traffic is off.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.protocol.transaction import Transaction


class Mempool:
    """Set of verified, unconfirmed transactions with conflict tracking and
    fee-priority eviction."""

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError(f"max_size must be positive or None, got {max_size}")
        self.max_size = max_size
        self._transactions: dict[str, Transaction] = {}
        self._spent_outpoints: dict[tuple[str, int], str] = {}
        self._arrival_times: dict[str, float] = {}
        self._fees: dict[str, int] = {}
        #: Transactions evicted by the most recent :meth:`add` call (empty
        #: unless that call made room by fee-priority eviction).  The node
        #: layer uses this to forget the evicted txids so peers can re-offer
        #: them later.
        self.last_evicted: tuple[Transaction, ...] = ()

    # ---------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, txid: str) -> bool:
        return txid in self._transactions

    def get(self, txid: str) -> Optional[Transaction]:
        """The transaction with this id, or None."""
        return self._transactions.get(txid)

    def transactions(self) -> Iterator[Transaction]:
        """Iterate over pending transactions in arrival order."""
        for txid in sorted(self._arrival_times, key=self._arrival_times.get):
            yield self._transactions[txid]

    def arrival_time(self, txid: str) -> Optional[float]:
        """When the transaction was admitted (None if unknown)."""
        return self._arrival_times.get(txid)

    def fee(self, txid: str) -> Optional[int]:
        """The fee (satoshi) the transaction was admitted with (None if unknown)."""
        return self._fees.get(txid)

    def feerate(self, txid: str) -> Optional[float]:
        """Fee per byte of the pending transaction (None if unknown)."""
        tx = self._transactions.get(txid)
        if tx is None:
            return None
        return self._fees[txid] / tx.size_bytes

    def min_feerate(self) -> Optional[float]:
        """The lowest feerate currently pending (None if the pool is empty)."""
        victim = self._eviction_candidate()
        return None if victim is None else self.feerate(victim)

    def is_full(self) -> bool:
        """Whether the pool has reached its size limit."""
        return self.max_size is not None and len(self._transactions) >= self.max_size

    # -------------------------------------------------------------- conflict
    def conflicting_txid(self, tx: Transaction) -> Optional[str]:
        """Id of a pending transaction that spends one of ``tx``'s inputs."""
        for tx_input in tx.inputs:
            existing = self._spent_outpoints.get(tx_input.outpoint)
            if existing is not None and existing != tx.txid:
                return existing
        return None

    def conflicts(self, tx: Transaction) -> bool:
        """Whether admitting ``tx`` would double-spend a pending transaction."""
        return self.conflicting_txid(tx) is not None

    # -------------------------------------------------------------- mutation
    def add(self, tx: Transaction, *, arrival_time: float = 0.0, fee: int = 0) -> bool:
        """Admit a transaction.

        When the pool is full, the incoming transaction is admitted only if
        its feerate *strictly* beats the cheapest pending one, which is then
        evicted (exposed via :attr:`last_evicted`).  A zero-fee transaction
        can therefore never evict anything, preserving the pre-fee
        reject-at-capacity behaviour for fee-less workloads.

        Returns:
            True if the transaction was added; False if it was already present,
            conflicts with a pending transaction (first-seen wins), or the pool
            is full and the fee does not buy a slot.
        """
        self.last_evicted = ()
        if tx.txid in self._transactions:
            return False
        if self.conflicts(tx):
            return False
        if self.is_full():
            victim = self._eviction_candidate()
            if victim is None or fee / tx.size_bytes <= self.feerate(victim):
                return False
            evicted = [self.remove(victim)]
            while self.is_full():  # max_size >= 1, so this terminates
                evicted.append(self.remove(self._eviction_candidate()))
            self.last_evicted = tuple(t for t in evicted if t is not None)
        self._transactions[tx.txid] = tx
        self._arrival_times[tx.txid] = arrival_time
        self._fees[tx.txid] = int(fee)
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                self._spent_outpoints[tx_input.outpoint] = tx.txid
        return True

    def _eviction_candidate(self) -> Optional[str]:
        """The txid that fee-priority eviction would drop next.

        Lowest feerate first; ties broken by newest arrival (oldest-first
        fairness among equals), then txid — fully deterministic.
        """
        if not self._transactions:
            return None
        return min(
            self._transactions,
            key=lambda txid: (
                self._fees[txid] / self._transactions[txid].size_bytes,
                -self._arrival_times[txid],
                txid,
            ),
        )

    def remove(self, txid: str) -> Optional[Transaction]:
        """Remove a transaction (e.g. once confirmed); returns it if present."""
        tx = self._transactions.pop(txid, None)
        if tx is None:
            return None
        self._arrival_times.pop(txid, None)
        self._fees.pop(txid, None)
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                if self._spent_outpoints.get(tx_input.outpoint) == txid:
                    del self._spent_outpoints[tx_input.outpoint]
        return tx

    def remove_confirmed(self, txids: set[str]) -> int:
        """Drop every pending transaction whose id is in ``txids``.

        Returns:
            Number of transactions removed.
        """
        removed = 0
        for txid in list(self._transactions):
            if txid in txids:
                self.remove(txid)
                removed += 1
        return removed

    def remove_conflicts(self, spent_outpoints) -> list[Transaction]:
        """Drop pending transactions that spend any of these outpoints.

        Called after a block is applied to the best chain: a pending
        transaction whose input was just consumed by a *confirmed* spend can
        never be mined, and left in the pool it would be packed into block
        templates (and invalidate them) forever.

        Returns:
            The removed transactions.
        """
        removed = []
        for outpoint in spent_outpoints:
            txid = self._spent_outpoints.get(outpoint)
            if txid is not None:
                tx = self.remove(txid)
                if tx is not None:
                    removed.append(tx)
        return removed

    def remove_unspendable(self, utxo) -> list[Transaction]:
        """Drop pending transactions no longer spendable against ``utxo``.

        The reorg counterpart of :meth:`remove_conflicts`: after the UTXO
        view is rebuilt for a new best chain, every input must be either an
        unspent output on that chain or the output of another pending
        transaction.  Removal iterates to a fixpoint so a dead parent takes
        its in-pool descendants with it.

        Returns:
            The removed transactions.
        """
        removed = []
        changed = True
        while changed:
            changed = False
            for txid in list(self._transactions):
                tx = self._transactions[txid]
                if tx.is_coinbase:
                    continue
                dead = any(
                    tx_input.outpoint not in utxo
                    and tx_input.prev_txid not in self._transactions
                    for tx_input in tx.inputs
                )
                if dead:
                    self.remove(txid)
                    removed.append(tx)
                    changed = True
        return removed

    def select_for_block(
        self, max_count: int, *, max_bytes: Optional[int] = None
    ) -> list[Transaction]:
        """Select up to ``max_count`` transactions for mining.

        Highest feerate first, ties broken oldest-first — which reduces to
        the historical oldest-first order when every fee is zero.  With a
        ``max_bytes`` budget the selection greedily packs the priority order,
        skipping any transaction that would overflow the remaining budget (so
        blocks fill toward the cap instead of stopping at the first big tx).
        """
        if max_count <= 0:
            return []
        ordered = sorted(
            self._transactions.values(),
            key=lambda tx: (
                -(self._fees[tx.txid] / tx.size_bytes),
                self._arrival_times[tx.txid],
            ),
        )
        if max_bytes is None:
            return ordered[:max_count]
        selected: list[Transaction] = []
        used = 0
        for tx in ordered:
            if len(selected) >= max_count:
                break
            if used + tx.size_bytes > max_bytes:
                continue
            selected.append(tx)
            used += tx.size_bytes
        return selected

    def clear(self) -> None:
        """Empty the pool."""
        self._transactions.clear()
        self._spent_outpoints.clear()
        self._arrival_times.clear()
        self._fees.clear()
        self.last_evicted = ()
