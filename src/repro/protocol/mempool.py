"""Per-node pool of unconfirmed transactions.

A node's mempool holds transactions it has verified but that are not yet
confirmed on its best chain.  It also tracks which outpoints those pending
transactions spend so that conflicting (double-spending) transactions can be
detected at admission time — the "first seen" rule Bitcoin nodes apply and the
rule the double-spend experiment relies on.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.protocol.transaction import Transaction


class Mempool:
    """Set of verified, unconfirmed transactions with conflict tracking."""

    def __init__(self, max_size: Optional[int] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError(f"max_size must be positive or None, got {max_size}")
        self.max_size = max_size
        self._transactions: dict[str, Transaction] = {}
        self._spent_outpoints: dict[tuple[str, int], str] = {}
        self._arrival_times: dict[str, float] = {}

    # ---------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, txid: str) -> bool:
        return txid in self._transactions

    def get(self, txid: str) -> Optional[Transaction]:
        """The transaction with this id, or None."""
        return self._transactions.get(txid)

    def transactions(self) -> Iterator[Transaction]:
        """Iterate over pending transactions in arrival order."""
        for txid in sorted(self._arrival_times, key=self._arrival_times.get):
            yield self._transactions[txid]

    def arrival_time(self, txid: str) -> Optional[float]:
        """When the transaction was admitted (None if unknown)."""
        return self._arrival_times.get(txid)

    def is_full(self) -> bool:
        """Whether the pool has reached its size limit."""
        return self.max_size is not None and len(self._transactions) >= self.max_size

    # -------------------------------------------------------------- conflict
    def conflicting_txid(self, tx: Transaction) -> Optional[str]:
        """Id of a pending transaction that spends one of ``tx``'s inputs."""
        for tx_input in tx.inputs:
            existing = self._spent_outpoints.get(tx_input.outpoint)
            if existing is not None and existing != tx.txid:
                return existing
        return None

    def conflicts(self, tx: Transaction) -> bool:
        """Whether admitting ``tx`` would double-spend a pending transaction."""
        return self.conflicting_txid(tx) is not None

    # -------------------------------------------------------------- mutation
    def add(self, tx: Transaction, *, arrival_time: float = 0.0) -> bool:
        """Admit a transaction.

        Returns:
            True if the transaction was added; False if it was already present,
            conflicts with a pending transaction (first-seen wins), or the pool
            is full.
        """
        if tx.txid in self._transactions:
            return False
        if self.is_full():
            return False
        if self.conflicts(tx):
            return False
        self._transactions[tx.txid] = tx
        self._arrival_times[tx.txid] = arrival_time
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                self._spent_outpoints[tx_input.outpoint] = tx.txid
        return True

    def remove(self, txid: str) -> Optional[Transaction]:
        """Remove a transaction (e.g. once confirmed); returns it if present."""
        tx = self._transactions.pop(txid, None)
        if tx is None:
            return None
        self._arrival_times.pop(txid, None)
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                if self._spent_outpoints.get(tx_input.outpoint) == txid:
                    del self._spent_outpoints[tx_input.outpoint]
        return tx

    def remove_confirmed(self, txids: set[str]) -> int:
        """Drop every pending transaction whose id is in ``txids``.

        Returns:
            Number of transactions removed.
        """
        removed = 0
        for txid in list(self._transactions):
            if txid in txids:
                self.remove(txid)
                removed += 1
        return removed

    def select_for_block(self, max_count: int) -> list[Transaction]:
        """Oldest-first selection of up to ``max_count`` transactions for mining."""
        if max_count <= 0:
            return []
        ordered = sorted(self._transactions.values(), key=lambda tx: self._arrival_times[tx.txid])
        return ordered[:max_count]

    def clear(self) -> None:
        """Empty the pool."""
        self._transactions.clear()
        self._spent_outpoints.clear()
        self._arrival_times.clear()
