"""A fork-capable blockchain.

The paper's motivation hinges on blockchain forks: when propagation is slow,
two blocks can be mined on the same parent, nodes disagree about the chain
tip, and a transaction can appear in two branches — the window a double-spend
attacker exploits.  The :class:`Blockchain` therefore stores the full block
tree, tracks every leaf ("branch"), and selects the best chain by height
(longest-chain rule) with first-seen tie-breaking, exactly like Bitcoin Core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.protocol.block import Block
from repro.protocol.transaction import Transaction
from repro.protocol.utxo import UtxoSet


@dataclass(frozen=True)
class ForkEvent:
    """Record of an observed fork: two blocks extending the same parent."""

    parent_hash: str
    first_block: str
    second_block: str
    height: int
    observed_at: float


class Blockchain:
    """Block tree with longest-chain selection.

    Args:
        genesis: the shared genesis block; every simulated node must be
            constructed with the same one so that chains are comparable.
    """

    def __init__(self, genesis: Optional[Block] = None) -> None:
        self._genesis = genesis if genesis is not None else Block.genesis()
        self._blocks: dict[str, Block] = {self._genesis.block_hash: self._genesis}
        self._children: dict[str, list[str]] = {self._genesis.block_hash: []}
        self._arrival_order: dict[str, int] = {self._genesis.block_hash: 0}
        self._arrival_counter = 1
        self._tip_hash = self._genesis.block_hash
        self._fork_events: list[ForkEvent] = []
        #: Lazily-built set of txids confirmed by the best chain; invalidated
        #: whenever the best chain changes.  ``contains_transaction`` is on
        #: the per-message hot path, so it must not walk the chain each call.
        self._best_chain_txids: Optional[set[str]] = None

    # ---------------------------------------------------------------- access
    @property
    def genesis(self) -> Block:
        """The genesis block."""
        return self._genesis

    @property
    def tip(self) -> Block:
        """The tip of the currently-best chain."""
        return self._blocks[self._tip_hash]

    @property
    def height(self) -> int:
        """Height of the best chain tip."""
        return self.tip.height

    @property
    def block_count(self) -> int:
        """Total number of blocks stored, across all branches."""
        return len(self._blocks)

    @property
    def fork_events(self) -> list[ForkEvent]:
        """Every fork observed (a parent receiving a second child)."""
        return list(self._fork_events)

    def has_block(self, block_hash: str) -> bool:
        """Whether the block is already stored."""
        return block_hash in self._blocks

    def get_block(self, block_hash: str) -> Block:
        """Fetch a stored block.

        Raises:
            KeyError: if the block is unknown.
        """
        return self._blocks[block_hash]

    # -------------------------------------------------------------- mutation
    def add_block(self, block: Block, *, observed_at: float = 0.0) -> bool:
        """Add a block to the tree.

        Returns:
            True if the best-chain tip changed as a result.

        Raises:
            ValueError: if the block's parent is unknown (orphan blocks are
                not buffered by this class; the node layer requests parents
                first) or its height is inconsistent with its parent.
        """
        if block.block_hash in self._blocks:
            return False
        parent_hash = block.previous_hash
        if parent_hash not in self._blocks:
            raise ValueError(
                f"cannot add block {block.block_hash[:12]}: unknown parent {parent_hash[:12]}"
            )
        parent = self._blocks[parent_hash]
        if block.height != parent.height + 1:
            raise ValueError(
                f"block height {block.height} does not follow parent height {parent.height}"
            )
        siblings = self._children[parent_hash]
        if siblings:
            self._fork_events.append(
                ForkEvent(
                    parent_hash=parent_hash,
                    first_block=siblings[0],
                    second_block=block.block_hash,
                    height=block.height,
                    observed_at=observed_at,
                )
            )
        self._blocks[block.block_hash] = block
        self._children[block.block_hash] = []
        self._children[parent_hash].append(block.block_hash)
        self._arrival_order[block.block_hash] = self._arrival_counter
        self._arrival_counter += 1
        return self._maybe_reorganize(block)

    def _maybe_reorganize(self, candidate: Block) -> bool:
        current = self.tip
        if candidate.height > current.height:
            if (
                candidate.previous_hash == current.block_hash
                and self._best_chain_txids is not None
            ):
                # Pure tip extension: the best chain grows by exactly this
                # block, so the confirmed-txid cache can grow with it instead
                # of being rebuilt from genesis (O(chain) per accepted block,
                # which dominates long sustained-load runs).
                self._best_chain_txids.update(candidate.txids)
            else:
                self._best_chain_txids = None
            self._tip_hash = candidate.block_hash
            return True
        # Equal height: keep the first-seen tip (Bitcoin's behaviour).
        return False

    # -------------------------------------------------------------- chains
    def chain_to(self, block_hash: str) -> list[Block]:
        """Blocks from genesis to ``block_hash`` inclusive, in height order."""
        chain: list[Block] = []
        cursor = self._blocks[block_hash]
        while True:
            chain.append(cursor)
            if cursor.is_genesis:
                break
            cursor = self._blocks[cursor.previous_hash]
        chain.reverse()
        return chain

    def best_chain(self) -> list[Block]:
        """Blocks on the currently-best chain, genesis first."""
        return self.chain_to(self._tip_hash)

    def leaves(self) -> list[Block]:
        """All branch tips (blocks with no children)."""
        return [self._blocks[h] for h, children in self._children.items() if not children]

    def branch_count(self) -> int:
        """Number of distinct branches in the block tree."""
        return len(self.leaves())

    def confirmations(self, txid: str) -> int:
        """Confirmation count of a transaction on the best chain (0 if absent)."""
        depth = 0
        for block in reversed(self.best_chain()):
            if block.contains(txid):
                return self.height - block.height + 1
            depth += 1
        return 0

    def contains_transaction(self, txid: str) -> bool:
        """Whether the best chain confirms the transaction."""
        if self._best_chain_txids is None:
            self._best_chain_txids = {
                tx.txid for block in self.best_chain() for tx in block.transactions
            }
        return txid in self._best_chain_txids

    def utxo_set(self) -> UtxoSet:
        """UTXO set implied by the best chain (recomputed from genesis)."""
        utxo = UtxoSet()
        for block in self.best_chain():
            for tx in block.transactions:
                utxo.apply_transaction(tx, block_hash=block.block_hash)
        return utxo

    def transactions_on_best_chain(self) -> Iterable[Transaction]:
        """Every transaction confirmed by the best chain, in order."""
        for block in self.best_chain():
            yield from block.transactions
