"""Transactions: inputs, outputs, identifiers and signing.

Section III of the paper: a transaction claims Bitcoins from previous
transaction outputs (its *inputs*) and reassigns them to destination addresses
(its *outputs*); the sum of outputs must not exceed the sum of inputs, and the
transaction is signed by the owner of the spent outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.protocol.crypto import KeyPair, double_sha256_hex, sign

#: Rough serialized byte cost of transaction parts; used for wire sizing.
TX_BASE_BYTES = 10
TX_INPUT_BYTES = 148
TX_OUTPUT_BYTES = 34


@dataclass(frozen=True)
class TxOutput:
    """A transaction output assigning ``value`` satoshi to ``address``."""

    value: int
    address: str

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"output value cannot be negative, got {self.value}")
        if not self.address:
            raise ValueError("output address cannot be empty")


@dataclass(frozen=True)
class TxInput:
    """A reference to a previous output being spent.

    Attributes:
        prev_txid: id of the transaction holding the output being spent.
        prev_index: index of that output within its transaction.
        public_key: public key of the spender (must hash to the output's
            address).
        signature: witness signature over the spending transaction body.
        private_key_hint: simulation-only witness material; see
            :mod:`repro.protocol.crypto`.
    """

    prev_txid: str
    prev_index: int
    public_key: str = ""
    signature: str = ""
    private_key_hint: str = ""

    def __post_init__(self) -> None:
        if self.prev_index < 0:
            raise ValueError(f"prev_index cannot be negative, got {self.prev_index}")
        if not self.prev_txid:
            raise ValueError("prev_txid cannot be empty")

    @property
    def outpoint(self) -> tuple[str, int]:
        """The ``(txid, index)`` pair identifying the spent output."""
        return (self.prev_txid, self.prev_index)


@dataclass(frozen=True)
class Transaction:
    """A Bitcoin transaction.

    The transaction id is the double SHA-256 of its canonical body (inputs'
    outpoints plus outputs), which means two transactions spending the same
    outputs to different destinations — a double-spend pair — get different
    ids, exactly the situation the paper's motivation section describes.
    """

    inputs: tuple[TxInput, ...]
    outputs: tuple[TxOutput, ...]
    created_at: float = 0.0
    is_coinbase: bool = False

    def __post_init__(self) -> None:
        if not self.outputs:
            raise ValueError("a transaction must have at least one output")
        if not self.is_coinbase and not self.inputs:
            raise ValueError("a non-coinbase transaction must have at least one input")
        # Inputs/outputs are immutable, so the body and id can be computed once.
        input_part = "|".join(f"{i.prev_txid}:{i.prev_index}" for i in self.inputs)
        output_part = "|".join(f"{o.address}:{o.value}" for o in self.outputs)
        coinbase_part = "coinbase" if self.is_coinbase else "normal"
        body = f"{coinbase_part}#{input_part}#{output_part}"
        object.__setattr__(self, "_body", body)
        object.__setattr__(self, "_txid", double_sha256_hex(body))

    # ------------------------------------------------------------------- ids
    def body(self) -> str:
        """Canonical serialisation of the signed portion of the transaction."""
        return self._body  # type: ignore[attr-defined]

    @property
    def txid(self) -> str:
        """Transaction id (double SHA-256 of the canonical body)."""
        return self._txid  # type: ignore[attr-defined]

    # ----------------------------------------------------------------- sizes
    @property
    def size_bytes(self) -> int:
        """Approximate serialized size used for wire-delay accounting."""
        return TX_BASE_BYTES + TX_INPUT_BYTES * len(self.inputs) + TX_OUTPUT_BYTES * len(self.outputs)

    # ---------------------------------------------------------------- values
    @property
    def total_output_value(self) -> int:
        """Sum of all output values in satoshi."""
        return sum(o.value for o in self.outputs)

    def spends(self, outpoint: tuple[str, int]) -> bool:
        """Whether this transaction spends the given ``(txid, index)``."""
        return any(i.outpoint == outpoint for i in self.inputs)

    def conflicts_with(self, other: "Transaction") -> bool:
        """True if the two transactions spend at least one common output."""
        mine = {i.outpoint for i in self.inputs}
        theirs = {i.outpoint for i in other.inputs}
        return bool(mine & theirs)

    # --------------------------------------------------------------- signing
    @staticmethod
    def create_signed(
        keypair: KeyPair,
        spendable: Sequence[tuple[str, int, int]],
        destinations: Sequence[tuple[str, int]],
        *,
        created_at: float = 0.0,
        change_address: Optional[str] = None,
        fee: int = 0,
    ) -> "Transaction":
        """Build and sign a transaction.

        Args:
            keypair: key owning every spent output.
            spendable: ``(prev_txid, prev_index, value)`` triples to spend.
            destinations: ``(address, value)`` pairs to pay.
            created_at: simulated creation time.
            change_address: where to send any excess input value; defaults to
                the sender's own address.
            fee: satoshi left unclaimed by the outputs (a miner fee, as in
                real Bitcoin: fee = inputs - outputs).  The fee comes out of
                the change output, so ``fee=0`` produces a byte-identical
                transaction to the pre-fee code path.

        Raises:
            ValueError: if the destinations plus fee exceed the spendable value.
        """
        if not spendable:
            raise ValueError("cannot create a transaction with no spendable outputs")
        if fee < 0:
            raise ValueError(f"fee cannot be negative, got {fee}")
        total_in = sum(value for _, _, value in spendable)
        total_out = sum(value for _, value in destinations)
        if total_out + fee > total_in:
            raise ValueError(
                f"outputs ({total_out}) plus fee ({fee}) exceed spendable inputs ({total_in})"
            )
        outputs = [TxOutput(value=value, address=address) for address, value in destinations]
        change = total_in - total_out - fee
        if change > 0:
            outputs.append(TxOutput(value=change, address=change_address or keypair.address))
        unsigned_inputs = tuple(
            TxInput(prev_txid=txid, prev_index=index) for txid, index, _ in spendable
        )
        draft = Transaction(
            inputs=unsigned_inputs,
            outputs=tuple(outputs),
            created_at=created_at,
        )
        signature = sign(keypair.private_key, draft.body())
        signed_inputs = tuple(
            TxInput(
                prev_txid=txid,
                prev_index=index,
                public_key=keypair.public_key,
                signature=signature,
                private_key_hint=keypair.private_key,
            )
            for txid, index, _ in spendable
        )
        return Transaction(
            inputs=signed_inputs,
            outputs=tuple(outputs),
            created_at=created_at,
        )

    @staticmethod
    def coinbase(address: str, value: int, *, created_at: float = 0.0, tag: str = "") -> "Transaction":
        """Create a coinbase transaction minting ``value`` satoshi to ``address``.

        The ``tag`` disambiguates coinbases paying the same address and value
        (like the real protocol's extra-nonce); it is folded into a synthetic
        input reference so the txid differs.
        """
        synthetic_input = TxInput(prev_txid=f"coinbase:{tag or address}", prev_index=0)
        return Transaction(
            inputs=(synthetic_input,),
            outputs=(TxOutput(value=value, address=address),),
            created_at=created_at,
            is_coinbase=True,
        )
