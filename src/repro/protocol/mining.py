"""Simplified proof-of-work mining.

The paper's experiments measure transaction propagation, not mining, but the
double-spend and fork analyses need blocks to be produced.  Mining is
modelled the way analytical Bitcoin papers model it: block discovery on the
whole network is a Poisson process with a configurable mean interval
(10 minutes in Bitcoin), and the miner that finds each block is drawn with
probability proportional to its hash-power share.  The winning miner
assembles a block from its own mempool, so a transaction that has not yet
propagated to the winner does not get confirmed — which is exactly the
coupling between propagation delay and double-spend risk the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.protocol.block import BLOCK_REWARD_SATOSHI, Block
from repro.protocol.mempool import Mempool
from repro.protocol.node import BitcoinNode
from repro.protocol.transaction import (
    TX_BASE_BYTES,
    TX_INPUT_BYTES,
    TX_OUTPUT_BYTES,
    Transaction,
)
from repro.sim.engine import Simulator
from repro.sim.process import Timeout

#: Bitcoin's target average block interval in seconds.
DEFAULT_BLOCK_INTERVAL_S = 600.0

#: Serialized bytes of a block header (matches ``Block.size_bytes``).
BLOCK_HEADER_BYTES = 80

#: Smallest possible transaction (one input, one output): if even this does
#: not fit in a template's remaining byte budget, the block is full.
MIN_TX_BYTES = TX_BASE_BYTES + TX_INPUT_BYTES + TX_OUTPUT_BYTES


@dataclass(frozen=True)
class BlockTemplate:
    """Transactions chosen for the next block, highest feerate first.

    Built from a miner's mempool by :meth:`build`: the selection greedily
    packs the fee-priority order into ``max_bytes`` (when given), so under
    sustained load blocks fill toward their cap and low-feerate transactions
    wait — the congestion behaviour the load-frontier experiment measures.
    With no byte cap and all-zero fees the template reduces to the historical
    oldest-first, count-capped selection.

    Attributes:
        transactions: the selected transactions (coinbase excluded).
        total_bytes: serialized bytes of the selected transactions.
        total_fees: satoshi the miner collects on top of the block reward.
        byte_budget: the byte budget the template was packed against (None
            when unlimited).
    """

    transactions: tuple[Transaction, ...]
    total_bytes: int
    total_fees: int
    byte_budget: Optional[int] = None

    @property
    def is_full(self) -> bool:
        """Whether even the smallest transaction could not be appended."""
        if self.byte_budget is None:
            return False
        return self.total_bytes + MIN_TX_BYTES > self.byte_budget

    @staticmethod
    def build(
        mempool: Mempool, max_count: int, *, max_bytes: Optional[int] = None
    ) -> "BlockTemplate":
        """Assemble a template from ``mempool``'s fee-priority order."""
        selected = mempool.select_for_block(max_count, max_bytes=max_bytes)
        return BlockTemplate(
            transactions=tuple(selected),
            total_bytes=sum(tx.size_bytes for tx in selected),
            total_fees=sum(mempool.fee(tx.txid) or 0 for tx in selected),
            byte_budget=max_bytes,
        )


@dataclass(frozen=True)
class MinerProfile:
    """A mining participant and its share of the total hash power."""

    node_id: int
    hash_power: float

    def __post_init__(self) -> None:
        if self.hash_power < 0:
            raise ValueError(f"hash power cannot be negative, got {self.hash_power}")


class MiningProcess:
    """Poisson block production across a set of miners.

    Args:
        simulator: the event engine.
        nodes: id -> node mapping for all miners (and any node that may win).
        miners: hash-power profiles; shares are normalised internally.
        rng: random stream for block intervals and winner selection.
        block_interval_s: network-wide mean time between blocks.
        max_block_transactions: cap on transactions per block.
        max_block_bytes: cap on a block's serialized size (header + coinbase
            + selected transactions), like Bitcoin's 1 MB limit.  None (the
            default) leaves blocks count-capped only, the historical
            behaviour.
        on_block_mined: optional callback ``(block, miner_id)`` fired after
            the winning miner accepts its own block (before propagation).
        on_block_found: optional callback ``(block, miner_id)`` fired the
            instant the block is assembled, *before* the winner's
            ``accept_block`` runs — i.e. before any announcement can leave
            the miner.  This is the selfish-mining hook: a withholding
            policy registers the hash here so the acceptance-time broadcast
            is already suppressed.  Honest experiments leave it None.
    """

    def __init__(
        self,
        simulator: Simulator,
        nodes: dict[int, BitcoinNode],
        miners: Sequence[MinerProfile],
        rng: np.random.Generator,
        *,
        block_interval_s: float = DEFAULT_BLOCK_INTERVAL_S,
        max_block_transactions: int = 2000,
        max_block_bytes: Optional[int] = None,
        on_block_mined: Optional[Callable[[Block, int], None]] = None,
        on_block_found: Optional[Callable[[Block, int], None]] = None,
    ) -> None:
        if not miners:
            raise ValueError("at least one miner is required")
        if block_interval_s <= 0:
            raise ValueError(f"block interval must be positive, got {block_interval_s}")
        if max_block_bytes is not None and max_block_bytes <= BLOCK_HEADER_BYTES:
            raise ValueError(
                f"max_block_bytes must exceed the {BLOCK_HEADER_BYTES}-byte header, "
                f"got {max_block_bytes}"
            )
        total_power = sum(m.hash_power for m in miners)
        if total_power <= 0:
            raise ValueError("total hash power must be positive")
        self._simulator = simulator
        self._nodes = nodes
        self._miners = list(miners)
        self._shares = np.array([m.hash_power / total_power for m in self._miners])
        self._rng = rng
        self.block_interval_s = float(block_interval_s)
        self.max_block_transactions = int(max_block_transactions)
        self.max_block_bytes = max_block_bytes
        self._on_block_mined = on_block_mined
        #: Pre-acceptance hook (see class docstring); public so the adversary
        #: plane can install a withholding policy after construction.
        self.on_block_found = on_block_found
        self.blocks_mined = 0
        #: Blocks whose template hit the byte cap (``max_block_bytes`` only).
        self.full_blocks_mined = 0
        #: Total miner fees collected across all blocks mined.
        self.total_fees_collected = 0
        self._running = False

    def start(self) -> None:
        """Begin producing blocks."""
        if self._running:
            raise RuntimeError("mining process is already running")
        self._running = True
        self._simulator.spawn(self._mine_forever(), name="mining")

    def stop(self) -> None:
        """Stop after the next scheduled block attempt."""
        self._running = False

    def _mine_forever(self):
        while self._running:
            interval = float(self._rng.exponential(self.block_interval_s))
            yield Timeout(max(interval, 1e-6))
            if not self._running:
                return
            self.mine_one_block()

    def pick_winner(self) -> MinerProfile:
        """Choose the miner of the next block, weighted by hash power."""
        index = int(self._rng.choice(len(self._miners), p=self._shares))
        return self._miners[index]

    def mine_one_block(self, *, winner_id: Optional[int] = None) -> Optional[Block]:
        """Produce one block immediately.

        Args:
            winner_id: force a specific miner to win (used by attack
                experiments); defaults to a hash-power-weighted draw.

        Returns:
            The mined block, or None if the winner is offline/unknown.
        """
        if winner_id is None:
            winner_id = self.pick_winner().node_id
        miner = self._nodes.get(winner_id)
        if miner is None or miner.network is None or not miner.network.is_online(winner_id):
            return None
        coinbase = Transaction.coinbase(
            miner.keypair.address,
            BLOCK_REWARD_SATOSHI,
            created_at=self._simulator.now,
            tag=f"{winner_id}:{miner.blockchain.height + 1}:{self.blocks_mined}",
        )
        tx_budget = None
        if self.max_block_bytes is not None:
            tx_budget = max(
                self.max_block_bytes - BLOCK_HEADER_BYTES - coinbase.size_bytes, 0
            )
        template = BlockTemplate.build(
            miner.mempool, self.max_block_transactions - 1, max_bytes=tx_budget
        )
        block = Block.create(
            miner.blockchain.tip,
            [coinbase, *template.transactions],
            timestamp=self._simulator.now,
            nonce=self.blocks_mined,
            miner_id=winner_id,
        )
        if self.on_block_found is not None:
            self.on_block_found(block, winner_id)
        accepted = miner.accept_block(block, origin_peer=None)
        if not accepted:
            return None
        self.blocks_mined += 1
        if template.is_full:
            self.full_blocks_mined += 1
        self.total_fees_collected += template.total_fees
        if self._on_block_mined is not None:
            self._on_block_mined(block, winner_id)
        return block


def equal_hash_power(node_ids: Sequence[int]) -> list[MinerProfile]:
    """Convenience: give every listed node the same hash power."""
    if not node_ids:
        return []
    share = 1.0 / len(node_ids)
    return [MinerProfile(node_id=node_id, hash_power=share) for node_id in node_ids]
