"""Double-spend race modelling.

The paper motivates BCBPT with the double-spend attack on fast payments
(Karame et al.): an attacker sends transaction ``TX_victim`` paying a merchant
and, at (almost) the same time, a conflicting ``TX_attacker`` returning the
same coins to itself, each injected at different points of the network.
Because nodes apply a first-seen rule, whichever transaction reaches a node
first is the one that node will relay and (if it mines) confirm.  Slow
propagation of the victim's transaction therefore increases the fraction of
the network — and of the hash power — that first sees the attacker's version.

:class:`DoubleSpendAttacker` builds the conflicting pair;
:class:`DoubleSpendExperimentResult` summarises the outcome of one race.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.protocol.crypto import KeyPair
from repro.protocol.node import BitcoinNode
from repro.protocol.transaction import Transaction


@dataclass(frozen=True)
class DoubleSpendPair:
    """The two mutually conflicting transactions of a double-spend attempt."""

    victim_tx: Transaction
    attacker_tx: Transaction

    def __post_init__(self) -> None:
        if not self.victim_tx.conflicts_with(self.attacker_tx):
            raise ValueError("the two transactions of a double-spend pair must conflict")


class DoubleSpendAttacker:
    """Creates conflicting transaction pairs from an attacker node's wallet."""

    def __init__(self, attacker_node: BitcoinNode, merchant_address: str) -> None:
        self.attacker = attacker_node
        self.merchant_address = merchant_address
        #: Separate key the attacker uses to pay itself back.
        self.payback_key = KeyPair.generate(f"attacker-payback-{attacker_node.node_id}")

    def build_pair(self, amount: int, *, created_at: float = 0.0) -> DoubleSpendPair:
        """Build the victim/attacker conflicting transactions.

        Both transactions spend the same wallet outputs; one pays the merchant,
        the other pays the attacker's secondary address.  Neither is announced
        here — the experiment injects them at chosen nodes and times.

        Raises:
            ValueError: if the attacker's wallet cannot fund ``amount``.
        """
        spendable = self.attacker.spendable_outputs()
        selected: list[tuple[str, int, int]] = []
        gathered = 0
        for candidate in spendable:
            selected.append(candidate)
            gathered += candidate[2]
            if gathered >= amount:
                break
        if gathered < amount:
            raise ValueError(
                f"attacker {self.attacker.node_id} cannot fund {amount} satoshi "
                f"(balance {gathered})"
            )
        victim_tx = Transaction.create_signed(
            self.attacker.keypair,
            selected,
            [(self.merchant_address, amount)],
            created_at=created_at,
        )
        attacker_tx = Transaction.create_signed(
            self.attacker.keypair,
            selected,
            [(self.payback_key.address, amount)],
            created_at=created_at,
        )
        return DoubleSpendPair(victim_tx=victim_tx, attacker_tx=attacker_tx)


@dataclass
class DoubleSpendOutcome:
    """Outcome of one double-spend race across the network.

    Attributes:
        victim_txid / attacker_txid: the competing transaction ids.
        nodes_first_saw_victim: nodes whose mempool admitted the victim tx.
        nodes_first_saw_attacker: nodes whose mempool admitted the attacker tx.
        confirmed_txid: which transaction ended up on the best chain (None if
            neither was confirmed within the experiment horizon).
    """

    victim_txid: str
    attacker_txid: str
    nodes_first_saw_victim: int = 0
    nodes_first_saw_attacker: int = 0
    confirmed_txid: Optional[str] = None

    @property
    def total_deciding_nodes(self) -> int:
        """Nodes that admitted either transaction."""
        return self.nodes_first_saw_victim + self.nodes_first_saw_attacker

    @property
    def attacker_share(self) -> float:
        """Fraction of deciding nodes that first saw the attacker's version."""
        total = self.total_deciding_nodes
        if total == 0:
            return 0.0
        return self.nodes_first_saw_attacker / total

    @property
    def attack_succeeded(self) -> Optional[bool]:
        """True if the attacker's transaction was the one confirmed."""
        if self.confirmed_txid is None:
            return None
        return self.confirmed_txid == self.attacker_txid


def merchant_detection(
    merchant: BitcoinNode,
    pair: DoubleSpendPair,
    *,
    start_time: float,
    horizon_s: float,
) -> tuple[bool, Optional[float]]:
    """Whether (and when) the merchant learnt of the conflicting transaction.

    The merchant holds the victim transaction; it *detects* the double-spend
    as soon as it hears of the attacker's conflicting transaction at all — an
    INV announcing it (including a relayed double-spend alert, see
    ``NodeConfig.relay_conflicts``) or the full TX.  Mempool admission is
    irrelevant: first-seen means the merchant's mempool will always reject the
    attacker's copy, which is precisely how the conflict becomes observable.

    Args:
        start_time: simulated time the race started (both copies injected).
        horizon_s: race observation window; a detection whose recorded time
            somehow precedes the race start (e.g. a txid re-used across races)
            clamps to 0, and one recorded after the horizon clamps to it.

    Returns:
        ``(detected, detection_time_s)`` with the detection time relative to
        ``start_time``; ``(False, None)`` when the merchant never heard of the
        attacker's transaction.
    """
    txid = pair.attacker_tx.txid
    first_seen = merchant.transaction_first_seen_times.get(txid)
    if first_seen is None:
        if txid not in merchant.known_transactions:
            return (False, None)
        # Known but with no recorded reception time — count the detection at
        # the conservative end of the window.
        return (True, horizon_s)
    return (True, min(max(first_seen - start_time, 0.0), horizon_s))


def tally_first_seen(nodes: list[BitcoinNode], pair: DoubleSpendPair) -> DoubleSpendOutcome:
    """Count, across ``nodes``, which conflicting transaction each admitted first.

    A node's mempool can contain at most one of the two (they conflict), so the
    mempool content tells us which version won the race at that node.
    """
    outcome = DoubleSpendOutcome(
        victim_txid=pair.victim_tx.txid, attacker_txid=pair.attacker_tx.txid
    )
    for node in nodes:
        has_victim = pair.victim_tx.txid in node.mempool
        has_attacker = pair.attacker_tx.txid in node.mempool
        if has_victim and not has_attacker:
            outcome.nodes_first_saw_victim += 1
        elif has_attacker and not has_victim:
            outcome.nodes_first_saw_attacker += 1
        elif not has_victim and not has_attacker:
            # Check confirmed history in case a block already swept one in.
            if node.blockchain.contains_transaction(pair.victim_tx.txid):
                outcome.nodes_first_saw_victim += 1
            elif node.blockchain.contains_transaction(pair.attacker_tx.txid):
                outcome.nodes_first_saw_attacker += 1
    return outcome
