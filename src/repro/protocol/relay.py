"""Pluggable relay strategies: how a node announces, requests and forwards.

The Fig. 1 INV/GETDATA flooding used to be hardcoded inside
:class:`~repro.protocol.node.BitcoinNode`; this module extracts the whole
message plane behind one interface so the *relay protocol* becomes an
experimental axis, orthogonal to the neighbour-selection policy the paper
studies.  A strategy owns

* inventory announcement (``announce_transaction`` / ``announce_block``),
* GETDATA scheduling with cross-peer de-duplication and timeout-based retry,
* transaction/block forwarding after local acceptance, and
* the per-node in-flight request state (dropped when the session ends).

Five concrete strategies ship:

``flood`` (:class:`FloodRelay`)
    The legacy behaviour: INV to every neighbour, GETDATA on first
    announcement, full TX/BLOCK on request.  Byte-identical to the
    pre-refactor node in static scenarios (pinned by golden-fingerprint
    equivalence tests); under churn the timeout-based GETDATA retry is a
    deliberate improvement — a request whose reply died with a departed peer
    used to suppress duplicate announcements forever.

``compact`` (:class:`CompactBlockRelay`)
    BIP 152-style compact blocks: accepted blocks are pushed as a header plus
    short transaction ids (:class:`~repro.protocol.messages.CmpctBlockMessage`);
    receivers reconstruct from their mempool and fetch only the transactions
    they miss (``GETBLOCKTXN``/``BLOCKTXN``), falling back to a full GETDATA
    when reconstruction cannot complete.  Transaction relay stays INV-based.

``push`` (:class:`PushRelay`)
    Bitcoin-XT-style unsolicited push: accepted blocks are sent in full to
    cluster peers (no INV/GETDATA round-trip on intra-cluster links); links
    outside the cluster fall back to INV announcement.  Under the vanilla
    Bitcoin policy, which builds no cluster links, this degenerates to flood.

``adaptive`` (:class:`AdaptiveRelay`)
    Neighbour-scored fan-out: every neighbour is scored by how useful it has
    been (objects it delivered first, announcements that were news, a
    response-latency EWMA) and announcements go to the top-N scored peers
    plus a random extra instead of everyone.  The width N adapts — narrowed
    when announcements keep arriving redundantly, widened when in-flight
    requests go stale — so the node floods while it knows nothing and prunes
    redundant links as evidence accumulates.

``headers`` (:class:`HeadersFirstRelay`)
    Headers-first block sync: new blocks are announced with a one-entry
    ``HEADERS`` message (BIP 130), a receiver missing the parent chain asks
    for the whole gap with one ``GETHEADERS``/block-locator round-trip, and
    every missing body is then fetched in one batched GETDATA (parallel body
    fetch) instead of the per-orphan parent walk.  Reconnecting nodes
    (``resync_on_reconnect``) catch up the same way.

Scenarios select a strategy through
:attr:`~repro.protocol.node.NodeConfig.relay_strategy` (or
``build_scenario(..., relay=...)``); register a new one by subclassing
:class:`RelayStrategy` and adding it to :data:`RELAY_STRATEGIES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.protocol.block import Block, merkle_root
from repro.protocol.messages import (
    BlockMessage,
    BlockTxnMessage,
    CmpctBlockMessage,
    GetBlockTxnMessage,
    GetDataMessage,
    GetHeadersMessage,
    HeadersMessage,
    InvMessage,
    InventoryType,
    Message,
    TxMessage,
    short_txid,
)
from repro.protocol.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.protocol.network import P2PNetwork
    from repro.protocol.node import BitcoinNode


class RelayStrategy:
    """Base class: the flood message plane every concrete strategy refines.

    The strategy is the node's relay state machine — it handles the
    inventory-plane messages (:class:`~repro.protocol.messages.InvMessage`,
    ``GETDATA``, ``TX``, ``BLOCK`` and the compact-relay trio), tracks which
    hashes are in flight so the same object is never requested from several
    peers at once, and decides how a locally-accepted object is forwarded.

    Args:
        node: the owning node; the strategy reads/writes its chain, mempool,
            known-inventory sets and statistics counters.
    """

    #: Registry key; concrete subclasses override.
    name = "base"

    def __init__(self, node: "BitcoinNode") -> None:
        self.node = node
        #: In-flight GETDATA state: requested hash -> request time.  A later
        #: INV for a pending hash is suppressed (the cross-peer dedup this
        #: used to leak: the timestamp lets a *stale* request — the serving
        #: peer died, the reply was dropped — be retried from the newly
        #: announcing peer instead of being ignored forever.
        self.pending_tx_requests: dict[str, float] = {}
        self.pending_block_requests: dict[str, float] = {}

    # ------------------------------------------------------------- plumbing
    def _network(self) -> "P2PNetwork":
        return self.node._require_network()

    @property
    def _now(self) -> float:
        return self.node.now

    # ------------------------------------------------------------- dispatch
    def handle_message(self, sender: int, message: Message) -> bool:
        """Dispatch a relay-plane message; returns False for other messages."""
        if isinstance(message, InvMessage):
            self.handle_inv(sender, message)
        elif isinstance(message, GetDataMessage):
            self.handle_getdata(sender, message)
        elif isinstance(message, TxMessage):
            self.handle_tx(sender, message)
        elif isinstance(message, BlockMessage):
            self.handle_block(sender, message)
        elif isinstance(message, CmpctBlockMessage):
            self.handle_cmpct_block(sender, message)
        elif isinstance(message, GetBlockTxnMessage):
            self.handle_get_block_txn(sender, message)
        elif isinstance(message, BlockTxnMessage):
            self.handle_block_txn(sender, message)
        elif isinstance(message, GetHeadersMessage):
            self.handle_getheaders(sender, message)
        elif isinstance(message, HeadersMessage):
            self.handle_headers(sender, message)
        else:
            return False
        return True

    # ------------------------------------------------------ lifecycle hooks
    def on_offline(self) -> None:
        """Session ended: every in-flight request died with the connections."""
        self.pending_tx_requests.clear()
        self.pending_block_requests.clear()

    def note_transaction_received(self, txid: str) -> None:
        """The transaction arrived (by any path); it is no longer in flight."""
        self.pending_tx_requests.pop(txid, None)

    def note_block_received(self, block_hash: str) -> None:
        """The block arrived (by any path); it is no longer in flight."""
        self.pending_block_requests.pop(block_hash, None)

    def on_peer_connected(self, peer_id: int) -> None:
        """A connection to ``peer_id`` was established (strategy hook)."""

    def on_peer_disconnected(self, peer_id: int) -> None:
        """The connection to ``peer_id`` was torn down (strategy hook)."""

    def sync_chain_with_peer(self, peer_id: int) -> bool:
        """Offer the best chain over a fresh connection (the resync path).

        The flood baseline announces the tip with a block INV; unknown parents
        are then requested one-by-one through the orphan path.  Returns True
        when anything was sent.  Announcing the genesis-only tip is skipped,
        which also makes this a no-op during initial topology construction.
        """
        node = self.node
        tip = node.blockchain.tip
        if tip.block_hash == node.blockchain.genesis.block_hash:
            return False
        self._network().send(
            node.node_id,
            peer_id,
            InvMessage(
                sender=node.node_id,
                inventory_type=InventoryType.BLOCK,
                hashes=(tip.block_hash,),
            ),
        )
        return True

    # --------------------------------------------------------- announcement
    def announce_transaction(self, txid: str, *, exclude: Optional[set[int]] = None) -> int:
        """Send an INV for ``txid`` to every neighbour (minus ``exclude``)."""
        node = self.node
        message = InvMessage(
            sender=node.node_id,
            inventory_type=InventoryType.TRANSACTION,
            hashes=(txid,),
        )
        count = self._network().broadcast(node.node_id, message, exclude=exclude)
        for listener in node.announcement_listeners:
            listener(node.node_id, txid, self._now)
        return count

    def announce_block(self, block_hash: str, *, exclude: Optional[set[int]] = None) -> int:
        """Send an INV for a block to every neighbour (minus ``exclude``)."""
        node = self.node
        message = InvMessage(
            sender=node.node_id,
            inventory_type=InventoryType.BLOCK,
            hashes=(block_hash,),
        )
        return self._network().broadcast(node.node_id, message, exclude=exclude)

    # --------------------------------------------------------- INV / GETDATA
    def handle_inv(self, sender: int, message: InvMessage) -> None:
        node = self.node
        node.stats.invs_received += 1
        network = self._network()
        if message.inventory_type is InventoryType.TRANSACTION:
            unknown, stale = self._classify(
                message.hashes,
                node.known_transactions,
                self.pending_tx_requests,
                confirmed=(
                    node.blockchain.contains_transaction
                    if node.config.prune_depth is not None
                    else None
                ),
            )
            to_request = unknown + stale
            if not to_request:
                node.stats.duplicate_invs += 1
                return
            now = self._now
            for txid in unknown:
                node.transaction_first_seen_times.setdefault(txid, now)
            self.pending_tx_requests.update((txid, now) for txid in to_request)
            node.stats.getdata_sent += 1
            network.send(
                node.node_id,
                sender,
                GetDataMessage(
                    sender=node.node_id,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=tuple(to_request),
                ),
            )
        else:
            unknown, stale = self._classify(
                message.hashes,
                node.known_blocks,
                self.pending_block_requests,
                confirmed=(
                    node.blockchain.has_block
                    if node.config.prune_depth is not None
                    else None
                ),
            )
            to_request = unknown + stale
            if not to_request:
                node.stats.duplicate_invs += 1
                return
            self.request_blocks(sender, tuple(to_request))

    def _classify(
        self,
        hashes: tuple[str, ...],
        known: set[str],
        pending: dict[str, float],
        confirmed: Optional[Callable[[str], bool]] = None,
    ) -> tuple[list[str], list[str]]:
        """Split announced hashes into (never requested, stale in-flight).

        A hash with a *fresh* in-flight request is suppressed — the same
        object is never fetched from several peers at once — and counted in
        ``stats.getdata_saved``.  A pending request older than
        ``NodeConfig.getdata_retry_s`` is considered lost (the serving peer
        churned away, the reply was dropped with a link) and re-issued to the
        announcing peer, counted in ``stats.getdata_retries``.

        ``confirmed`` is the pruning escape hatch (``NodeConfig.prune_depth``):
        a hash absent from the inventory set but confirmed on the best chain
        was *pruned*, not forgotten, and is treated exactly like a known hash
        instead of being re-requested.
        """
        node = self.node
        retry_after = node.config.getdata_retry_s
        now = self._now
        unknown: list[str] = []
        stale: list[str] = []
        for h in hashes:
            if h in known:
                continue
            if confirmed is not None and confirmed(h):
                continue
            requested_at = pending.get(h)
            if requested_at is None:
                unknown.append(h)
            elif now - requested_at > retry_after:
                stale.append(h)
            else:
                node.stats.getdata_saved += 1
        node.stats.getdata_retries += len(stale)
        return unknown, stale

    def request_blocks(self, peer: int, hashes: tuple[str, ...]) -> None:
        """Issue a block GETDATA to ``peer`` and mark the hashes in flight."""
        now = self._now
        self.pending_block_requests.update((h, now) for h in hashes)
        self._network().send(
            self.node.node_id,
            peer,
            GetDataMessage(
                sender=self.node.node_id, inventory_type=InventoryType.BLOCK, hashes=hashes
            ),
        )

    def request_parent(self, peer: int, parent_hash: str) -> None:
        """Fetch an orphan's missing parent through the pending-request dedup.

        The orphan path used to call :meth:`request_blocks` unconditionally:
        a burst of orphans on the same branch re-sent the same GETDATA each
        time *and refreshed the in-flight timestamp*, so the stale-retry
        mechanism could never fire.  Routing the fetch through the same
        classification step the INV path uses restores the dedup (fresh
        in-flight requests are suppressed and counted in
        ``stats.getdata_saved``) while still retrying requests that went
        stale.
        """
        node = self.node
        if node.blockchain.has_block(parent_hash):
            return
        unknown, stale = self._classify(
            (parent_hash,), node.known_blocks, self.pending_block_requests
        )
        if unknown or stale:
            self.request_blocks(peer, (parent_hash,))

    def handle_getdata(self, sender: int, message: GetDataMessage) -> None:
        node = self.node
        network = self._network()
        if message.inventory_type is InventoryType.TRANSACTION:
            for txid in message.hashes:
                tx = node.mempool.get(txid)
                if tx is None:
                    tx = node._conflict_store.get(txid)
                if tx is None:
                    tx = node.find_confirmed_transaction(txid)
                if tx is not None:
                    network.send(node.node_id, sender, TxMessage(sender=node.node_id, transaction=tx))
        else:
            for block_hash in message.hashes:
                if node.blockchain.has_block(block_hash):
                    network.send(
                        node.node_id,
                        sender,
                        BlockMessage(sender=node.node_id, block=node.blockchain.get_block(block_hash)),
                    )

    # ------------------------------------------------------------ TX / BLOCK
    def handle_tx(self, sender: int, message: TxMessage) -> None:
        node = self.node
        if message.transaction is None:
            return
        tx = message.transaction
        if tx.txid in node.known_transactions and tx.txid not in self.pending_tx_requests:
            return
        result = node.accept_transaction(tx, origin_peer=sender)
        if not result.valid:
            return
        if not node.config.relay_transactions:
            return
        relay_delay = result.verification_cost_s if node.config.verification_enabled else 0.0
        simulator = self._network().simulator
        txid = tx.txid
        simulator.schedule(
            relay_delay,
            lambda: self._relay_transaction(txid, exclude_peer=sender),
            label=f"relay:{node.node_id}",
        )

    def _relay_transaction(self, txid: str, *, exclude_peer: int) -> None:
        node = self.node
        if txid not in node.mempool and not node.blockchain.contains_transaction(txid):
            return
        node.stats.transactions_relayed += 1
        self.announce_transaction(txid, exclude={exclude_peer})

    def handle_block(self, sender: int, message: BlockMessage) -> None:
        if message.block is None:
            return
        self.node.accept_block(message.block, origin_peer=sender)

    # -------------------------------------------------------- compact plane
    def handle_cmpct_block(self, sender: int, message: CmpctBlockMessage) -> None:
        """Graceful interop: a non-compact node asks for the full block."""
        node = self.node
        if message.header is None:
            return
        block_hash = message.block_hash
        if block_hash in node.known_blocks or node.blockchain.has_block(block_hash):
            return
        requested_at = self.pending_block_requests.get(block_hash)
        if requested_at is not None:
            if self._now - requested_at <= node.config.getdata_retry_s:
                return
            node.stats.getdata_retries += 1
        self.request_blocks(sender, (block_hash,))

    def handle_get_block_txn(self, sender: int, message: GetBlockTxnMessage) -> None:
        """Serve the requested block transactions (any strategy can)."""
        node = self.node
        if not node.blockchain.has_block(message.block_hash):
            return
        block = node.blockchain.get_block(message.block_hash)
        indexes = tuple(i for i in message.indexes if 0 <= i < len(block.transactions))
        if not indexes:
            return
        self._network().send(
            node.node_id,
            sender,
            BlockTxnMessage(
                sender=node.node_id,
                block_hash=message.block_hash,
                indexes=indexes,
                transactions=tuple(block.transactions[i] for i in indexes),
            ),
        )

    def handle_block_txn(self, sender: int, message: BlockTxnMessage) -> None:
        """Only the compact strategy has reconstructions to complete."""

    # -------------------------------------------------------- headers plane
    #: Cap on headers served per HEADERS message (Bitcoin Core's limit).
    MAX_HEADERS_PER_MESSAGE = 2000

    def handle_getheaders(self, sender: int, message: GetHeadersMessage) -> None:
        """Serve best-chain headers after the requester's locator (any strategy).

        The highest locator entry found on the local best chain anchors the
        reply; everything above it (bounded by ``MAX_HEADERS_PER_MESSAGE`` and
        the optional stop hash) is returned in one HEADERS message.  An empty
        reply is skipped entirely — the requester's timeout-based retry covers
        the silent case.
        """
        node = self.node
        chain = node.blockchain.best_chain()
        height_of = {block.block_hash: index for index, block in enumerate(chain)}
        start = 0  # genesis: every locator ends there, but be lenient
        for locator_hash in message.locator:
            index = height_of.get(locator_hash)
            if index is not None:
                start = index
                break
        tail = chain[start + 1 : start + 1 + self.MAX_HEADERS_PER_MESSAGE]
        if message.stop_hash:
            for position, block in enumerate(tail):
                if block.block_hash == message.stop_hash:
                    tail = tail[: position + 1]
                    break
        if not tail:
            return
        self._network().send(
            node.node_id,
            sender,
            HeadersMessage(
                sender=node.node_id,
                headers=tuple(block.header for block in tail),
                heights=tuple(block.height for block in tail),
            ),
        )

    def handle_headers(self, sender: int, message: HeadersMessage) -> None:
        """Graceful interop: treat each header as a block announcement.

        A non-headers-first node receiving a HEADERS announcement requests the
        unknown bodies exactly as it would after a block INV (same dedup, same
        stale retry); gap-filling via GETHEADERS is the headers strategy's
        refinement.
        """
        node = self.node
        if not message.headers:
            return
        unknown, stale = self._classify(
            tuple(header.block_hash for header in message.headers),
            node.known_blocks,
            self.pending_block_requests,
            confirmed=(
                node.blockchain.has_block
                if node.config.prune_depth is not None
                else None
            ),
        )
        to_request = unknown + stale
        if not to_request:
            node.stats.duplicate_invs += 1
            return
        self.request_blocks(sender, tuple(to_request))


class FloodRelay(RelayStrategy):
    """The legacy INV/GETDATA/TX flood — the default, byte-identical relay."""

    name = "flood"


@dataclass
class _Reconstruction:
    """A compact block waiting for its missing transactions."""

    header: object
    height: int
    slots: list[Optional[Transaction]]
    origin: int
    missing: set[int] = field(default_factory=set)
    requested_at: float = 0.0
    #: Cancellable timer that falls back to a full-block GETDATA if the
    #: GETBLOCKTXN reply never arrives (the server may not have the block).
    timeout: Optional[object] = None


class CompactBlockRelay(FloodRelay):
    """BIP 152-style compact block relay (transactions still flood via INV).

    An accepted block is pushed to every neighbour (minus the origin) as a
    header plus short ids.  The receiver fills the transaction slots from its
    mempool; fully-reconstructed blocks are accepted immediately, otherwise
    the missing indexes are fetched with one GETBLOCKTXN round-trip.  If the
    reconstruction still cannot be completed — the serving peer lost the
    block, or a short-id collision corrupted a slot (detected by Merkle-root
    mismatch) — the node falls back to a plain full-block GETDATA.
    """

    name = "compact"

    def __init__(self, node: "BitcoinNode") -> None:
        super().__init__(node)
        #: Partially-reconstructed blocks: block hash -> reconstruction state.
        self._reconstructions: dict[str, _Reconstruction] = {}

    def on_offline(self) -> None:
        super().on_offline()
        for block_hash in tuple(self._reconstructions):
            self._pop_reconstruction(block_hash)

    def note_block_received(self, block_hash: str) -> None:
        super().note_block_received(block_hash)
        self._pop_reconstruction(block_hash)

    def _pop_reconstruction(self, block_hash: str) -> Optional[_Reconstruction]:
        """Drop a reconstruction and cancel its fallback timer, if any."""
        pending = self._reconstructions.pop(block_hash, None)
        if pending is not None and pending.timeout is not None:
            pending.timeout.cancel()
            pending.timeout = None
        return pending

    # --------------------------------------------------------- announcement
    def announce_block(self, block_hash: str, *, exclude: Optional[set[int]] = None) -> int:
        node = self.node
        block = node.blockchain.get_block(block_hash)
        message = CmpctBlockMessage(
            sender=node.node_id,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0] if block.transactions else None,
        )
        return self._network().broadcast(node.node_id, message, exclude=exclude)

    # ------------------------------------------------------- reconstruction
    def handle_cmpct_block(self, sender: int, message: CmpctBlockMessage) -> None:
        node = self.node
        if message.header is None:
            return
        node.stats.compact_blocks_received += 1
        block_hash = message.block_hash
        if block_hash in node.known_blocks or node.blockchain.has_block(block_hash):
            return
        # An in-flight reconstruction or full-block fetch suppresses duplicate
        # announcements — unless it has gone stale (the serving peer churned
        # away mid-round-trip), in which case this fresh announcement takes
        # over, mirroring the flood path's GETDATA retry.
        now = self._now
        retry_after = node.config.getdata_retry_s
        pending = self._reconstructions.get(block_hash)
        if pending is not None:
            if now - pending.requested_at <= retry_after:
                return
            self._pop_reconstruction(block_hash)
            node.stats.getdata_retries += 1
        requested_at = self.pending_block_requests.get(block_hash)
        if requested_at is not None:
            if now - requested_at <= retry_after:
                return
            # The dead full-block request is superseded by this announcement;
            # drop it so it cannot count as stale again on the next one.
            del self.pending_block_requests[block_hash]
            node.stats.getdata_retries += 1
        if message.coinbase is None:
            # Unreconstructable announcement; fetch the full block instead.
            self.request_blocks(sender, (block_hash,))
            return
        slots: list[Optional[Transaction]] = [None] * (len(message.short_ids) + 1)
        slots[0] = message.coinbase
        index = self._short_id_index()
        missing: list[int] = []
        for position, sid in enumerate(message.short_ids, start=1):
            tx = index.get(sid)
            if tx is not None:
                slots[position] = tx
            else:
                missing.append(position)
        if missing:
            reconstruction = _Reconstruction(
                header=message.header,
                height=message.height,
                slots=slots,
                origin=sender,
                missing=set(missing),
                requested_at=now,
            )
            self._reconstructions[block_hash] = reconstruction
            node.stats.compact_txs_requested += len(missing)
            self._network().send(
                node.node_id,
                sender,
                GetBlockTxnMessage(
                    sender=node.node_id,
                    block_hash=block_hash,
                    indexes=tuple(missing),
                ),
            )
            # The server may silently have nothing to answer with (it lost
            # the block, or every index was out of range); without a timer
            # the reconstruction would stall until an unrelated
            # re-announcement.  Mirror the flood GETDATA retry window.
            reconstruction.timeout = self._network().simulator.schedule(
                retry_after,
                lambda: self._expire_reconstruction(block_hash, now),
                label=f"cmpct-expire:{node.node_id}",
            )
            return
        self._complete(block_hash, message.header, message.height, slots, origin=sender)

    def _short_id_index(self) -> dict[str, Transaction]:
        """Short id -> transaction over everything reconstructible locally.

        Short-id collisions inside the mempool resolve arbitrarily; the
        Merkle check in :meth:`_complete` catches a wrong pick and falls back
        to a full-block fetch, exactly like BIP 152 prescribes.
        """
        return {short_txid(tx.txid): tx for tx in self.node.mempool.transactions()}

    def handle_block_txn(self, sender: int, message: BlockTxnMessage) -> None:
        pending = self._reconstructions.get(message.block_hash)
        if pending is None:
            return
        for position, tx in zip(message.indexes, message.transactions):
            if 0 <= position < len(pending.slots):
                pending.slots[position] = tx
                pending.missing.discard(position)
        if pending.missing:
            # The server could not provide everything; fall back.
            self._fallback(message.block_hash, pending.origin)
            return
        self._pop_reconstruction(message.block_hash)
        self._complete(
            message.block_hash, pending.header, pending.height, pending.slots, origin=pending.origin
        )

    def _complete(
        self,
        block_hash: str,
        header: object,
        height: int,
        slots: list[Optional[Transaction]],
        *,
        origin: int,
    ) -> None:
        node = self.node
        transactions = tuple(tx for tx in slots if tx is not None)
        if len(transactions) != len(slots) or merkle_root(transactions) != header.merkle_root:
            # A short-id collision filled a slot with the wrong transaction.
            self._fallback(block_hash, origin)
            return
        block = Block(header=header, transactions=transactions, height=height)
        node.stats.compact_blocks_reconstructed += 1
        node.accept_block(block, origin_peer=origin)

    def _expire_reconstruction(self, block_hash: str, requested_at: float) -> None:
        """Timer body: the GETBLOCKTXN reply never arrived; fall back.

        A no-op when the reconstruction completed, was taken over by a newer
        announcement, or was dropped offline in the meantime (the
        ``requested_at`` echo guards against a same-hash successor).
        """
        pending = self._reconstructions.get(block_hash)
        if pending is None or pending.requested_at != requested_at:
            return
        self.node.stats.compact_txn_timeouts += 1
        self._fallback(block_hash, pending.origin)

    def _fallback(self, block_hash: str, origin: int) -> None:
        node = self.node
        self._pop_reconstruction(block_hash)
        node.stats.compact_fallbacks += 1
        if not node.blockchain.has_block(block_hash):
            self.request_blocks(origin, (block_hash,))


class PushRelay(FloodRelay):
    """Unsolicited full-block push over cluster links (Bitcoin-XT style).

    Intra-cluster links are latency-picked by the clustering policy, so
    skipping the INV/GETDATA round-trip there buys the biggest Δt win per
    redundant byte; links outside the cluster (long maintenance links, the
    whole overlay under the vanilla policy) keep the polite INV announcement.
    """

    name = "push"

    def announce_block(self, block_hash: str, *, exclude: Optional[set[int]] = None) -> int:
        node = self.node
        network = self._network()
        excluded = exclude or set()
        topology = network.topology
        cluster_peers: list[int] = []
        inv_peers: list[int] = []
        for peer in network.neighbors(node.node_id):
            if peer in excluded:
                continue
            if topology.link(node.node_id, peer).is_cluster_link:
                cluster_peers.append(peer)
            else:
                inv_peers.append(peer)
        count = 0
        if cluster_peers:
            block = node.blockchain.get_block(block_hash)
            pushed = network.multicast(
                node.node_id,
                cluster_peers,
                BlockMessage(sender=node.node_id, block=block),
            )
            node.stats.blocks_pushed += pushed
            count += pushed
        if inv_peers:
            count += network.multicast(
                node.node_id,
                inv_peers,
                InvMessage(
                    sender=node.node_id,
                    inventory_type=InventoryType.BLOCK,
                    hashes=(block_hash,),
                ),
            )
        return count


@dataclass
class _NeighbourScore:
    """Observed relay usefulness of one neighbour (adaptive strategy)."""

    #: Objects (txs or blocks) whose *first* copy we received from this peer.
    first_deliveries: int = 0
    #: Announced hashes that were news to us (novel INV entries).
    novel_invs: int = 0
    #: EWMA of the GETDATA -> delivery round-trip to this peer.
    latency_ewma_s: float = 0.0
    latency_samples: int = 0

    def observe_latency(self, rtt_s: float, alpha: float) -> None:
        if self.latency_samples == 0:
            self.latency_ewma_s = rtt_s
        else:
            self.latency_ewma_s += alpha * (rtt_s - self.latency_ewma_s)
        self.latency_samples += 1

    @property
    def relay_score(self) -> int:
        """First deliveries weigh double: they are the scarce signal."""
        return 2 * self.first_deliveries + self.novel_invs


class AdaptiveRelay(FloodRelay):
    """Neighbour-scored announcement fan-out with dynamic widen/narrow.

    Every neighbour accumulates a :class:`_NeighbourScore` (objects it
    delivered first, announcements that were news, a response-latency EWMA,
    fed by the node's message hooks).  *Transaction* announcements then go to
    the ``N`` best-ranked peers plus one random extra instead of flooding
    everyone (block announcements keep the full fan-out — see the note on
    ``announce_block`` below):

    * the node starts in full-flood mode (``N`` unset) — with no evidence,
      pruning links would only strand objects;
    * a run of :data:`NARROW_AFTER_DUPLICATES` consecutive all-duplicate
      announcements narrows the fan-out by one (redundancy is high, the
      neighbourhood already hears everything through other paths);
    * an in-flight request going stale widens it again by one (the peers we
      rely on serve us poorly — listen to more of them).

    The random extra keeps the epidemic alive past the scored set, and the
    width never drops below :data:`MIN_FANOUT`.  Width changes are counted in
    ``stats.adaptive_fanout_widened`` / ``adaptive_fanout_narrowed`` and
    recorded with their timestamp in :attr:`fanout_history`.
    """

    name = "adaptive"

    #: Fan-out floor: epidemic relay with too few targets risks stranding
    #: objects, so narrowing never goes below this many scored peers.
    MIN_FANOUT = 3
    #: Random (non-top-ranked) peers added to every announcement.
    RANDOM_EXTRAS = 1
    #: Consecutive all-duplicate announcements that trigger one narrow step.
    NARROW_AFTER_DUPLICATES = 4
    #: EWMA smoothing factor for the response-latency estimate.
    LATENCY_ALPHA = 0.25

    def __init__(self, node: "BitcoinNode") -> None:
        super().__init__(node)
        #: Per-neighbour usefulness scores (reset when the session ends).
        self.scores: dict[int, _NeighbourScore] = {}
        #: Outstanding latency probes: requested hash -> (peer, sent time).
        self._probes: dict[str, tuple[int, float]] = {}
        #: Current fan-out width; None means full flood (no evidence yet).
        self._fanout: Optional[int] = None
        self._duplicate_run = 0
        #: (time, width) samples, appended on every widen/narrow step.
        self.fanout_history: list[tuple[float, int]] = []
        self._rng = None

    # ------------------------------------------------------------- lifecycle
    def on_offline(self) -> None:
        super().on_offline()
        self._probes.clear()
        self.scores.clear()
        self._duplicate_run = 0
        self._fanout = None  # fresh session, fresh neighbourhood: flood again

    def on_peer_disconnected(self, peer_id: int) -> None:
        self.scores.pop(peer_id, None)

    # --------------------------------------------------------------- scoring
    def _get_rng(self):
        if self._rng is None:
            self._rng = self._network().simulator.random.stream(
                f"adaptive-relay:{self.node.node_id}"
            )
        return self._rng

    def _score(self, peer: int) -> _NeighbourScore:
        score = self.scores.get(peer)
        if score is None:
            score = self.scores[peer] = _NeighbourScore()
        return score

    def get_classification(self, peers: list[int]) -> list[int]:
        """Rank peers best-first: score, then measured latency, then id."""

        def rank(peer: int) -> tuple[float, float, int]:
            score = self.scores.get(peer)
            if score is None:
                return (0.0, float("inf"), peer)
            latency = (
                score.latency_ewma_s if score.latency_samples else float("inf")
            )
            return (-float(score.relay_score), latency, peer)

        return sorted(peers, key=rank)

    def effective_fanout(self) -> int:
        """Announcement targets the *next* relay round will use."""
        degree = len(self._network().neighbors(self.node.node_id))
        if self._fanout is None:
            return degree
        extras = self.RANDOM_EXTRAS if degree > self._fanout else 0
        return min(self._fanout + extras, degree)

    def _relay_targets(self, exclude: Optional[set[int]]) -> list[int]:
        network = self._network()
        excluded = exclude or set()
        neighbours = [
            peer
            for peer in network.neighbors(self.node.node_id)
            if peer not in excluded
        ]
        width = self._fanout
        if width is None or width >= len(neighbours):
            return neighbours
        ranked = self.get_classification(neighbours)
        chosen = ranked[:width]
        rest = ranked[width:]
        extras = min(self.RANDOM_EXTRAS, len(rest))
        if extras:
            rng = self._get_rng()
            picks = rng.choice(len(rest), size=extras, replace=False)
            chosen.extend(rest[int(i)] for i in sorted(picks))
        return chosen

    # ------------------------------------------------------ width adaptation
    def _widen(self) -> None:
        if self._fanout is None:
            return  # already flooding everyone
        degree = len(self._network().neighbors(self.node.node_id))
        if self._fanout >= degree:
            self._fanout = None
            return
        self._fanout += 1
        self.node.stats.adaptive_fanout_widened += 1
        self.fanout_history.append((self._now, self._fanout))

    def _narrow(self) -> None:
        degree = len(self._network().neighbors(self.node.node_id))
        if degree == 0:
            return
        current = self._fanout if self._fanout is not None else degree
        narrowed = max(self.MIN_FANOUT, current - 1)
        if narrowed >= current:
            return
        self._fanout = narrowed
        self.node.stats.adaptive_fanout_narrowed += 1
        self.fanout_history.append((self._now, narrowed))

    def _note_duplicate(self) -> None:
        self._duplicate_run += 1
        if self._duplicate_run >= self.NARROW_AFTER_DUPLICATES:
            self._duplicate_run = 0
            self._narrow()

    # --------------------------------------------------------- announcement
    def announce_transaction(
        self, txid: str, *, exclude: Optional[set[int]] = None
    ) -> int:
        node = self.node
        targets = self._relay_targets(exclude)
        count = 0
        if targets:
            count = self._network().multicast(
                node.node_id,
                targets,
                InvMessage(
                    sender=node.node_id,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=(txid,),
                ),
            )
        for listener in node.announcement_listeners:
            listener(node.node_id, txid, self._now)
        return count

    # announce_block is deliberately NOT overridden: block announcements keep
    # FloodRelay's full fan-out.  A transaction stranded by a narrow fan-out
    # is repaired by the next block that confirms it, but a stranded *block*
    # has no backstop — the node simply falls behind until an unrelated
    # resync.  Blocks are also rare, so their INVs contribute almost nothing
    # to the redundancy the narrowing removes; the duplicate-INV volume lives
    # on the transaction plane.  (Bitcoin Core draws the same line: tx relay
    # is trickled and filtered per peer, block announcements go to everyone.)

    # ----------------------------------------------------- scored message IO
    def handle_inv(self, sender: int, message: InvMessage) -> None:
        node = self.node
        node.stats.invs_received += 1
        is_tx = message.inventory_type is InventoryType.TRANSACTION
        known = node.known_transactions if is_tx else node.known_blocks
        pending = self.pending_tx_requests if is_tx else self.pending_block_requests
        confirmed = None
        if node.config.prune_depth is not None:
            confirmed = (
                node.blockchain.contains_transaction
                if is_tx
                else node.blockchain.has_block
            )
        unknown, stale = self._classify(
            message.hashes, known, pending, confirmed=confirmed
        )
        if stale:
            # Requests are timing out: the peers we listen to serve us
            # poorly, so widen the fan-out (and our own usefulness signal).
            self._widen()
        to_request = unknown + stale
        if not to_request:
            node.stats.duplicate_invs += 1
            self._note_duplicate()
            return
        self._duplicate_run = 0
        self._score(sender).novel_invs += len(unknown)
        now = self._now
        if is_tx:
            for txid in unknown:
                node.transaction_first_seen_times.setdefault(txid, now)
            self.pending_tx_requests.update((txid, now) for txid in to_request)
            node.stats.getdata_sent += 1
            self._network().send(
                node.node_id,
                sender,
                GetDataMessage(
                    sender=node.node_id,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=tuple(to_request),
                ),
            )
            for txid in to_request:
                self._probes[txid] = (sender, now)
        else:
            self.request_blocks(sender, tuple(to_request))

    def request_blocks(self, peer: int, hashes: tuple[str, ...]) -> None:
        super().request_blocks(peer, hashes)
        now = self._now
        for block_hash in hashes:
            self._probes[block_hash] = (peer, now)

    def handle_tx(self, sender: int, message: TxMessage) -> None:
        if message.transaction is not None:
            txid = message.transaction.txid
            self._observe_delivery(
                txid, sender, novel=txid not in self.node.known_transactions
            )
        super().handle_tx(sender, message)

    def handle_block(self, sender: int, message: BlockMessage) -> None:
        if message.block is not None:
            block_hash = message.block.block_hash
            self._observe_delivery(
                block_hash, sender, novel=block_hash not in self.node.known_blocks
            )
        super().handle_block(sender, message)

    def _observe_delivery(self, obj_hash: str, sender: int, *, novel: bool) -> None:
        score = self._score(sender)
        if novel:
            score.first_deliveries += 1
        probe = self._probes.pop(obj_hash, None)
        if probe is not None and probe[0] == sender:
            score.observe_latency(self._now - probe[1], self.LATENCY_ALPHA)


class HeadersFirstRelay(FloodRelay):
    """Headers-first block sync (GETHEADERS / HEADERS, BIP 130 announcement).

    New blocks are announced with a one-entry HEADERS message instead of an
    INV.  A receiver that already knows the parent chain batches one GETDATA
    for every missing body; a receiver missing intermediate headers asks the
    announcer for the whole gap with a single GETHEADERS carrying a block
    locator, then fetches the returned bodies bottom-up in batched GETDATAs
    (parallel body fetch) — replacing the flood path's one-GETDATA-per-orphan
    parent walk.  Reconnecting nodes (``resync_on_reconnect``) catch up the
    same way: :meth:`sync_chain_with_peer` sends a GETHEADERS instead of the
    tip INV, so one round-trip discovers however many blocks were missed.

    Two details keep a long catch-up cheap:

    * bodies are fetched through a bounded download window (Bitcoin Core's
      ``BLOCK_DOWNLOAD_WINDOW``, scaled down): at most
      ``min(BODY_DOWNLOAD_WINDOW, max_orphan_blocks)`` bodies are in flight
      at once, so however the per-message latencies scramble arrival order,
      the out-of-order tail always fits in the orphan pool.  Requesting the
      whole gap at once instead would evict tip-side orphans and re-download
      their bodies — the exact thrashing the flood walk suffers;
    * only tips are announced (BIP 130 semantics): a block accepted while we
      already know a strictly higher header is stale inventory, so replaying
      a catch-up batch does not spray HEADERS messages at the peer that is
      ahead of us anyway.
    """

    name = "headers"

    #: Cap on bodies in flight at once.  The effective window is
    #: ``min(BODY_DOWNLOAD_WINDOW, config.max_orphan_blocks)`` so a window's
    #: out-of-order arrivals can always be stashed without evicting anything.
    BODY_DOWNLOAD_WINDOW = 16

    def __init__(self, node: "BitcoinNode") -> None:
        super().__init__(node)
        #: Outstanding GETHEADERS round-trips: peer -> sent time (dedup with
        #: the same staleness window as GETDATA retries).
        self._pending_getheaders: dict[int, float] = {}
        #: Heights of headers whose bodies are still on the way; lets a
        #: child header chain onto a parent we only know by header yet.
        self._header_heights: dict[str, int] = {}
        #: Bodies discovered via HEADERS but not yet arrived, as
        #: ``(block_hash, serving_peer)``.  Drained window-by-window in
        #: height order; entries leave only when the body arrives.
        self._body_queue: list[tuple[str, int]] = []

    # ------------------------------------------------------------- lifecycle
    def on_offline(self) -> None:
        super().on_offline()
        self._pending_getheaders.clear()
        self._header_heights.clear()
        self._body_queue.clear()

    def note_block_received(self, block_hash: str) -> None:
        super().note_block_received(block_hash)
        self._header_heights.pop(block_hash, None)
        if self._body_queue:
            self._body_queue = [
                entry for entry in self._body_queue if entry[0] != block_hash
            ]
            # Refill only once the window drains: bodies keep going out in
            # window-sized batches instead of one 61-byte GETDATA each.
            if not self.pending_block_requests and self._body_queue:
                self._fill_body_window()

    def on_peer_disconnected(self, peer_id: int) -> None:
        self._pending_getheaders.pop(peer_id, None)

    # ------------------------------------------------------------------ sync
    def sync_chain_with_peer(self, peer_id: int) -> bool:
        """One GETHEADERS round-trip replaces the tip-INV + orphan walk."""
        return self._send_getheaders(peer_id)

    def block_locator(self) -> tuple[str, ...]:
        """Best-chain hashes, tip first with exponential gaps, genesis last."""
        chain = self.node.blockchain.best_chain()
        locator: list[str] = []
        step = 1
        index = len(chain) - 1
        while index > 0:
            locator.append(chain[index].block_hash)
            if len(locator) >= 10:
                step *= 2
            index -= step
        locator.append(chain[0].block_hash)
        return tuple(locator)

    def _send_getheaders(self, peer_id: int) -> bool:
        node = self.node
        now = self._now
        sent_at = self._pending_getheaders.get(peer_id)
        if sent_at is not None and now - sent_at <= node.config.getdata_retry_s:
            return False
        self._pending_getheaders[peer_id] = now
        node.stats.getheaders_sent += 1
        self._network().send(
            node.node_id,
            peer_id,
            GetHeadersMessage(sender=node.node_id, locator=self.block_locator()),
        )
        return True

    # ------------------------------------------------------------ body fetch
    def _fill_body_window(self) -> None:
        """Request queued bodies up to the download window, oldest first.

        Entries with a *fresh* in-flight GETDATA are left alone; entries
        whose request went stale (the serving peer churned away mid-batch)
        are re-issued and counted in ``stats.getdata_retries``.  The queue is
        height-sorted so the window always covers a contiguous bottom-up
        range — each window connects onto the last, and nothing waits in the
        orphan pool between windows.
        """
        node = self.node
        config = node.config
        window = max(1, min(self.BODY_DOWNLOAD_WINDOW, config.max_orphan_blocks))
        now = self._now
        heights = self._header_heights
        self._body_queue.sort(key=lambda entry: heights.get(entry[0], 0))
        in_flight = sum(
            1
            for requested_at in self.pending_block_requests.values()
            if now - requested_at <= config.getdata_retry_s
        )
        batches: dict[int, list[str]] = {}
        for block_hash, peer in self._body_queue:
            if block_hash in node.known_blocks:
                continue
            requested_at = self.pending_block_requests.get(block_hash)
            if requested_at is not None and now - requested_at <= config.getdata_retry_s:
                continue  # fresh in-flight request: not ours to repeat
            if in_flight >= window:
                break  # height order: nothing further down fits either
            if requested_at is not None:
                node.stats.getdata_retries += 1
            batches.setdefault(peer, []).append(block_hash)
            in_flight += 1
        for peer, hashes in batches.items():
            self.request_blocks(peer, tuple(hashes))

    # --------------------------------------------------------- announcement
    def announce_block(
        self, block_hash: str, *, exclude: Optional[set[int]] = None
    ) -> int:
        node = self.node
        block = node.blockchain.get_block(block_hash)
        # BIP 130 announces only tips.  While catching up we already hold
        # headers above this block, so announcing it would only re-offer
        # stale inventory to the peer that is ahead of us — at HEADERS wire
        # cost, for every block in the replayed batch.
        if any(height > block.height for height in self._header_heights.values()):
            return 0
        return self._network().broadcast(
            node.node_id,
            HeadersMessage(
                sender=node.node_id,
                headers=(block.header,),
                heights=(block.height,),
            ),
            exclude=exclude,
        )

    # -------------------------------------------------------- headers intake
    def handle_headers(self, sender: int, message: HeadersMessage) -> None:
        node = self.node
        node.stats.headers_received += 1
        self._pending_getheaders.pop(sender, None)
        to_fetch: list[str] = []
        gap = False
        for header, height in zip(message.headers, message.heights):
            block_hash = header.block_hash
            if (
                node.blockchain.has_block(block_hash)
                or block_hash in self._header_heights
            ):
                continue
            parent = header.previous_hash
            if not (
                node.blockchain.has_block(parent) or parent in self._header_heights
            ):
                gap = True
                continue
            self._header_heights[block_hash] = height
            to_fetch.append(block_hash)
        if gap:
            # Intermediate headers are missing; one locator round-trip to
            # the announcer fetches the whole gap.
            self._send_getheaders(sender)
        if not to_fetch and not self._body_queue:
            if not gap:
                node.stats.duplicate_invs += 1
            return
        queued = {entry[0] for entry in self._body_queue}
        fresh = [
            block_hash
            for block_hash in to_fetch
            if block_hash not in node.known_blocks and block_hash not in queued
        ]
        node.stats.header_bodies_requested += len(fresh)
        self._body_queue.extend((block_hash, sender) for block_hash in fresh)
        # Every headers round also sweeps the queue: requests that went stale
        # (the serving peer churned away) get re-issued to whoever is alive.
        self._fill_body_window()


#: Wire commands through which a relay strategy *gives* inventory to peers —
#: announcements (INV, CMPCTBLOCK, HEADERS) and payload deliveries (TX, BLOCK,
#: BLOCKTXN).  Every concrete strategy's outbound relay traffic is a subset of
#: this set; requests (GETDATA, GETHEADERS, GETBLOCKTXN) and the
#: handshake/keep-alive plane are deliberately excluded.  The adversary plane
#: (:mod:`repro.protocol.adversary`) keys its byzantine drop rules on this
#: vocabulary, which is what makes the behaviours strategy-agnostic: a silent
#: node under *any* of the five strategies stops giving and keeps taking.
RELAY_COMMANDS = frozenset(
    {"inv", "tx", "block", "cmpctblock", "blocktxn", "headers"}
)


#: Relay strategies selectable by name (``NodeConfig.relay_strategy``).
RELAY_STRATEGIES: dict[str, type[RelayStrategy]] = {
    FloodRelay.name: FloodRelay,
    CompactBlockRelay.name: CompactBlockRelay,
    PushRelay.name: PushRelay,
    AdaptiveRelay.name: AdaptiveRelay,
    HeadersFirstRelay.name: HeadersFirstRelay,
}

#: Relay names accepted by :func:`build_relay_strategy` / ``build_scenario``.
RELAY_NAMES = tuple(RELAY_STRATEGIES)


def validate_relay_name(name: str) -> str:
    """Check a relay-strategy name and return it.

    Raises:
        ValueError: for an unknown relay name.
    """
    if name not in RELAY_STRATEGIES:
        raise ValueError(f"unknown relay strategy {name!r}; expected one of {RELAY_NAMES}")
    return name


def build_relay_strategy(name: str, node: "BitcoinNode") -> RelayStrategy:
    """Construct the named relay strategy bound to ``node``."""
    return RELAY_STRATEGIES[validate_relay_name(name)](node)
