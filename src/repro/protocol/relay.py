"""Pluggable relay strategies: how a node announces, requests and forwards.

The Fig. 1 INV/GETDATA flooding used to be hardcoded inside
:class:`~repro.protocol.node.BitcoinNode`; this module extracts the whole
message plane behind one interface so the *relay protocol* becomes an
experimental axis, orthogonal to the neighbour-selection policy the paper
studies.  A strategy owns

* inventory announcement (``announce_transaction`` / ``announce_block``),
* GETDATA scheduling with cross-peer de-duplication and timeout-based retry,
* transaction/block forwarding after local acceptance, and
* the per-node in-flight request state (dropped when the session ends).

Three concrete strategies ship:

``flood`` (:class:`FloodRelay`)
    The legacy behaviour: INV to every neighbour, GETDATA on first
    announcement, full TX/BLOCK on request.  Byte-identical to the
    pre-refactor node in static scenarios (pinned by golden-fingerprint
    equivalence tests); under churn the timeout-based GETDATA retry is a
    deliberate improvement — a request whose reply died with a departed peer
    used to suppress duplicate announcements forever.

``compact`` (:class:`CompactBlockRelay`)
    BIP 152-style compact blocks: accepted blocks are pushed as a header plus
    short transaction ids (:class:`~repro.protocol.messages.CmpctBlockMessage`);
    receivers reconstruct from their mempool and fetch only the transactions
    they miss (``GETBLOCKTXN``/``BLOCKTXN``), falling back to a full GETDATA
    when reconstruction cannot complete.  Transaction relay stays INV-based.

``push`` (:class:`PushRelay`)
    Bitcoin-XT-style unsolicited push: accepted blocks are sent in full to
    cluster peers (no INV/GETDATA round-trip on intra-cluster links); links
    outside the cluster fall back to INV announcement.  Under the vanilla
    Bitcoin policy, which builds no cluster links, this degenerates to flood.

Scenarios select a strategy through
:attr:`~repro.protocol.node.NodeConfig.relay_strategy` (or
``build_scenario(..., relay=...)``); register a new one by subclassing
:class:`RelayStrategy` and adding it to :data:`RELAY_STRATEGIES`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.protocol.block import Block, merkle_root
from repro.protocol.messages import (
    BlockMessage,
    BlockTxnMessage,
    CmpctBlockMessage,
    GetBlockTxnMessage,
    GetDataMessage,
    InvMessage,
    InventoryType,
    Message,
    TxMessage,
    short_txid,
)
from repro.protocol.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.protocol.network import P2PNetwork
    from repro.protocol.node import BitcoinNode


class RelayStrategy:
    """Base class: the flood message plane every concrete strategy refines.

    The strategy is the node's relay state machine — it handles the
    inventory-plane messages (:class:`~repro.protocol.messages.InvMessage`,
    ``GETDATA``, ``TX``, ``BLOCK`` and the compact-relay trio), tracks which
    hashes are in flight so the same object is never requested from several
    peers at once, and decides how a locally-accepted object is forwarded.

    Args:
        node: the owning node; the strategy reads/writes its chain, mempool,
            known-inventory sets and statistics counters.
    """

    #: Registry key; concrete subclasses override.
    name = "base"

    def __init__(self, node: "BitcoinNode") -> None:
        self.node = node
        #: In-flight GETDATA state: requested hash -> request time.  A later
        #: INV for a pending hash is suppressed (the cross-peer dedup this
        #: used to leak: the timestamp lets a *stale* request — the serving
        #: peer died, the reply was dropped — be retried from the newly
        #: announcing peer instead of being ignored forever.
        self.pending_tx_requests: dict[str, float] = {}
        self.pending_block_requests: dict[str, float] = {}

    # ------------------------------------------------------------- plumbing
    def _network(self) -> "P2PNetwork":
        return self.node._require_network()

    @property
    def _now(self) -> float:
        return self.node.now

    # ------------------------------------------------------------- dispatch
    def handle_message(self, sender: int, message: Message) -> bool:
        """Dispatch a relay-plane message; returns False for other messages."""
        if isinstance(message, InvMessage):
            self.handle_inv(sender, message)
        elif isinstance(message, GetDataMessage):
            self.handle_getdata(sender, message)
        elif isinstance(message, TxMessage):
            self.handle_tx(sender, message)
        elif isinstance(message, BlockMessage):
            self.handle_block(sender, message)
        elif isinstance(message, CmpctBlockMessage):
            self.handle_cmpct_block(sender, message)
        elif isinstance(message, GetBlockTxnMessage):
            self.handle_get_block_txn(sender, message)
        elif isinstance(message, BlockTxnMessage):
            self.handle_block_txn(sender, message)
        else:
            return False
        return True

    # ------------------------------------------------------ lifecycle hooks
    def on_offline(self) -> None:
        """Session ended: every in-flight request died with the connections."""
        self.pending_tx_requests.clear()
        self.pending_block_requests.clear()

    def note_transaction_received(self, txid: str) -> None:
        """The transaction arrived (by any path); it is no longer in flight."""
        self.pending_tx_requests.pop(txid, None)

    def note_block_received(self, block_hash: str) -> None:
        """The block arrived (by any path); it is no longer in flight."""
        self.pending_block_requests.pop(block_hash, None)

    # --------------------------------------------------------- announcement
    def announce_transaction(self, txid: str, *, exclude: Optional[set[int]] = None) -> int:
        """Send an INV for ``txid`` to every neighbour (minus ``exclude``)."""
        node = self.node
        message = InvMessage(
            sender=node.node_id,
            inventory_type=InventoryType.TRANSACTION,
            hashes=(txid,),
        )
        count = self._network().broadcast(node.node_id, message, exclude=exclude)
        for listener in node.announcement_listeners:
            listener(node.node_id, txid, self._now)
        return count

    def announce_block(self, block_hash: str, *, exclude: Optional[set[int]] = None) -> int:
        """Send an INV for a block to every neighbour (minus ``exclude``)."""
        node = self.node
        message = InvMessage(
            sender=node.node_id,
            inventory_type=InventoryType.BLOCK,
            hashes=(block_hash,),
        )
        return self._network().broadcast(node.node_id, message, exclude=exclude)

    # --------------------------------------------------------- INV / GETDATA
    def handle_inv(self, sender: int, message: InvMessage) -> None:
        node = self.node
        node.stats.invs_received += 1
        network = self._network()
        if message.inventory_type is InventoryType.TRANSACTION:
            unknown, stale = self._classify(
                message.hashes,
                node.known_transactions,
                self.pending_tx_requests,
                confirmed=(
                    node.blockchain.contains_transaction
                    if node.config.prune_depth is not None
                    else None
                ),
            )
            to_request = unknown + stale
            if not to_request:
                node.stats.duplicate_invs += 1
                return
            now = self._now
            for txid in unknown:
                node.transaction_first_seen_times.setdefault(txid, now)
            self.pending_tx_requests.update((txid, now) for txid in to_request)
            node.stats.getdata_sent += 1
            network.send(
                node.node_id,
                sender,
                GetDataMessage(
                    sender=node.node_id,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=tuple(to_request),
                ),
            )
        else:
            unknown, stale = self._classify(
                message.hashes,
                node.known_blocks,
                self.pending_block_requests,
                confirmed=(
                    node.blockchain.has_block
                    if node.config.prune_depth is not None
                    else None
                ),
            )
            to_request = unknown + stale
            if not to_request:
                node.stats.duplicate_invs += 1
                return
            self.request_blocks(sender, tuple(to_request))

    def _classify(
        self,
        hashes: tuple[str, ...],
        known: set[str],
        pending: dict[str, float],
        confirmed: Optional[Callable[[str], bool]] = None,
    ) -> tuple[list[str], list[str]]:
        """Split announced hashes into (never requested, stale in-flight).

        A hash with a *fresh* in-flight request is suppressed — the same
        object is never fetched from several peers at once — and counted in
        ``stats.getdata_saved``.  A pending request older than
        ``NodeConfig.getdata_retry_s`` is considered lost (the serving peer
        churned away, the reply was dropped with a link) and re-issued to the
        announcing peer, counted in ``stats.getdata_retries``.

        ``confirmed`` is the pruning escape hatch (``NodeConfig.prune_depth``):
        a hash absent from the inventory set but confirmed on the best chain
        was *pruned*, not forgotten, and is treated exactly like a known hash
        instead of being re-requested.
        """
        node = self.node
        retry_after = node.config.getdata_retry_s
        now = self._now
        unknown: list[str] = []
        stale: list[str] = []
        for h in hashes:
            if h in known:
                continue
            if confirmed is not None and confirmed(h):
                continue
            requested_at = pending.get(h)
            if requested_at is None:
                unknown.append(h)
            elif now - requested_at > retry_after:
                stale.append(h)
            else:
                node.stats.getdata_saved += 1
        node.stats.getdata_retries += len(stale)
        return unknown, stale

    def request_blocks(self, peer: int, hashes: tuple[str, ...]) -> None:
        """Issue a block GETDATA to ``peer`` and mark the hashes in flight."""
        now = self._now
        self.pending_block_requests.update((h, now) for h in hashes)
        self._network().send(
            self.node.node_id,
            peer,
            GetDataMessage(
                sender=self.node.node_id, inventory_type=InventoryType.BLOCK, hashes=hashes
            ),
        )

    def handle_getdata(self, sender: int, message: GetDataMessage) -> None:
        node = self.node
        network = self._network()
        if message.inventory_type is InventoryType.TRANSACTION:
            for txid in message.hashes:
                tx = node.mempool.get(txid)
                if tx is None:
                    tx = node._conflict_store.get(txid)
                if tx is None:
                    tx = node.find_confirmed_transaction(txid)
                if tx is not None:
                    network.send(node.node_id, sender, TxMessage(sender=node.node_id, transaction=tx))
        else:
            for block_hash in message.hashes:
                if node.blockchain.has_block(block_hash):
                    network.send(
                        node.node_id,
                        sender,
                        BlockMessage(sender=node.node_id, block=node.blockchain.get_block(block_hash)),
                    )

    # ------------------------------------------------------------ TX / BLOCK
    def handle_tx(self, sender: int, message: TxMessage) -> None:
        node = self.node
        if message.transaction is None:
            return
        tx = message.transaction
        if tx.txid in node.known_transactions and tx.txid not in self.pending_tx_requests:
            return
        result = node.accept_transaction(tx, origin_peer=sender)
        if not result.valid:
            return
        if not node.config.relay_transactions:
            return
        relay_delay = result.verification_cost_s if node.config.verification_enabled else 0.0
        simulator = self._network().simulator
        txid = tx.txid
        simulator.schedule(
            relay_delay,
            lambda: self._relay_transaction(txid, exclude_peer=sender),
            label=f"relay:{node.node_id}",
        )

    def _relay_transaction(self, txid: str, *, exclude_peer: int) -> None:
        node = self.node
        if txid not in node.mempool and not node.blockchain.contains_transaction(txid):
            return
        node.stats.transactions_relayed += 1
        self.announce_transaction(txid, exclude={exclude_peer})

    def handle_block(self, sender: int, message: BlockMessage) -> None:
        if message.block is None:
            return
        self.node.accept_block(message.block, origin_peer=sender)

    # -------------------------------------------------------- compact plane
    def handle_cmpct_block(self, sender: int, message: CmpctBlockMessage) -> None:
        """Graceful interop: a non-compact node asks for the full block."""
        node = self.node
        if message.header is None:
            return
        block_hash = message.block_hash
        if block_hash in node.known_blocks or node.blockchain.has_block(block_hash):
            return
        requested_at = self.pending_block_requests.get(block_hash)
        if requested_at is not None:
            if self._now - requested_at <= node.config.getdata_retry_s:
                return
            node.stats.getdata_retries += 1
        self.request_blocks(sender, (block_hash,))

    def handle_get_block_txn(self, sender: int, message: GetBlockTxnMessage) -> None:
        """Serve the requested block transactions (any strategy can)."""
        node = self.node
        if not node.blockchain.has_block(message.block_hash):
            return
        block = node.blockchain.get_block(message.block_hash)
        indexes = tuple(i for i in message.indexes if 0 <= i < len(block.transactions))
        if not indexes:
            return
        self._network().send(
            node.node_id,
            sender,
            BlockTxnMessage(
                sender=node.node_id,
                block_hash=message.block_hash,
                indexes=indexes,
                transactions=tuple(block.transactions[i] for i in indexes),
            ),
        )

    def handle_block_txn(self, sender: int, message: BlockTxnMessage) -> None:
        """Only the compact strategy has reconstructions to complete."""


class FloodRelay(RelayStrategy):
    """The legacy INV/GETDATA/TX flood — the default, byte-identical relay."""

    name = "flood"


@dataclass
class _Reconstruction:
    """A compact block waiting for its missing transactions."""

    header: object
    height: int
    slots: list[Optional[Transaction]]
    origin: int
    missing: set[int] = field(default_factory=set)
    requested_at: float = 0.0


class CompactBlockRelay(FloodRelay):
    """BIP 152-style compact block relay (transactions still flood via INV).

    An accepted block is pushed to every neighbour (minus the origin) as a
    header plus short ids.  The receiver fills the transaction slots from its
    mempool; fully-reconstructed blocks are accepted immediately, otherwise
    the missing indexes are fetched with one GETBLOCKTXN round-trip.  If the
    reconstruction still cannot be completed — the serving peer lost the
    block, or a short-id collision corrupted a slot (detected by Merkle-root
    mismatch) — the node falls back to a plain full-block GETDATA.
    """

    name = "compact"

    def __init__(self, node: "BitcoinNode") -> None:
        super().__init__(node)
        #: Partially-reconstructed blocks: block hash -> reconstruction state.
        self._reconstructions: dict[str, _Reconstruction] = {}

    def on_offline(self) -> None:
        super().on_offline()
        self._reconstructions.clear()

    def note_block_received(self, block_hash: str) -> None:
        super().note_block_received(block_hash)
        self._reconstructions.pop(block_hash, None)

    # --------------------------------------------------------- announcement
    def announce_block(self, block_hash: str, *, exclude: Optional[set[int]] = None) -> int:
        node = self.node
        block = node.blockchain.get_block(block_hash)
        message = CmpctBlockMessage(
            sender=node.node_id,
            header=block.header,
            height=block.height,
            short_ids=tuple(short_txid(tx.txid) for tx in block.transactions[1:]),
            coinbase=block.transactions[0] if block.transactions else None,
        )
        return self._network().broadcast(node.node_id, message, exclude=exclude)

    # ------------------------------------------------------- reconstruction
    def handle_cmpct_block(self, sender: int, message: CmpctBlockMessage) -> None:
        node = self.node
        if message.header is None:
            return
        node.stats.compact_blocks_received += 1
        block_hash = message.block_hash
        if block_hash in node.known_blocks or node.blockchain.has_block(block_hash):
            return
        # An in-flight reconstruction or full-block fetch suppresses duplicate
        # announcements — unless it has gone stale (the serving peer churned
        # away mid-round-trip), in which case this fresh announcement takes
        # over, mirroring the flood path's GETDATA retry.
        now = self._now
        retry_after = node.config.getdata_retry_s
        pending = self._reconstructions.get(block_hash)
        if pending is not None:
            if now - pending.requested_at <= retry_after:
                return
            del self._reconstructions[block_hash]
            node.stats.getdata_retries += 1
        requested_at = self.pending_block_requests.get(block_hash)
        if requested_at is not None:
            if now - requested_at <= retry_after:
                return
            # The dead full-block request is superseded by this announcement;
            # drop it so it cannot count as stale again on the next one.
            del self.pending_block_requests[block_hash]
            node.stats.getdata_retries += 1
        if message.coinbase is None:
            # Unreconstructable announcement; fetch the full block instead.
            self.request_blocks(sender, (block_hash,))
            return
        slots: list[Optional[Transaction]] = [None] * (len(message.short_ids) + 1)
        slots[0] = message.coinbase
        index = self._short_id_index()
        missing: list[int] = []
        for position, sid in enumerate(message.short_ids, start=1):
            tx = index.get(sid)
            if tx is not None:
                slots[position] = tx
            else:
                missing.append(position)
        if missing:
            self._reconstructions[block_hash] = _Reconstruction(
                header=message.header,
                height=message.height,
                slots=slots,
                origin=sender,
                missing=set(missing),
                requested_at=now,
            )
            node.stats.compact_txs_requested += len(missing)
            self._network().send(
                node.node_id,
                sender,
                GetBlockTxnMessage(
                    sender=node.node_id,
                    block_hash=block_hash,
                    indexes=tuple(missing),
                ),
            )
            return
        self._complete(block_hash, message.header, message.height, slots, origin=sender)

    def _short_id_index(self) -> dict[str, Transaction]:
        """Short id -> transaction over everything reconstructible locally.

        Short-id collisions inside the mempool resolve arbitrarily; the
        Merkle check in :meth:`_complete` catches a wrong pick and falls back
        to a full-block fetch, exactly like BIP 152 prescribes.
        """
        return {short_txid(tx.txid): tx for tx in self.node.mempool.transactions()}

    def handle_block_txn(self, sender: int, message: BlockTxnMessage) -> None:
        pending = self._reconstructions.get(message.block_hash)
        if pending is None:
            return
        for position, tx in zip(message.indexes, message.transactions):
            if 0 <= position < len(pending.slots):
                pending.slots[position] = tx
                pending.missing.discard(position)
        if pending.missing:
            # The server could not provide everything; fall back.
            self._fallback(message.block_hash, pending.origin)
            return
        del self._reconstructions[message.block_hash]
        self._complete(
            message.block_hash, pending.header, pending.height, pending.slots, origin=pending.origin
        )

    def _complete(
        self,
        block_hash: str,
        header: object,
        height: int,
        slots: list[Optional[Transaction]],
        *,
        origin: int,
    ) -> None:
        node = self.node
        transactions = tuple(tx for tx in slots if tx is not None)
        if len(transactions) != len(slots) or merkle_root(transactions) != header.merkle_root:
            # A short-id collision filled a slot with the wrong transaction.
            self._fallback(block_hash, origin)
            return
        block = Block(header=header, transactions=transactions, height=height)
        node.stats.compact_blocks_reconstructed += 1
        node.accept_block(block, origin_peer=origin)

    def _fallback(self, block_hash: str, origin: int) -> None:
        node = self.node
        self._reconstructions.pop(block_hash, None)
        node.stats.compact_fallbacks += 1
        if not node.blockchain.has_block(block_hash):
            self.request_blocks(origin, (block_hash,))


class PushRelay(FloodRelay):
    """Unsolicited full-block push over cluster links (Bitcoin-XT style).

    Intra-cluster links are latency-picked by the clustering policy, so
    skipping the INV/GETDATA round-trip there buys the biggest Δt win per
    redundant byte; links outside the cluster (long maintenance links, the
    whole overlay under the vanilla policy) keep the polite INV announcement.
    """

    name = "push"

    def announce_block(self, block_hash: str, *, exclude: Optional[set[int]] = None) -> int:
        node = self.node
        network = self._network()
        excluded = exclude or set()
        topology = network.topology
        cluster_peers: list[int] = []
        inv_peers: list[int] = []
        for peer in network.neighbors(node.node_id):
            if peer in excluded:
                continue
            if topology.link(node.node_id, peer).is_cluster_link:
                cluster_peers.append(peer)
            else:
                inv_peers.append(peer)
        count = 0
        if cluster_peers:
            block = node.blockchain.get_block(block_hash)
            pushed = network.multicast(
                node.node_id,
                cluster_peers,
                BlockMessage(sender=node.node_id, block=block),
            )
            node.stats.blocks_pushed += pushed
            count += pushed
        if inv_peers:
            count += network.multicast(
                node.node_id,
                inv_peers,
                InvMessage(
                    sender=node.node_id,
                    inventory_type=InventoryType.BLOCK,
                    hashes=(block_hash,),
                ),
            )
        return count


#: Relay strategies selectable by name (``NodeConfig.relay_strategy``).
RELAY_STRATEGIES: dict[str, type[RelayStrategy]] = {
    FloodRelay.name: FloodRelay,
    CompactBlockRelay.name: CompactBlockRelay,
    PushRelay.name: PushRelay,
}

#: Relay names accepted by :func:`build_relay_strategy` / ``build_scenario``.
RELAY_NAMES = tuple(RELAY_STRATEGIES)


def validate_relay_name(name: str) -> str:
    """Check a relay-strategy name and return it.

    Raises:
        ValueError: for an unknown relay name.
    """
    if name not in RELAY_STRATEGIES:
        raise ValueError(f"unknown relay strategy {name!r}; expected one of {RELAY_NAMES}")
    return name


def build_relay_strategy(name: str, node: "BitcoinNode") -> RelayStrategy:
    """Construct the named relay strategy bound to ``node``."""
    return RELAY_STRATEGIES[validate_relay_name(name)](node)
