"""Bitcoin protocol substrate.

Implements the pieces of the Bitcoin system the paper's evaluation depends on:

* :mod:`repro.protocol.crypto` — keypairs, addresses and signatures (a
  deterministic SHA-256 stand-in for ECDSA; see DESIGN.md substitutions);
* :mod:`repro.protocol.transaction` — transactions with inputs/outputs;
* :mod:`repro.protocol.utxo` — the unspent-output ledger;
* :mod:`repro.protocol.block` / :mod:`repro.protocol.blockchain` — blocks and
  a fork-capable chain;
* :mod:`repro.protocol.validation` — transaction/block validation with an
  explicit verification-cost model (the delay the paper blames for slow
  propagation);
* :mod:`repro.protocol.mempool` — per-node pool of unconfirmed transactions;
* :mod:`repro.protocol.messages` — the P2P message vocabulary (VERSION, INV,
  GETDATA, TX, CMPCTBLOCK, PING/PONG, ADDR, JOIN, ...);
* :mod:`repro.protocol.node` — the peer: wallet, mempool, chain and intake;
* :mod:`repro.protocol.relay` — pluggable relay strategies (flood / compact
  blocks / cluster push) that own the node's message plane;
* :mod:`repro.protocol.network` — wires nodes, links and the event engine
  together and delivers messages with realistic delays;
* :mod:`repro.protocol.discovery` — DNS seeds and ADDR gossip;
* :mod:`repro.protocol.mining` — simplified proof-of-work block production;
* :mod:`repro.protocol.doublespend` — the race attacker used by the
  double-spend experiment;
* :mod:`repro.protocol.adversary` — the adversary plane: byzantine relay
  behaviours (silent / selective / delay) filtered at the network's send
  choke point, and Eyal–Sirer selfish-mining block withholding.

Public entry points: :class:`~repro.protocol.node.BitcoinNode` (the peer,
including its observer hooks ``transaction_listeners`` /
``block_listeners``, the measurement and analysis planes' capture points),
:class:`~repro.protocol.network.P2PNetwork` (delivery fabric),
:class:`~repro.protocol.relay.RelayStrategy` (pluggable relay, selected by
``NodeConfig.relay_strategy``) and :class:`~repro.protocol.mining.MiningProcess`.
"""

from repro.protocol.block import Block, BlockHeader
from repro.protocol.adversary import (
    ByzantineBehavior,
    DelayByzantine,
    SelectiveByzantine,
    SelfishMiner,
    SilentByzantine,
)
from repro.protocol.blockchain import Blockchain
from repro.protocol.crypto import KeyPair, sha256_hex, sign, verify_signature
from repro.protocol.discovery import AddressBook, DnsSeedService
from repro.protocol.mempool import Mempool
from repro.protocol.messages import (
    AddrMessage,
    BlockMessage,
    BlockTxnMessage,
    ClusterMembersMessage,
    CmpctBlockMessage,
    GetAddrMessage,
    GetBlockTxnMessage,
    GetDataMessage,
    InvMessage,
    InventoryType,
    JoinAcceptMessage,
    JoinMessage,
    Message,
    PingMessage,
    PongMessage,
    TxMessage,
    VerackMessage,
    VersionMessage,
)
from repro.protocol.network import P2PNetwork
from repro.protocol.node import BitcoinNode, NodeConfig
from repro.protocol.relay import (
    RELAY_NAMES,
    RELAY_STRATEGIES,
    CompactBlockRelay,
    FloodRelay,
    PushRelay,
    RelayStrategy,
    build_relay_strategy,
    validate_relay_name,
)
from repro.protocol.transaction import Transaction, TxInput, TxOutput
from repro.protocol.utxo import UtxoSet
from repro.protocol.validation import TransactionValidator, ValidationResult

__all__ = [
    "AddrMessage",
    "AddressBook",
    "BitcoinNode",
    "Block",
    "BlockHeader",
    "BlockMessage",
    "BlockTxnMessage",
    "Blockchain",
    "ByzantineBehavior",
    "ClusterMembersMessage",
    "CmpctBlockMessage",
    "CompactBlockRelay",
    "DelayByzantine",
    "DnsSeedService",
    "FloodRelay",
    "GetAddrMessage",
    "GetBlockTxnMessage",
    "GetDataMessage",
    "InvMessage",
    "InventoryType",
    "JoinAcceptMessage",
    "JoinMessage",
    "KeyPair",
    "Mempool",
    "Message",
    "NodeConfig",
    "P2PNetwork",
    "PingMessage",
    "PongMessage",
    "PushRelay",
    "RELAY_NAMES",
    "RELAY_STRATEGIES",
    "RelayStrategy",
    "SelectiveByzantine",
    "SelfishMiner",
    "SilentByzantine",
    "Transaction",
    "TransactionValidator",
    "TxInput",
    "TxMessage",
    "TxOutput",
    "UtxoSet",
    "ValidationResult",
    "VerackMessage",
    "VersionMessage",
    "build_relay_strategy",
    "sha256_hex",
    "validate_relay_name",
    "sign",
    "verify_signature",
]
