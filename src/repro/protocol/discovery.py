"""Peer discovery: DNS seeds and the address book.

Section IV.B of the paper: a node joining for the first time learns about
available peers from DNS seed services.  Under BCBPT the seed additionally
ranks the returned peers by geographic proximity to the requester ("DNS
service nodes should recommend available nodes to the node N based on the
proximity in the physical geographical location"), because geographic distance
is usually a decent first approximation of topological distance.  After
joining, nodes keep discovering peers through the normal ADDR-gossip
mechanism, modelled here by sampling from the set of currently-online peers.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.net.geo import EARTH_RADIUS_KM, GeoPosition


class AddressBook:
    """A node's view of known peer addresses with basic bookkeeping."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._addresses: set[int] = set()
        self._last_seen: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._addresses)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._addresses

    def add(self, node_id: int, *, seen_at: float = 0.0) -> None:
        """Record a peer address (the owner itself is never recorded)."""
        if node_id == self.owner_id:
            return
        self._addresses.add(node_id)
        previous = self._last_seen.get(node_id, -1.0)
        if seen_at >= previous:
            self._last_seen[node_id] = seen_at

    def update(self, node_ids: Sequence[int], *, seen_at: float = 0.0) -> None:
        """Record many peer addresses."""
        for node_id in node_ids:
            self.add(node_id, seen_at=seen_at)

    def addresses(self) -> list[int]:
        """All known addresses, sorted for determinism."""
        return sorted(self._addresses)

    def last_seen(self, node_id: int) -> Optional[float]:
        """Most recent time the address was advertised to us."""
        return self._last_seen.get(node_id)

    def sample(self, rng: np.random.Generator, count: int) -> list[int]:
        """A uniform random sample of known addresses (without replacement)."""
        known = self.addresses()
        if count >= len(known):
            return known
        picked = rng.choice(len(known), size=count, replace=False)
        return [known[i] for i in picked]


class DnsSeedService:
    """The DNS seed used during bootstrap.

    Args:
        positions: geographic position of every node in the population.
        rng: random stream used for the vanilla (unranked) seed behaviour.
        seed_sample_size: how many addresses one DNS query returns.
    """

    def __init__(
        self,
        positions: dict[int, GeoPosition],
        rng: np.random.Generator,
        *,
        seed_sample_size: int = 25,
    ) -> None:
        if seed_sample_size <= 0:
            raise ValueError(f"seed_sample_size must be positive, got {seed_sample_size}")
        self._positions = positions
        self._rng = rng
        self.seed_sample_size = seed_sample_size
        self._online: set[int] = set()
        self.queries_served = 0
        # Position columns for the vectorised proximity prefilter: id -> row,
        # plus latitude/longitude arrays in row order.  Positions are
        # immutable, so this is built once.
        ids = sorted(positions)
        self._row_of = {node_id: row for row, node_id in enumerate(ids)}
        self._latitudes = np.array([positions[i].latitude for i in ids], dtype=np.float64)
        self._longitudes = np.array([positions[i].longitude for i in ids], dtype=np.float64)

    # ------------------------------------------------------------- liveness
    def set_online(self, node_id: int, online: bool) -> None:
        """Track which nodes the seed may return (only reachable ones)."""
        if online:
            self._online.add(node_id)
        else:
            self._online.discard(node_id)

    def online_count(self) -> int:
        """Number of nodes the seed currently considers reachable."""
        return len(self._online)

    # -------------------------------------------------------------- queries
    def query(self, requester_id: int) -> list[int]:
        """Vanilla Bitcoin behaviour: a random sample of reachable peers."""
        self.queries_served += 1
        candidates = sorted(peer for peer in self._online if peer != requester_id)
        if len(candidates) <= self.seed_sample_size:
            return candidates
        picked = self._rng.choice(len(candidates), size=self.seed_sample_size, replace=False)
        return [candidates[i] for i in picked]

    def query_proximity_ranked(self, requester_id: int) -> list[int]:
        """BCBPT bootstrap behaviour (Section IV.B): peers ranked by geographic distance.

        The ranking uses *geographic* distance because that is all a DNS seed
        can know; the requesting node then refines the ordering with actual
        ping measurements.
        """
        self.queries_served += 1
        requester_position = self._positions.get(requester_id)
        candidates = [peer for peer in self._online if peer != requester_id]
        if requester_position is None:
            return sorted(candidates)[: self.seed_sample_size]
        if len(candidates) > max(4 * self.seed_sample_size, 64):
            candidates = self._prefilter_by_distance(requester_position, candidates)
        ranked = sorted(
            candidates,
            key=lambda peer: (
                requester_position.distance_km(self._positions[peer]),
                peer,
            ),
        )
        return ranked[: self.seed_sample_size]

    def _prefilter_by_distance(
        self, origin: GeoPosition, candidates: list[int]
    ) -> list[int]:
        """Shrink ``candidates`` to a superset of the ``k`` closest peers.

        One vectorised haversine pass picks the cut.  numpy transcendentals
        and ``math``'s can differ in the last ulp, so the approximate
        distances are *never* used for the final ordering — the caller's
        exact scalar sort still decides that — and the cut keeps everything
        within a 1-metre margin of the k-th approximate distance, far wider
        than the sub-micrometre float discrepancy.  The ranking is therefore
        byte-identical to sorting the full candidate list, at O(n) vector
        work instead of O(n) scalar haversines per query.
        """
        k = self.seed_sample_size
        rows = np.fromiter(
            (self._row_of[peer] for peer in candidates),
            dtype=np.int64,
            count=len(candidates),
        )
        phi1 = math.radians(origin.latitude)
        phi2 = np.radians(self._latitudes[rows])
        dphi = np.radians(self._latitudes[rows] - origin.latitude)
        dlambda = np.radians(self._longitudes[rows] - origin.longitude)
        a = np.sin(dphi / 2.0) ** 2 + math.cos(phi1) * np.cos(phi2) * np.sin(dlambda / 2.0) ** 2
        distance = 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(np.minimum(1.0, a)))
        cutoff = np.partition(distance, k - 1)[k - 1] + 1e-3
        keep = distance <= cutoff
        return [peer for peer, kept in zip(candidates, keep) if kept]
