"""The Bitcoin node: wallet, mempool, chain and the relay strategy that moves them.

Every peer in the simulation runs this class.  The node owns *what it knows*
— the blockchain, the mempool, the UTXO view, the address book — while *how
objects travel* (INV announcement, GETDATA scheduling, forwarding) is
delegated to a pluggable :class:`~repro.protocol.relay.RelayStrategy` chosen
by :attr:`NodeConfig.relay_strategy`.  The default ``flood`` strategy follows
Fig. 1 of the paper and the standard Bitcoin relay rules:

1. on creating or fully verifying a transaction, announce it to every
   neighbour with an ``INV`` (never push the full transaction unsolicited);
2. on receiving an ``INV`` for an unknown transaction, reply with ``GETDATA``;
3. on receiving ``GETDATA``, send the full ``TX``;
4. on receiving a ``TX``, verify it against the local ledger (charging the
   verification cost as a delay) and, if valid, go to step 1.

Blocks follow the same INV/GETDATA/BLOCK pattern under ``flood``; the
``compact`` and ``push`` strategies replace the block half of that plane (see
:mod:`repro.protocol.relay`).  The node itself still answers ``GETADDR`` with
a sample of known addresses, responds to ``PING``, and forwards
cluster-control messages (``JOIN``, ``CLUSTER_MEMBERS``) to whatever
neighbour-selection policy is attached to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, TYPE_CHECKING

from repro.protocol.blockchain import Blockchain
from repro.protocol.block import Block
from repro.protocol.crypto import KeyPair
from repro.protocol.mempool import Mempool
from repro.protocol.messages import (
    AddrMessage,
    ClusterMembersMessage,
    GetAddrMessage,
    InvMessage,
    InventoryType,
    JoinAcceptMessage,
    JoinMessage,
    Message,
    PingMessage,
    PongMessage,
    VerackMessage,
    VersionMessage,
)
from repro.protocol.relay import build_relay_strategy
from repro.protocol.transaction import Transaction
from repro.protocol.utxo import UtxoSet
from repro.protocol.validation import TransactionValidator, ValidationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.net.geo import GeoPosition
    from repro.protocol.network import P2PNetwork


class ClusterMessageListener(Protocol):
    """Interface a clustering policy implements to receive cluster-control messages."""

    def on_join_request(self, node: "BitcoinNode", sender: int, message: JoinMessage) -> None:
        """Handle a JOIN request arriving at ``node``."""

    def on_join_accept(self, node: "BitcoinNode", sender: int, message: JoinAcceptMessage) -> None:
        """Handle a JOIN_ACCEPT arriving at ``node``."""

    def on_cluster_members(
        self, node: "BitcoinNode", sender: int, message: ClusterMembersMessage
    ) -> None:
        """Handle a CLUSTER_MEMBERS list arriving at ``node``."""


@dataclass
class NodeConfig:
    """Tunable per-node behaviour.

    Attributes:
        max_outbound: outbound connections a node tries to maintain (Bitcoin
            Core's default is 8).
        max_connections: hard cap including inbound connections.
        addr_sample_size: how many addresses to return to a GETADDR.
        relay_transactions: whether the node relays transactions at all
            (miners and ordinary nodes do; a measuring node may not).
        verification_enabled: whether to charge the verification delay before
            relaying (the paper's baseline behaviour; pipelined relay per
            Stathakopoulou'15 can be modelled by disabling it).
        relay_conflicts: whether to relay the *first* transaction observed to
            conflict with a mempool transaction (a "double-spend alert", after
            Bitcoin XT's relay-first-double-spend behaviour).  The conflicting
            transaction is never admitted to the mempool — first-seen still
            wins — but announcing it once lets every node, in particular a
            merchant holding the victim transaction, learn that a conflict
            exists.  Off by default: vanilla Bitcoin (the paper's baseline)
            drops conflicting transactions silently, and relaying them also
            accelerates both race waves, which would perturb first-seen
            shares; the double-spend experiment opts in explicitly.
        resync_on_reconnect: whether each endpoint of a *new* connection
            announces its best-chain tip and mempool inventory to the other
            (the INV half of Bitcoin's initial sync).  This is what lets a
            node that left and rejoined mid-run converge back to the best
            chain and catch up on transactions it missed while offline.  Off
            by default: static-topology experiments never lose state, and the
            extra INV traffic during topology construction would perturb the
            paper-figure baselines; churn scenarios
            (:class:`~repro.workloads.scenarios.ChurnSchedule`) opt in.
        relay_strategy: name of the :class:`~repro.protocol.relay.RelayStrategy`
            the node runs (``"flood"``, ``"compact"``, ``"push"``,
            ``"adaptive"`` or ``"headers"`` — see
            :data:`~repro.protocol.relay.RELAY_NAMES`).  ``"flood"`` is the
            paper's INV/GETDATA baseline and reproduces the pre-strategy
            behaviour byte-for-byte in static scenarios; under churn the
            ``getdata_retry_s`` timeout additionally recovers requests whose
            reply died with a departed peer.
        getdata_retry_s: how long an in-flight GETDATA may stay unanswered
            before a *duplicate* INV for the same hash re-requests it from the
            newly-announcing peer.  Until then duplicate announcements are
            suppressed (the cross-peer request dedup), counted in
            ``NodeStatistics.getdata_saved``.
        max_orphan_blocks: cap on blocks stashed while their parent is still
            missing; the oldest stashed block is evicted first (bounded FIFO),
            so heavy churn cannot grow the orphan pool without limit.
        mempool_max_size: cap on unconfirmed transactions the mempool holds
            (:class:`~repro.protocol.mempool.Mempool` ``max_size``).  A
            transaction rejected *only* because the pool is at capacity is
            forgotten again (``stats.mempool_capacity_drops``) so a later INV
            can re-offer it once the pool drains.  None (the default) leaves
            the pool unbounded, the historical behaviour.
        prune_depth: when set, inventory state about blocks buried at least
            this many confirmations deep — ``known_blocks`` entries, the
            ``known_transactions`` / first-seen / accept-time records of their
            confirmed transactions — is dropped after each best-chain
            extension.  The blockchain itself is never pruned; a late INV for
            a pruned hash is answered from the chain index instead of the
            inventory sets, so behaviour is unchanged.  None (the default)
            keeps every record forever, which is exact but grows without bound
            on long runs at 10k-node scale.
    """

    max_outbound: int = 8
    max_connections: int = 125
    addr_sample_size: int = 23
    relay_transactions: bool = True
    verification_enabled: bool = True
    relay_conflicts: bool = False
    resync_on_reconnect: bool = False
    relay_strategy: str = "flood"
    getdata_retry_s: float = 30.0
    max_orphan_blocks: int = 64
    mempool_max_size: Optional[int] = None
    prune_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.getdata_retry_s <= 0:
            raise ValueError("getdata_retry_s must be positive")
        if self.max_orphan_blocks <= 0:
            raise ValueError("max_orphan_blocks must be positive")
        if self.mempool_max_size is not None and self.mempool_max_size < 1:
            raise ValueError("mempool_max_size must be at least 1 (or None for unbounded)")
        if self.prune_depth is not None and self.prune_depth < 1:
            raise ValueError("prune_depth must be at least 1 (or None to disable)")


@dataclass
class NodeStatistics:
    """Counters a node keeps about its own activity."""

    transactions_created: int = 0
    transactions_accepted: int = 0
    transactions_rejected: int = 0
    transactions_relayed: int = 0
    blocks_accepted: int = 0
    invs_received: int = 0
    getdata_sent: int = 0
    pings_received: int = 0
    duplicate_invs: int = 0
    sessions_ended: int = 0
    reconnect_syncs: int = 0
    #: Duplicate in-flight GETDATA requests suppressed by the cross-peer dedup.
    getdata_saved: int = 0
    #: Timed-out in-flight requests re-issued to a newly-announcing peer.
    getdata_retries: int = 0
    #: Orphan blocks dropped by the bounded pool's FIFO eviction.
    orphans_evicted: int = 0
    #: Compact-relay activity (``relay_strategy="compact"`` only).
    compact_blocks_received: int = 0
    compact_blocks_reconstructed: int = 0
    compact_txs_requested: int = 0
    compact_fallbacks: int = 0
    #: GETBLOCKTXN round-trips that timed out and fell back to a full fetch.
    compact_txn_timeouts: int = 0
    #: Full blocks pushed unsolicited to cluster peers (``"push"`` only).
    blocks_pushed: int = 0
    #: Transactions rejected *only* because the mempool was at capacity; the
    #: txid is deliberately forgotten so a later INV can re-offer it.
    mempool_capacity_drops: int = 0
    #: Pending transactions evicted from the full mempool by a higher-feerate
    #: arrival; the evicted txid is forgotten just like a capacity drop.
    mempool_fee_evictions: int = 0
    #: Pending transactions dropped because a confirmed block spent one of
    #: their inputs (or, after a reorg, left them unspendable).  The txid
    #: stays remembered — the transaction is permanently dead.
    mempool_conflict_evictions: int = 0
    #: Adaptive fan-out width adjustments (``relay_strategy="adaptive"``).
    adaptive_fanout_widened: int = 0
    adaptive_fanout_narrowed: int = 0
    #: Headers-first sync activity (``relay_strategy="headers"``).
    getheaders_sent: int = 0
    headers_received: int = 0
    header_bodies_requested: int = 0
    #: Stale-state pruning sweeps executed (``prune_depth`` set only).
    state_prunes: int = 0
    #: Inventory records (known hashes, first-seen/accept times) pruned.
    pruned_inventory_entries: int = 0


class BitcoinNode:
    """A simulated Bitcoin peer.

    Args:
        node_id: unique integer id.
        position: geographic position (drives link latency).
        network: the message fabric; assigned via :meth:`attach` or by passing
            it here.
        config: behavioural knobs.
        validator: transaction/block validator (shared across nodes is fine —
            it is stateless apart from its cost model).
        keypair: the node's wallet key; generated from the node id if omitted.
        genesis: genesis block shared by the whole network.
    """

    def __init__(
        self,
        node_id: int,
        position: "GeoPosition",
        *,
        network: Optional["P2PNetwork"] = None,
        config: Optional[NodeConfig] = None,
        validator: Optional[TransactionValidator] = None,
        keypair: Optional[KeyPair] = None,
        genesis: Optional[Block] = None,
    ) -> None:
        self.node_id = node_id
        self.position = position
        self.network = network
        self.config = config if config is not None else NodeConfig()
        self.validator = validator if validator is not None else TransactionValidator()
        self.keypair = keypair if keypair is not None else KeyPair.generate(f"node-{node_id}-wallet")
        self.blockchain = Blockchain(genesis)
        self.mempool = Mempool(max_size=self.config.mempool_max_size)
        self.stats = NodeStatistics()

        #: Confirmed UTXO state; kept incrementally in sync with the best chain.
        self.utxo = self.blockchain.utxo_set()
        #: Transaction ids this node has seen (announced, requested or accepted).
        self.known_transactions: set[str] = set()
        #: Block hashes this node has seen.
        self.known_blocks: set[str] = {self.blockchain.genesis.block_hash}
        #: The relay strategy: owns announcement, GETDATA scheduling and
        #: forwarding, plus the in-flight request state.
        self.relay = build_relay_strategy(self.config.relay_strategy, self)
        #: Peer addresses learned through ADDR gossip and the DNS seed.
        self.address_book: set[int] = set()
        #: Time each accepted transaction was first accepted locally.
        self.transaction_accept_times: dict[str, float] = {}
        #: Time each transaction id was first *heard of* (INV, TX or local
        #: creation) — reception of knowledge, not mempool admission.
        self.transaction_first_seen_times: dict[str, float] = {}
        #: Conflicts observed locally: rejected txid -> (pending txid it
        #: conflicts with, time the conflict was first observed).
        self.observed_conflicts: dict[str, tuple[str, float]] = {}
        #: Full transactions rejected for conflicting, kept so GETDATA for a
        #: relayed double-spend alert can be served.
        self._conflict_store: dict[str, Transaction] = {}
        #: Blocks received before their parent: parent hash -> waiting blocks.
        #: Retried as soon as the parent is accepted, so a node catching up
        #: over a multi-block gap (e.g. after rejoining under churn) converges
        #: instead of dropping every out-of-order block.  Bounded by
        #: ``config.max_orphan_blocks`` with FIFO eviction.
        self._orphan_blocks: dict[str, list[Block]] = {}
        self._orphan_count = 0
        #: Highest best-chain height whose inventory state has been pruned
        #: (``config.prune_depth``); genesis (height 0) is never pruned.
        self._pruned_height = 0

        #: External observers notified when a transaction is accepted locally,
        #: as ``listener(node_id, transaction, accepted_at)``.  This is the
        #: measurement plane's capture point: the measuring node records
        #: Δt_{m,n} through it.  Listeners observe — they must not mutate node
        #: state or send messages, or determinism is forfeit.
        self.transaction_listeners: list[Callable[[int, Transaction, float], None]] = []
        #: External observers notified when a block is accepted locally, as
        #: ``listener(node_id, block, accepted_at)``.  Same contract as
        #: ``transaction_listeners``; the standard consumer is
        #: :class:`repro.analysis.samples.BlockArrivalRecorder`, which turns
        #: acceptance times into the raw block-delay series experiments
        #: persist for ``repro report``.
        self.block_listeners: list[Callable[[int, Block, float], None]] = []
        #: External observers notified when this node sends an INV for a tx.
        self.announcement_listeners: list[Callable[[int, str, float], None]] = []
        #: Clustering policy hook for JOIN / CLUSTER_MEMBERS traffic.
        self.cluster_listener: Optional[ClusterMessageListener] = None

    # -------------------------------------------------------------- plumbing
    def attach(self, network: "P2PNetwork") -> None:
        """Associate the node with a network and register it."""
        self.network = network
        network.register_node(self)

    def _require_network(self) -> "P2PNetwork":
        if self.network is None:
            raise RuntimeError(f"node {self.node_id} is not attached to a network")
        return self.network

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._require_network().simulator.now

    def neighbors(self) -> list[int]:
        """Ids of currently connected peers."""
        return self._require_network().neighbors(self.node_id)

    # -------------------------------------------------------------- adversary
    def install_behavior(self, behavior) -> None:
        """Make this node byzantine: filter every message it sends.

        Delegates to :meth:`~repro.protocol.network.P2PNetwork
        .install_behavior` — the filter sits on the network fabric's single
        send choke point, so it applies under every relay strategy.  See
        :mod:`repro.protocol.adversary` for the behaviour vocabulary.
        """
        self._require_network().install_behavior(self.node_id, behavior)

    @property
    def behavior(self):
        """The installed byzantine behaviour, or None for an honest node."""
        return self._require_network().behavior_of(self.node_id)

    @property
    def is_byzantine(self) -> bool:
        """Whether a byzantine behaviour is installed on this node."""
        return self.behavior is not None

    # ----------------------------------------------------- connection events
    def on_connected(self, peer_id: int) -> None:
        """Called by the network when a connection to ``peer_id`` is established."""
        self.address_book.add(peer_id)
        self.relay.on_peer_connected(peer_id)
        if self.config.resync_on_reconnect:
            self._sync_with_peer(peer_id)

    def on_disconnected(self, peer_id: int) -> None:
        """Called by the network when the connection to ``peer_id`` is torn down."""
        # The address stays in the address book; only the live link is gone.
        self.relay.on_peer_disconnected(peer_id)

    # ------------------------------------------------------ session lifecycle
    def on_offline(self, at: Optional[float] = None) -> None:
        """Called by the network when this node's session ends (churn leave).

        The connections are already gone, and with them every in-flight
        request: the relay strategy forgets its pending GETDATA state so a
        later INV for the same inventory triggers a fresh request after the
        node rejoins, instead of being ignored as already-requested forever.
        """
        self.relay.on_offline()
        self.stats.sessions_ended += 1

    def on_online(self, at: Optional[float] = None) -> None:
        """Called by the network when this node starts a new session.

        Chain, mempool and known-inventory state persist across the offline
        gap (a session ending is a disconnect, not a node restart); catching
        up on what was missed happens per-connection in :meth:`on_connected`
        once the policy re-establishes links.
        """

    def _sync_with_peer(self, peer_id: int) -> None:
        """Catch up chain and mempool inventory over a fresh connection.

        Both endpoints run this (each side's ``on_connected`` fires).  The
        chain half is delegated to the relay strategy: the flood baseline
        announces its tip with an INV (the peer GETDATAs it and unknown
        parents are walked through :meth:`accept_block`'s orphan path), while
        the headers-first strategy instead asks the peer for everything it
        missed with one GETHEADERS round-trip.  The mempool half stays an INV
        of pending txids.  Empty offers are skipped, which also makes this a
        no-op during initial topology construction.
        """
        network = self._require_network()
        announced = self.relay.sync_chain_with_peer(peer_id)
        mempool_txids = tuple(sorted(tx.txid for tx in self.mempool.transactions()))
        if mempool_txids:
            network.send(
                self.node_id,
                peer_id,
                InvMessage(
                    sender=self.node_id,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=mempool_txids,
                ),
            )
            announced = True
        if announced:
            self.stats.reconnect_syncs += 1

    # --------------------------------------------------------------- wallet
    def spendable_outputs(self) -> list[tuple[str, int, int]]:
        """``(txid, index, value)`` triples this node's wallet can spend.

        Outputs already spent by this node's own pending (mempool)
        transactions are excluded, so the wallet never double-spends itself.
        """
        pending_spends = {
            tx_input.outpoint
            for pending in self.mempool.transactions()
            for tx_input in pending.inputs
        }
        return [
            (entry.txid, entry.index, entry.value)
            for entry in self.utxo.spendable_by(self.keypair.address)
            if entry.outpoint not in pending_spends
        ]

    def balance(self) -> int:
        """Confirmed wallet balance in satoshi."""
        return self.utxo.balance(self.keypair.address)

    def create_transaction(
        self,
        destinations: list[tuple[str, int]],
        *,
        broadcast: bool = True,
        fee: int = 0,
    ) -> Transaction:
        """Create, sign, accept and (optionally) announce a payment.

        Args:
            destinations: ``(address, value)`` pairs to pay.
            broadcast: whether to announce the transaction to the neighbours.
            fee: miner fee in satoshi (inputs minus outputs); ``fee=0``
                produces the historical byte-identical transaction.

        Raises:
            ValueError: if the wallet cannot cover the requested amount plus fee.
        """
        if fee < 0:
            raise ValueError(f"fee cannot be negative, got {fee}")
        total_needed = sum(value for _, value in destinations) + fee
        selected: list[tuple[str, int, int]] = []
        gathered = 0
        for candidate in self.spendable_outputs():
            selected.append(candidate)
            gathered += candidate[2]
            if gathered >= total_needed:
                break
        if gathered < total_needed:
            raise ValueError(
                f"node {self.node_id} cannot fund {total_needed} satoshi (balance {gathered})"
            )
        tx = Transaction.create_signed(
            self.keypair, selected, destinations, created_at=self.now, fee=fee
        )
        self.stats.transactions_created += 1
        self.accept_transaction(tx, origin_peer=None)
        if broadcast:
            self.announce_transaction(tx.txid)
        return tx

    # ------------------------------------------------------------ tx intake
    def accept_transaction(self, tx: Transaction, *, origin_peer: Optional[int]) -> ValidationResult:
        """Validate a transaction and admit it to the mempool if valid.

        Returns the validation result; listeners fire only on acceptance.
        """
        self.known_transactions.add(tx.txid)
        self.transaction_first_seen_times.setdefault(tx.txid, self.now)
        self.relay.note_transaction_received(tx.txid)
        effective_utxo = self._effective_utxo_for(tx)
        result = self.validator.validate_transaction(tx, effective_utxo)
        if not result.valid:
            self.stats.transactions_rejected += 1
            return result
        if self.blockchain.contains_transaction(tx.txid):
            return result
        fee = self._transaction_fee(tx, effective_utxo)
        if not self.mempool.add(tx, arrival_time=self.now, fee=fee):
            # Conflict with a first-seen transaction, duplicate, or full pool.
            if tx.txid not in self.mempool:
                conflicting = self.mempool.conflicting_txid(tx)
                if conflicting is not None:
                    self._observe_conflict(tx, conflicting, origin_peer=origin_peer)
                elif self.mempool.is_full():
                    # Rejected purely for capacity — no verdict on the tx
                    # itself.  Keeping the txid in the known-set would make
                    # the drop permanent: every later INV would be suppressed
                    # as a duplicate and the tx could never be re-requested
                    # once the pool drains.
                    self.known_transactions.discard(tx.txid)
                    self.stats.mempool_capacity_drops += 1
            self.stats.transactions_rejected += 1
            return ValidationResult(False, None, result.verification_cost_s)
        for evicted in self.mempool.last_evicted:
            # Fee-priority eviction made room: forget the evicted txid for the
            # same reason a capacity drop forgets it — a later INV must be
            # able to re-offer the transaction once fee pressure eases.
            self.known_transactions.discard(evicted.txid)
            self.stats.mempool_fee_evictions += 1
        self.stats.transactions_accepted += 1
        self.transaction_accept_times[tx.txid] = self.now
        for listener in self.transaction_listeners:
            listener(self.node_id, tx, self.now)
        return result

    def _effective_utxo_for(self, tx: Transaction) -> UtxoSet:
        """Ledger view used for validating an incoming transaction.

        Unconfirmed parent outputs in the mempool are visible (Bitcoin relays
        chains of unconfirmed transactions), so the confirmed UTXO set is
        extended with mempool outputs when needed.
        """
        needs_mempool_parents = any(
            tx_input.outpoint not in self.utxo and tx_input.prev_txid in self.mempool
            for tx_input in tx.inputs
        )
        if not needs_mempool_parents:
            return self.utxo
        extended = self.utxo.copy()
        for pending in self.mempool.transactions():
            if extended.can_apply(pending):
                extended.apply_transaction(pending)
        return extended

    def _transaction_fee(self, tx: Transaction, utxo: UtxoSet) -> int:
        """Implicit miner fee of a validated transaction (inputs - outputs).

        ``utxo`` must be the view the transaction was validated against, so
        every input resolves; coinbases mint rather than spend and carry no
        fee.
        """
        if tx.is_coinbase:
            return 0
        total_in = 0
        for tx_input in tx.inputs:
            entry = utxo.get(tx_input.outpoint)
            if entry is None:
                return 0
            total_in += entry.value
        return max(total_in - tx.total_output_value, 0)

    # ------------------------------------------------------------- conflicts
    def _observe_conflict(
        self, tx: Transaction, conflicting_txid: str, *, origin_peer: Optional[int]
    ) -> None:
        """Record a double-spend conflict and relay the alert once.

        ``tx`` was rejected by the mempool because ``conflicting_txid`` (the
        first-seen transaction) spends one of its inputs.  The node remembers
        when it first learnt of the conflict — the quantity the double-spend
        experiment measures as the merchant's detection time — and, when
        configured, announces the conflicting transaction to its neighbours so
        knowledge of the conflict floods past the first-seen frontier.
        """
        if tx.txid in self.observed_conflicts:
            return
        self.observed_conflicts[tx.txid] = (conflicting_txid, self.now)
        if self.config.relay_conflicts and self.config.relay_transactions:
            self._conflict_store[tx.txid] = tx
            exclude = {origin_peer} if origin_peer is not None else None
            self.announce_transaction(tx.txid, exclude=exclude)

    def first_conflict_time(self, txid: str) -> Optional[float]:
        """When this node first observed ``txid`` to conflict (None if never)."""
        observed = self.observed_conflicts.get(txid)
        return observed[1] if observed is not None else None

    def announce_transaction(self, txid: str, *, exclude: Optional[set[int]] = None) -> int:
        """Announce ``txid`` to the neighbours, as the relay strategy sees fit."""
        return self.relay.announce_transaction(txid, exclude=exclude)

    def announce_block(self, block_hash: str, *, exclude: Optional[set[int]] = None) -> int:
        """Announce a block to the neighbours, as the relay strategy sees fit."""
        return self.relay.announce_block(block_hash, exclude=exclude)

    # --------------------------------------------------------- block intake
    def accept_block(self, block: Block, *, origin_peer: Optional[int]) -> bool:
        """Validate and store a block; relays it onwards when accepted."""
        self.known_blocks.add(block.block_hash)
        self.relay.note_block_received(block.block_hash)
        if self.blockchain.has_block(block.block_hash):
            return False
        if not self.blockchain.has_block(block.previous_hash):
            # Parent unknown: stash the block and request the parent (through
            # the pending-request dedup — an orphan burst on the same branch
            # must not re-send the GETDATA or refresh its retry clock), so
            # the whole branch is replayed once the gap fills in.
            self._stash_orphan(block)
            if origin_peer is not None:
                self.relay.request_parent(origin_peer, block.previous_hash)
            return False
        parent = self.blockchain.get_block(block.previous_hash)
        # Fast path for the overwhelmingly common case — the block extends the
        # current tip.  ``self.utxo`` *is* the ledger as of the tip (the
        # invariant this method maintains), so it can be validated against
        # directly (``validate_block`` works on a copy) and then advanced
        # incrementally, instead of replaying the whole chain from genesis
        # twice per block (O(chain²) over a long sustained-load run).
        extends_tip = block.previous_hash == self.blockchain.tip.block_hash
        parent_utxo = self.utxo if extends_tip else self._utxo_as_of(parent)
        result = self.validator.validate_block(block, parent, parent_utxo)
        if not result.valid:
            return False
        tip_changed = self.blockchain.add_block(block, observed_at=self.now)
        self.stats.blocks_accepted += 1
        if tip_changed:
            if extends_tip:  # extending the tip always wins the height race
                for tx in block.transactions:
                    self.utxo.apply_transaction(tx, block_hash=block.block_hash)
            else:
                self.utxo = self.blockchain.utxo_set()
            self.mempool.remove_confirmed(block.txids)
            # A confirmed spend kills any pending double-spend of the same
            # output; left in the pool it would be packed into templates (and
            # invalidate every block built from them) forever.  The dead txid
            # stays in known_transactions — unlike a capacity drop, the
            # transaction can never become valid again, so re-offering it is
            # pointless.
            if extends_tip:
                spent = {
                    tx_input.outpoint
                    for tx in block.transactions
                    if not tx.is_coinbase
                    for tx_input in tx.inputs
                }
                dead = self.mempool.remove_conflicts(spent)
            else:
                dead = self.mempool.remove_unspendable(self.utxo)
            self.stats.mempool_conflict_evictions += len(dead)
        now = self.now
        for listener in self.block_listeners:
            listener(self.node_id, block, now)
        exclude = {origin_peer} if origin_peer is not None else None
        self.announce_block(block.block_hash, exclude=exclude)
        # Replay stashed children with no origin: the peer that sent an orphan
        # already has it, so a duplicate INV there is harmless, whereas
        # excluding the *parent's* sender would hide the child from the one
        # neighbour that may still be missing it.
        waiting = self._orphan_blocks.pop(block.block_hash, [])
        self._orphan_count -= len(waiting)
        for orphan in waiting:
            self.accept_block(orphan, origin_peer=None)
        if tip_changed and self.config.prune_depth is not None:
            self._prune_stale_state()
        return True

    def _prune_stale_state(self) -> None:
        """Drop inventory records about blocks buried ``prune_depth`` deep.

        Once a block has ``prune_depth`` confirmations its hash — and the
        first-seen/accept bookkeeping of its transactions — no longer needs a
        per-node inventory entry: any late INV is answered from the chain
        index (see ``RelayStrategy._classify``), which the node keeps anyway.
        Pruning is driven by best-chain extension, never by timers, so a run
        still drains to a natural fixpoint and ``workers=N`` determinism is
        untouched.  Each sweep covers only the heights newly buried since the
        last one, so the cost per accepted block is O(1) amortised.
        """
        depth = self.config.prune_depth
        assert depth is not None
        horizon = self.blockchain.height - depth
        if horizon <= self._pruned_height:
            return
        removed = 0
        chain = self.blockchain.best_chain()
        # Slice starts at 1 at the earliest, so genesis (height 0) survives.
        for block in chain[self._pruned_height + 1 : horizon + 1]:
            if block.block_hash in self.known_blocks:
                self.known_blocks.remove(block.block_hash)
                removed += 1
            for txid in block.txids:
                if txid in self.known_transactions:
                    self.known_transactions.remove(txid)
                    removed += 1
                if self.transaction_first_seen_times.pop(txid, None) is not None:
                    removed += 1
                if self.transaction_accept_times.pop(txid, None) is not None:
                    removed += 1
        self._pruned_height = horizon
        self.stats.state_prunes += 1
        self.stats.pruned_inventory_entries += removed

    def _stash_orphan(self, block: Block) -> None:
        """Stash a parent-less block, evicting the oldest beyond the cap.

        The pool is bounded by ``config.max_orphan_blocks``: without a cap a
        node kept offline through heavy churn would accumulate every block it
        cannot yet connect, a slow memory leak.  Eviction is FIFO — the
        longest-waiting block is the least likely to ever see its parent.
        """
        waiting = self._orphan_blocks.setdefault(block.previous_hash, [])
        if any(b.block_hash == block.block_hash for b in waiting):
            return
        waiting.append(block)
        self._orphan_count += 1
        while self._orphan_count > self.config.max_orphan_blocks:
            oldest_parent = next(iter(self._orphan_blocks))
            queue = self._orphan_blocks[oldest_parent]
            evicted = queue.pop(0)
            if not queue:
                del self._orphan_blocks[oldest_parent]
            self._orphan_count -= 1
            self.stats.orphans_evicted += 1
            # Forget the evicted block entirely: leaving it in known_blocks
            # would suppress every future re-announcement as a duplicate,
            # making the eviction permanent instead of a deferral.
            self.known_blocks.discard(evicted.block_hash)

    @property
    def orphan_block_count(self) -> int:
        """Blocks currently stashed while waiting for a missing parent."""
        return self._orphan_count

    def _utxo_as_of(self, block: Block) -> UtxoSet:
        """UTXO state after applying the chain ending at ``block``."""
        utxo = UtxoSet()
        for ancestor in self.blockchain.chain_to(block.block_hash):
            for tx in ancestor.transactions:
                utxo.apply_transaction(tx, block_hash=ancestor.block_hash)
        return utxo

    # -------------------------------------------------------- message intake
    def handle_message(self, sender: int, message: Message) -> None:
        """Entry point for every delivered protocol message.

        Relay-plane messages (INV, GETDATA, TX, BLOCK and the compact-block
        trio) are delegated to the node's :class:`~repro.protocol.relay.
        RelayStrategy`; the control plane stays here.
        """
        if self.relay.handle_message(sender, message):
            return
        if isinstance(message, PingMessage):
            self.stats.pings_received += 1
            self._require_network().send(
                self.node_id, sender, PongMessage(sender=self.node_id, nonce=message.nonce)
            )
        elif isinstance(message, PongMessage):
            pass  # RTT bookkeeping is done by the policy that sent the ping.
        elif isinstance(message, GetAddrMessage):
            self._handle_getaddr(sender)
        elif isinstance(message, AddrMessage):
            self.address_book.update(a for a in message.addresses if a != self.node_id)
        elif isinstance(message, JoinMessage):
            if self.cluster_listener is not None:
                self.cluster_listener.on_join_request(self, sender, message)
        elif isinstance(message, JoinAcceptMessage):
            if self.cluster_listener is not None:
                self.cluster_listener.on_join_accept(self, sender, message)
        elif isinstance(message, ClusterMembersMessage):
            if self.cluster_listener is not None:
                self.cluster_listener.on_cluster_members(self, sender, message)
        elif isinstance(message, (VersionMessage, VerackMessage)):
            pass  # Handshake cost is charged by the network's connect().
        else:
            raise TypeError(f"node {self.node_id} received unsupported message {message!r}")

    def find_confirmed_transaction(self, txid: str) -> Optional[Transaction]:
        """Look a transaction up on the best chain (None if not confirmed)."""
        for tx in self.blockchain.transactions_on_best_chain():
            if tx.txid == txid:
                return tx
        return None

    # ------------------------------------------------------------------ addr
    def _handle_getaddr(self, sender: int) -> None:
        known = [a for a in self.address_book if a != sender]
        sample = tuple(sorted(known)[: self.config.addr_sample_size])
        self._require_network().send(
            self.node_id, sender, AddrMessage(sender=self.node_id, addresses=sample)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BitcoinNode(id={self.node_id}, region={self.position.region!r}, "
            f"peers={len(self.neighbors()) if self.network else 0})"
        )
