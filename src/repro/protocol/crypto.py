"""Cryptographic primitives (simulation-grade).

The real Bitcoin protocol uses ECDSA over secp256k1.  For propagation-delay
simulation only two properties of the signature scheme matter:

1. a transaction signed by the owner of an address verifies, and one signed by
   anyone else does not;
2. verification has a non-zero CPU cost, which contributes to the relay delay
   the paper discusses.

Both are preserved by a deterministic HMAC-style construction over SHA-256.
This module must never be used for real cryptography; it exists so the
simulator's validation path is faithful without an external dependency.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass


def sha256_hex(data: bytes | str) -> str:
    """Hex-encoded SHA-256 of ``data`` (str inputs are UTF-8 encoded)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def double_sha256_hex(data: bytes | str) -> str:
    """Bitcoin-style double SHA-256, hex encoded."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(hashlib.sha256(data).digest()).hexdigest()


@dataclass(frozen=True)
class KeyPair:
    """A simulated keypair.

    The private key is an arbitrary byte string; the public key and the
    address are derived from it by hashing, mirroring how Bitcoin addresses
    are derived from public keys.
    """

    private_key: str
    public_key: str
    address: str

    @staticmethod
    def generate(seed: bytes | str) -> "KeyPair":
        """Derive a keypair deterministically from a seed.

        Args:
            seed: unique per-wallet material, e.g. ``f"node-{node_id}-wallet"``.
        """
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        private_key = hashlib.sha256(b"priv:" + seed).hexdigest()
        public_key = hashlib.sha256(b"pub:" + bytes.fromhex(private_key)).hexdigest()
        address = hashlib.sha256(b"addr:" + bytes.fromhex(public_key)).hexdigest()[:40]
        return KeyPair(private_key=private_key, public_key=public_key, address=address)


def sign(private_key: str, message: bytes | str) -> str:
    """Produce a signature of ``message`` under ``private_key``."""
    if isinstance(message, str):
        message = message.encode("utf-8")
    return hmac.new(bytes.fromhex(private_key), message, hashlib.sha256).hexdigest()


def verify_signature(public_key: str, private_key_hint: str, message: bytes | str, signature: str) -> bool:
    """Verify a signature.

    The simulated scheme cannot verify with the public key alone (there is no
    real asymmetric math here), so verification recomputes the signature from
    the private key *hint* carried in the transaction witness and additionally
    checks that the hint actually corresponds to the claimed public key.  From
    the simulator's perspective this gives exactly the semantics of ECDSA:
    only the key owner can produce a witness that validates.
    """
    if isinstance(message, str):
        message = message.encode("utf-8")
    derived_public = hashlib.sha256(b"pub:" + bytes.fromhex(private_key_hint)).hexdigest()
    if not hmac.compare_digest(derived_public, public_key):
        return False
    expected = hmac.new(bytes.fromhex(private_key_hint), message, hashlib.sha256).hexdigest()
    return hmac.compare_digest(expected, signature)


def address_of_public_key(public_key: str) -> str:
    """Derive the address corresponding to a public key."""
    return hashlib.sha256(b"addr:" + bytes.fromhex(public_key)).hexdigest()[:40]
