"""The adversary plane: byzantine relay behaviours and selfish mining.

The paper's future work (Section V.C) asks how proximity clustering changes
the attack surface; this module supplies the attackers.  Two mechanisms:

**Byzantine relay behaviours** — a :class:`ByzantineBehavior` is an outbound
message filter installed on the network fabric
(:meth:`~repro.protocol.network.P2PNetwork.install_behavior`).  Every message
a node sends — through ``send``, ``broadcast`` or ``multicast``, so under
every :class:`~repro.protocol.relay.RelayStrategy` — is offered to its
behavior, which forwards it, drops it silently, or injects extra delay.  The
drop rules key on :data:`~repro.protocol.relay.RELAY_COMMANDS` (the
give-inventory vocabulary), so a byzantine node keeps *requesting* objects
(it looks like a normal, if quiet, peer) while never *giving* any — the
``create_bad_node`` accept-and-never-relay peer of the related simulator.

**Selfish mining** — :class:`SelfishMiner` implements Eyal–Sirer-style block
withholding on top of the ordinary mining and chain machinery.  The
attacker's own :class:`~repro.protocol.blockchain.Blockchain` *is* the
private chain: blocks it mines are accepted locally but their announcements
are suppressed by a withholding filter, and the release policy reacts to
honest blocks (observed through the attacker node's ``block_listeners``)
with the classic state machine — publish-and-race on a one-block lead,
publish everything on a two-block lead, feed the oldest withheld block on a
longer lead.  Races resolve through the simulator's ordinary first-seen
tie-breaking, so the attacker's effective γ emerges from propagation rather
than being assumed.

Determinism contract
--------------------

Behaviours that need randomness draw it from the named stream
``"adversary-behavior"`` (and adversary *selection* draws from
``"adversary-selection"`` — see
:func:`repro.workloads.scenarios.install_attack`); with no behaviours
installed the network fabric takes zero extra draws, so adversary-off runs
are byte-identical to builds that predate this module (pinned by the fig3
golden-fingerprint regression).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, TYPE_CHECKING

from repro.protocol.messages import (
    BlockMessage,
    BlockTxnMessage,
    CmpctBlockMessage,
    GetBlockTxnMessage,
    HeadersMessage,
    InvMessage,
    InventoryType,
    Message,
)
from repro.protocol.relay import RELAY_COMMANDS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    import numpy as np

    from repro.protocol.block import Block
    from repro.protocol.mining import MiningProcess
    from repro.protocol.network import P2PNetwork
    from repro.protocol.node import BitcoinNode
    from repro.sim.engine import Simulator

#: Byzantine behaviour kinds selectable by name.
BEHAVIOR_KINDS = ("silent", "selective", "delay")


@dataclass(frozen=True)
class SendDecision:
    """What a behaviour decided about one outbound message.

    Attributes:
        drop: suppress the message entirely (no traffic accounting, no
            delivery — the receiver never learns it existed).
        extra_delay_s: additional seconds added to the link-model delay when
            the message is forwarded.
    """

    drop: bool = False
    extra_delay_s: float = 0.0


#: The common decisions, shared so the hot path allocates nothing.
FORWARD = SendDecision()
DROP = SendDecision(drop=True)


def referenced_block_hashes(message: Message) -> tuple[str, ...]:
    """Block hashes an outbound message would reveal to its receiver.

    The selfish miner's withholding filter needs one answer for every relay
    strategy: *which blocks does this message tell the peer about?*  Covers
    the announce plane (block INVs, compact-block and headers announcements)
    and the payload plane (BLOCK, BLOCKTXN and GETBLOCKTXN, whose very hash
    field leaks the block's existence).  Messages that reference no block
    return an empty tuple.
    """
    if isinstance(message, InvMessage):
        if message.inventory_type is InventoryType.BLOCK:
            return message.hashes
        return ()
    if isinstance(message, BlockMessage):
        return (message.block.block_hash,) if message.block is not None else ()
    if isinstance(message, CmpctBlockMessage):
        return (message.block_hash,) if message.header is not None else ()
    if isinstance(message, (GetBlockTxnMessage, BlockTxnMessage)):
        return (message.block_hash,) if message.block_hash else ()
    if isinstance(message, HeadersMessage):
        return tuple(header.block_hash for header in message.headers)
    return ()


class ByzantineBehavior:
    """Base class: an outbound message filter attached to one node.

    :meth:`filter_send` is consulted by
    :meth:`~repro.protocol.network.P2PNetwork._send_prechecked` for every
    message the node sends.  Implementations must be deterministic given the
    simulation's named RNG streams — any randomness comes from a stream
    passed in at construction, never from global state.
    """

    #: Registry key; concrete subclasses override.
    kind = "base"

    def filter_send(
        self, receiver_id: int, message: Message, now: float
    ) -> SendDecision:
        """Decide the fate of one outbound message."""
        raise NotImplementedError


class SilentByzantine(ByzantineBehavior):
    """Accept-and-never-relay: drops every outbound relay command.

    The node keeps requesting inventory (GETDATA/GETHEADERS/GETBLOCKTXN pass
    through), so it stays a plausible peer and keeps soaking up its
    neighbours' announcements — it just never gives anything back.  Every
    connection to it is a dead relay link.
    """

    kind = "silent"

    def filter_send(
        self, receiver_id: int, message: Message, now: float
    ) -> SendDecision:
        if message.command in RELAY_COMMANDS:
            return DROP
        return FORWARD


class SelectiveByzantine(ByzantineBehavior):
    """Relay normally — except toward a chosen set of target peers.

    Models the stealthier attacker: toward everyone else it behaves
    perfectly (so neighbour-scoring relay strategies keep trusting it), but
    a target (an eclipse victim, the far side of a cluster boundary) never
    receives inventory from it.

    Args:
        targets: node ids that are starved of relay traffic.
    """

    kind = "selective"

    def __init__(self, targets: Iterable[int]) -> None:
        self.targets = frozenset(targets)

    def filter_send(
        self, receiver_id: int, message: Message, now: float
    ) -> SendDecision:
        if receiver_id in self.targets and message.command in RELAY_COMMANDS:
            return DROP
        return FORWARD


class DelayByzantine(ByzantineBehavior):
    """Forward relay traffic, but late.

    Every outbound relay command is held back by ``base_delay_s`` plus a
    uniform draw from ``[0, jitter_s)`` on the behaviour's own stream — a
    node that is not provably malicious (everything arrives eventually) but
    degrades every propagation path through it.

    Args:
        base_delay_s: fixed extra delay on every relay message.
        jitter_s: width of the additional uniform delay (0 disables the
            draw entirely, keeping the behaviour RNG-free).
        rng: the ``"adversary-behavior"`` named stream; required when
            ``jitter_s`` is positive.
    """

    kind = "delay"

    def __init__(
        self,
        base_delay_s: float,
        *,
        jitter_s: float = 0.0,
        rng: Optional["np.random.Generator"] = None,
    ) -> None:
        if base_delay_s < 0:
            raise ValueError(f"base_delay_s cannot be negative, got {base_delay_s}")
        if jitter_s < 0:
            raise ValueError(f"jitter_s cannot be negative, got {jitter_s}")
        if jitter_s > 0 and rng is None:
            raise ValueError("a jittered DelayByzantine needs an rng stream")
        self.base_delay_s = float(base_delay_s)
        self.jitter_s = float(jitter_s)
        self._rng = rng

    def filter_send(
        self, receiver_id: int, message: Message, now: float
    ) -> SendDecision:
        if message.command not in RELAY_COMMANDS:
            return FORWARD
        extra = self.base_delay_s
        if self.jitter_s > 0:
            assert self._rng is not None
            extra += float(self._rng.uniform(0.0, self.jitter_s))
        return SendDecision(extra_delay_s=extra)


class WithholdingBehavior(ByzantineBehavior):
    """Suppress any outbound message that reveals a withheld block.

    Installed on the selfish miner's node; the withheld-hash set is owned by
    the :class:`SelfishMiner` release policy.  All other traffic — honest
    transaction relay, announcements of *published* blocks — passes through,
    so the attacker stays a fully participating peer.
    """

    kind = "withhold"

    def __init__(self, withheld: set[str]) -> None:
        self.withheld = withheld
        self.suppressed = 0

    def filter_send(
        self, receiver_id: int, message: Message, now: float
    ) -> SendDecision:
        if self.withheld and any(
            block_hash in self.withheld
            for block_hash in referenced_block_hashes(message)
        ):
            self.suppressed += 1
            return DROP
        return FORWARD


class SelfishMiner:
    """Eyal–Sirer block withholding wired onto one mining node.

    Construction installs two hooks: the mining process's ``on_block_found``
    pre-acceptance callback (so an attacker-won block is registered as
    withheld *before* ``accept_block`` announces it — the announcement then
    dies in the withholding filter) and a ``block_listeners`` observer on the
    attacker node that drives the release policy whenever an honest block is
    accepted.  Listeners must not mutate node state, so releases are
    scheduled at zero delay on the event engine instead of being sent inline.

    Release policy, on each honest block (``prev_lead`` = private-chain lead
    before the honest block landed):

    * ``prev_lead == 0`` — nothing withheld; the public chain just advanced.
    * ``prev_lead == 1`` — publish the private block and race it against the
      honest one (first-seen tie-breaking decides, per node).
    * ``prev_lead == 2`` — publish the entire private chain; the attacker's
      two blocks out-run the honest one decisively.
    * ``prev_lead > 2`` — release the oldest withheld block (match the
      honest chain's progress, keeping the rest of the lead private).

    Args:
        simulator: the event engine (used to schedule releases).
        network: the message fabric the attacker's node is attached to.
        attacker: the mining node that plays selfishly.
        mining: the mining process producing blocks for the whole network.
    """

    def __init__(
        self,
        simulator: "Simulator",
        network: "P2PNetwork",
        attacker: "BitcoinNode",
        mining: "MiningProcess",
    ) -> None:
        if mining.on_block_found is not None:
            raise ValueError("the mining process already has an on_block_found hook")
        self.simulator = simulator
        self.network = network
        self.attacker = attacker
        self._withheld: set[str] = set()
        #: Withheld blocks in mining order (the private chain's unpublished tail).
        self._private: list["Block"] = []
        self._public_height = attacker.blockchain.height
        self.behavior = WithholdingBehavior(self._withheld)
        self.blocks_withheld = 0
        self.blocks_released = 0
        self.races_started = 0
        mining.on_block_found = self._on_block_found
        network.install_behavior(attacker.node_id, self.behavior)
        attacker.block_listeners.append(self._on_block_accepted)

    @property
    def lead(self) -> int:
        """Current private-chain lead (withheld blocks not yet released)."""
        return len(self._private)

    @property
    def withheld_hashes(self) -> frozenset[str]:
        """Hashes currently being withheld (for assertions and reports)."""
        return frozenset(self._withheld)

    # ------------------------------------------------------------ mining hook
    def _on_block_found(self, block: "Block", miner_id: int) -> None:
        """Pre-acceptance mining hook: withhold the attacker's own blocks."""
        if miner_id != self.attacker.node_id:
            return
        self._withheld.add(block.block_hash)
        self._private.append(block)
        self.blocks_withheld += 1

    # ------------------------------------------------------- release policy
    def _on_block_accepted(self, node_id: int, block: "Block", now: float) -> None:
        """Observer hook on the attacker node: react to honest blocks."""
        if block.header.miner_id == self.attacker.node_id:
            return
        prev_lead = len(self._private)
        if prev_lead == 0:
            self._public_height = max(self._public_height, self._height_of(block))
            return
        if prev_lead == 1:
            self.races_started += 1
            self._schedule_release(count=1)
        elif prev_lead == 2:
            self._schedule_release(count=2)
        else:
            self._schedule_release(count=1)

    def _height_of(self, block: "Block") -> int:
        """Height of an accepted block on the attacker's chain index."""
        chain = self.attacker.blockchain
        for height, candidate in enumerate(chain.best_chain()):
            if candidate.block_hash == block.block_hash:
                return height
        # Not on the best chain (a losing fork): approximate with the tip.
        return chain.height

    def _schedule_release(self, *, count: int) -> None:
        """Release ``count`` oldest withheld blocks at zero simulated delay.

        The listener contract forbids sending from inside ``accept_block``;
        a zero-delay event runs after the current delivery completes, which
        is also when a real miner's release broadcast would leave the box.
        """
        to_release = self._private[:count]
        del self._private[:count]
        for block in to_release:
            self.simulator.schedule(
                0.0,
                lambda b=block: self._release(b),
                label="selfish-release",
            )

    def _release(self, block: "Block") -> None:
        self._withheld.discard(block.block_hash)
        self.blocks_released += 1
        self._public_height = max(self._public_height, self._height_of(block))
        self.attacker.announce_block(block.block_hash)

    def release_all(self) -> int:
        """Publish every withheld block (end-of-campaign flush).

        Returns the number of blocks released.  Called by experiments before
        measuring revenue, so the attacker's final private lead competes on
        the public chain like a real attacker cashing out.
        """
        count = len(self._private)
        self._schedule_release(count=count)
        return count

    # ------------------------------------------------------------- measures
    def revenue_share(self, reference: "BitcoinNode") -> float:
        """The attacker's share of mined blocks on ``reference``'s best chain.

        Only blocks with a real miner (``miner_id >= 0``) participate —
        genesis and the funding block belong to nobody.  Returns NaN when the
        reference chain holds no mined blocks at all.
        """
        mined = [
            block
            for block in reference.blockchain.best_chain()
            if block.header.miner_id >= 0
        ]
        if not mined:
            return float("nan")
        attacker_blocks = sum(
            1 for block in mined if block.header.miner_id == self.attacker.node_id
        )
        return attacker_blocks / len(mined)
