"""The P2P network fabric: delivers messages between nodes with realistic delays.

:class:`P2PNetwork` is the glue between the simulation kernel, the network
substrate and the protocol nodes:

* it owns the :class:`~repro.net.topology.OverlayTopology` (who is connected
  to whom) and the node registry;
* ``send()`` computes the per-message delivery delay from the link model and
  schedules the receiver's handler on the event engine;
* ``connect()`` / ``disconnect()`` manage links, charging a handshake
  round-trip for new connections;
* it keeps global message counters (by command) that the overhead experiment
  reads.

Messages sent to offline or disconnected peers are silently dropped, the same
way a TCP connection reset would surface to the Bitcoin application layer.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Optional, TYPE_CHECKING

from repro.net.geo import GeoPosition
from repro.net.link import Link, LinkDelayCalculator
from repro.net.message import message_size_bytes
from repro.net.topology import OverlayTopology
from repro.protocol.messages import Message
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.protocol.adversary import ByzantineBehavior
    from repro.protocol.node import BitcoinNode


class P2PNetwork:
    """Message fabric connecting simulated Bitcoin nodes.

    Args:
        simulator: the discrete-event engine.
        delay_calculator: per-message delay model.
        topology: overlay connection graph; a fresh one is created if omitted.
    """

    def __init__(
        self,
        simulator: Simulator,
        delay_calculator: LinkDelayCalculator,
        topology: Optional[OverlayTopology] = None,
    ) -> None:
        self.simulator = simulator
        self.delays = delay_calculator
        self.topology = topology if topology is not None else OverlayTopology()
        self._nodes: dict[int, "BitcoinNode"] = {}
        self._positions: dict[int, GeoPosition] = {}
        self._online: dict[int, bool] = {}
        self.messages_sent: Counter[str] = Counter()
        self.bytes_sent: Counter[str] = Counter()
        self.messages_dropped = 0
        #: Outbound messages a byzantine behaviour silently swallowed.  Kept
        #: separate from ``messages_dropped`` (delivery failures): suppressed
        #: messages were never sent, so they appear in no traffic counter.
        self.messages_suppressed = 0
        #: Per-node byzantine behaviours (adversary plane).  Empty on honest
        #: networks — the hot send path only pays a truthiness check then.
        self._behaviors: dict[int, "ByzantineBehavior"] = {}

    # ----------------------------------------------------------------- nodes
    def register_node(self, node: "BitcoinNode") -> None:
        """Add a node to the network (initially online, with no connections)."""
        if node.node_id in self._nodes:
            raise ValueError(f"node {node.node_id} is already registered")
        self._nodes[node.node_id] = node
        self._positions[node.node_id] = node.position
        self._online[node.node_id] = True
        self.topology.add_node(node.node_id)

    def node(self, node_id: int) -> "BitcoinNode":
        """Look up a registered node."""
        return self._nodes[node_id]

    def nodes(self) -> list["BitcoinNode"]:
        """All registered nodes (online or not)."""
        return list(self._nodes.values())

    def node_ids(self) -> list[int]:
        """Ids of all registered nodes."""
        return list(self._nodes.keys())

    def position(self, node_id: int) -> GeoPosition:
        """Geographic position of a node."""
        return self._positions[node_id]

    @property
    def node_count(self) -> int:
        """Number of registered nodes."""
        return len(self._nodes)

    # ---------------------------------------------------------------- online
    def is_online(self, node_id: int) -> bool:
        """Whether the node is currently online."""
        return self._online.get(node_id, False)

    def online_node_ids(self) -> list[int]:
        """Ids of nodes currently online."""
        return [node_id for node_id, online in self._online.items() if online]

    def set_online(self, node_id: int, online: bool) -> None:
        """Mark a node online/offline; going offline tears down its links.

        The node itself is told through its ``on_offline`` / ``on_online``
        lifecycle hooks (after teardown, so the node observes its final
        link-less state), letting it drop in-flight request state that died
        with the connections.  Repeated calls with the same state are no-ops.
        """
        if node_id not in self._nodes:
            raise KeyError(f"unknown node {node_id}")
        was_online = self._online.get(node_id, False)
        self._online[node_id] = online
        if not online:
            for peer in list(self.topology.neighbors(node_id)):
                self.disconnect(node_id, peer)
            if was_online:
                self._nodes[node_id].on_offline(self.simulator.now)
        elif not was_online:
            self._nodes[node_id].on_online(self.simulator.now)

    # ----------------------------------------------------------- connections
    def connect(
        self,
        node_a: int,
        node_b: int,
        *,
        is_cluster_link: bool = False,
        is_long_link: bool = False,
    ) -> bool:
        """Establish a connection between two online nodes.

        Returns:
            True if a new link was created; False if the nodes were already
            connected, either is offline, or either is at its connection cap.
        """
        if node_a == node_b:
            return False
        if not (self.is_online(node_a) and self.is_online(node_b)):
            return False
        if self.topology.are_connected(node_a, node_b):
            return False
        if not (self.topology.can_accept(node_a) and self.topology.can_accept(node_b)):
            return False
        link = Link.make(
            node_a,
            node_b,
            established_at=self.simulator.now,
            is_cluster_link=is_cluster_link,
            is_long_link=is_long_link,
        )
        self.topology.connect(link)
        # Account for the VERSION/VERACK handshake traffic.
        self.messages_sent["version"] += 2
        self.messages_sent["verack"] += 2
        self.bytes_sent["version"] += 2 * message_size_bytes("version")
        self.bytes_sent["verack"] += 2 * message_size_bytes("verack")
        self._nodes[node_a].on_connected(node_b)
        self._nodes[node_b].on_connected(node_a)
        return True

    def disconnect(self, node_a: int, node_b: int) -> bool:
        """Tear down the connection between two nodes if it exists."""
        link = self.topology.disconnect(node_a, node_b)
        if link is None:
            return False
        if node_a in self._nodes:
            self._nodes[node_a].on_disconnected(node_b)
        if node_b in self._nodes:
            self._nodes[node_b].on_disconnected(node_a)
        return True

    def neighbors(self, node_id: int) -> list[int]:
        """Current connections of a node."""
        return self.topology.neighbors(node_id)

    # ------------------------------------------------------------- adversary
    def install_behavior(self, node_id: int, behavior: "ByzantineBehavior") -> None:
        """Attach a byzantine outbound-message filter to one node.

        Every message the node sends from now on is offered to
        ``behavior.filter_send`` before any delay is computed or traffic
        accounted.  One behaviour per node; installing a second replaces
        nothing and raises instead, so composed attacks are explicit.
        """
        if node_id not in self._nodes:
            raise KeyError(f"unknown node {node_id}")
        if node_id in self._behaviors:
            raise ValueError(f"node {node_id} already has a byzantine behavior")
        self._behaviors[node_id] = behavior

    def remove_behavior(self, node_id: int) -> Optional["ByzantineBehavior"]:
        """Detach and return a node's byzantine behaviour (None if honest)."""
        return self._behaviors.pop(node_id, None)

    def behavior_of(self, node_id: int) -> Optional["ByzantineBehavior"]:
        """The behaviour installed on a node, or None for an honest node."""
        return self._behaviors.get(node_id)

    @property
    def byzantine_node_ids(self) -> list[int]:
        """Ids of nodes with an installed behaviour, in installation order."""
        return list(self._behaviors)

    # -------------------------------------------------------------- messages
    def send(self, sender_id: int, receiver_id: int, message: Message) -> bool:
        """Send a protocol message over an existing connection.

        The message is delivered after the link-model delay, unless either
        endpoint goes offline or the link disappears in the meantime (the
        message is then dropped, mirroring a broken TCP connection).

        Returns:
            True if the message was scheduled, False if it was dropped
            immediately (no connection).
        """
        # No separate offline check: a live link implies both endpoints are
        # online (see :meth:`broadcast`), so "no connection" covers it.
        if not self.topology.are_connected(sender_id, receiver_id):
            self.messages_dropped += 1
            return False
        self._send_prechecked(sender_id, receiver_id, message)
        return True

    def _send_prechecked(
        self,
        sender_id: int,
        receiver_id: int,
        message: Message,
        jitter_factor: Optional[float] = None,
    ) -> None:
        """Compute the delay, account the traffic and schedule the delivery.

        Connectivity/online checks are the caller's responsibility.  This is
        the single choke point every send funnels through (``send``,
        ``broadcast``/``multicast`` via ``_fanout``), which is where the
        adversary plane hooks in: a sender's installed
        :class:`~repro.protocol.adversary.ByzantineBehavior` may suppress the
        message (no accounting, no delivery) or stretch its delay.  Batched
        congestion-jitter factors are drawn by the *caller*, before this
        filter runs, so byzantine drops never shift an honest stream's draw
        sequence.
        """
        extra_delay_s = 0.0
        if self._behaviors:
            behavior = self._behaviors.get(sender_id)
            if behavior is not None:
                decision = behavior.filter_send(receiver_id, message, self.simulator.now)
                if decision.drop:
                    self.messages_suppressed += 1
                    return
                extra_delay_s = decision.extra_delay_s
        command = message.command
        size = message_size_bytes(command, message.wire_payload())
        delay = extra_delay_s + self.delays.message_delay_s(
            sender_id,
            self._positions[sender_id],
            receiver_id,
            self._positions[receiver_id],
            command,
            size_bytes=size,
            jitter_factor=jitter_factor,
        )
        self.messages_sent[command] += 1
        self.bytes_sent[command] += size
        self.simulator.schedule(
            delay,
            lambda: self._deliver(sender_id, receiver_id, message),
            label=f"deliver:{command}",
        )

    def broadcast(self, sender_id: int, message: Message, *, exclude: Optional[set[int]] = None) -> int:
        """Send ``message`` to every neighbour of ``sender_id``.

        When every destination pair's routing is already known, the congestion
        jitter for all copies is drawn in one batched call (bit-identical to
        the per-message draws — see :meth:`LatencyModel.jitter_factors`).

        Returns:
            Number of copies scheduled.
        """
        # Not delegated to multicast(): neighbours are connected by
        # construction, and this per-INV hot path must not pay multicast's
        # per-peer are_connected lookup.  A live link implies both endpoints
        # online (connect() refuses offline endpoints and set_online(False)
        # tears down every link first), so there is no drop branch here: an
        # offline sender has no neighbours and an offline peer is not a
        # neighbour.  Copies only drop later, in _deliver, if an endpoint
        # goes offline mid-flight.
        excluded = exclude or set()
        eligible = [
            peer for peer in self.neighbors(sender_id) if peer not in excluded
        ]
        return self._fanout(sender_id, eligible, message)

    def multicast(
        self,
        sender_id: int,
        peers: "list[int]",
        message: Message,
        *,
        exclude: Optional[set[int]] = None,
    ) -> int:
        """Send ``message`` to an explicit subset of peers.

        Like :meth:`broadcast` but over a caller-chosen peer list (e.g. a
        push-relay strategy targeting only cluster links), with the same
        batched congestion-jitter draws.  Peers that are not connected are
        dropped and counted, mirroring :meth:`send`; a connected peer is
        online by construction (see :meth:`broadcast`), so that is the only
        drop branch.

        Returns:
            Number of copies scheduled.
        """
        excluded = exclude or set()
        eligible: list[int] = []
        for peer in peers:
            if peer in excluded:
                continue
            if not self.topology.are_connected(sender_id, peer):
                self.messages_dropped += 1
                continue
            eligible.append(peer)
        return self._fanout(sender_id, eligible, message)

    def _fanout(self, sender_id: int, eligible: "list[int]", message: Message) -> int:
        """Schedule one copy per eligible peer, batching jitter draws.

        When every destination pair's routing is already known, the congestion
        jitter for all copies is drawn in one batched call (bit-identical to
        the per-message draws — see :meth:`LatencyModel.jitter_factors`).
        """
        if not eligible:
            return 0
        if len(eligible) > 1 and self.delays.can_batch_jitter(sender_id, eligible):
            factors = self.delays.jitter_factors(len(eligible))
            if factors is None:
                for peer in eligible:
                    self._send_prechecked(sender_id, peer, message)
            else:
                for peer, factor in zip(eligible, factors):
                    self._send_prechecked(sender_id, peer, message, jitter_factor=factor)
        else:
            for peer in eligible:
                self._send_prechecked(sender_id, peer, message)
        return len(eligible)

    def _deliver(self, sender_id: int, receiver_id: int, message: Message) -> None:
        if not self.is_online(receiver_id):
            self.messages_dropped += 1
            return
        if not self.topology.are_connected(sender_id, receiver_id):
            self.messages_dropped += 1
            return
        tracer = self.simulator.tracer
        if tracer.enabled:
            tracer.record(
                self.simulator.now, "message", message.command, (sender_id, receiver_id)
            )
        self._nodes[receiver_id].handle_message(sender_id, message)

    # ------------------------------------------------------------------ ping
    def measure_rtt(self, node_a: int, node_b: int) -> float:
        """One stochastic ping RTT sample between two nodes (no messages sent).

        Used by clustering policies during distance calculation; the message
        cost of pinging is accounted separately via ``record_ping_exchange``.
        """
        return self.delays.ping_rtt_s(
            node_a, self._positions[node_a], node_b, self._positions[node_b]
        )

    def measure_rtts(self, node_a: int, node_b: int, count: int) -> list[float]:
        """``count`` stochastic ping RTT samples between two nodes, batch-drawn.

        Bit-identical to ``count`` sequential :meth:`measure_rtt` calls (see
        :meth:`~repro.net.latency.LatencyModel.sample_rtts`) but resolves the
        pair's path once and draws the jitter factors as one array — the
        vectorised lookup clustering policies lean on during cluster formation.
        """
        return self.delays.ping_rtts_s(
            node_a, self._positions[node_a], node_b, self._positions[node_b], count
        )

    def base_rtt(self, node_a: int, node_b: int) -> float:
        """Deterministic (jitter-free) RTT between two nodes."""
        return self.delays.base_rtt_s(
            node_a, self._positions[node_a], node_b, self._positions[node_b]
        )

    def record_ping_exchange(self, count: int = 1) -> None:
        """Account for ``count`` ping/pong exchanges in the traffic counters."""
        if count < 0:
            raise ValueError(f"count cannot be negative, got {count}")
        self.messages_sent["ping"] += count
        self.messages_sent["pong"] += count
        self.bytes_sent["ping"] += count * message_size_bytes("ping")
        self.bytes_sent["pong"] += count * message_size_bytes("pong")

    # ------------------------------------------------------------ statistics
    def total_messages(self) -> int:
        """Total protocol messages sent so far."""
        return sum(self.messages_sent.values())

    def total_bytes(self) -> int:
        """Total bytes sent so far."""
        return sum(self.bytes_sent.values())
