"""Transaction and block validation, with an explicit verification-cost model.

The paper (after Decker & Wattenhofer) attributes much of the propagation
delay to the verification work a node performs before relaying: checking that
the coins are unspent against the (large) ledger and checking signatures.
``TransactionValidator`` therefore returns both a verdict *and* a simulated
CPU cost that the node layer turns into a relay delay.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.protocol.block import Block, merkle_root
from repro.protocol.crypto import address_of_public_key, verify_signature
from repro.protocol.transaction import Transaction
from repro.protocol.utxo import UtxoSet


class ValidationError(enum.Enum):
    """Why a transaction or block was rejected."""

    MISSING_INPUT = "missing-input"
    DOUBLE_SPEND = "double-spend"
    BAD_SIGNATURE = "bad-signature"
    VALUE_OVERSPEND = "value-overspend"
    WRONG_OWNER = "wrong-owner"
    BAD_MERKLE_ROOT = "bad-merkle-root"
    BAD_PREVIOUS_BLOCK = "bad-previous-block"
    EMPTY_OUTPUTS = "empty-outputs"


@dataclass(frozen=True)
class ValidationResult:
    """Outcome of validating a transaction or block."""

    valid: bool
    error: Optional[ValidationError] = None
    verification_cost_s: float = 0.0

    def __bool__(self) -> bool:
        return self.valid


@dataclass(frozen=True)
class VerificationCostModel:
    """Simulated CPU cost of validation.

    Attributes:
        base_cost_s: fixed per-transaction overhead (parsing, ledger lookup
            bookkeeping).
        per_input_cost_s: cost of one signature check + UTXO lookup.
        per_output_cost_s: cost of one output check.
        ledger_scaling: additional cost per 10,000 UTXO entries, modelling the
            paper's remark that "the transaction verification time still
            remains inefficient due to the size of the public ledger".
    """

    base_cost_s: float = 0.002
    per_input_cost_s: float = 0.0005
    per_output_cost_s: float = 0.0001
    ledger_scaling: float = 0.0005

    def transaction_cost_s(self, tx: Transaction, utxo_size: int) -> float:
        """Verification cost of one transaction against a ledger of ``utxo_size``."""
        ledger_term = self.ledger_scaling * (utxo_size / 10_000.0)
        return (
            self.base_cost_s
            + self.per_input_cost_s * len(tx.inputs)
            + self.per_output_cost_s * len(tx.outputs)
            + ledger_term
        )


class TransactionValidator:
    """Validates transactions against a UTXO set and blocks against a parent."""

    def __init__(self, cost_model: Optional[VerificationCostModel] = None) -> None:
        self.cost_model = cost_model if cost_model is not None else VerificationCostModel()

    def validate_transaction(self, tx: Transaction, utxo: UtxoSet) -> ValidationResult:
        """Full transaction check: inputs unspent, owned, signed, value-balanced."""
        cost = self.cost_model.transaction_cost_s(tx, len(utxo))
        if not tx.outputs:
            return ValidationResult(False, ValidationError.EMPTY_OUTPUTS, cost)
        if tx.is_coinbase:
            return ValidationResult(True, None, cost)

        total_in = 0
        seen_outpoints: set[tuple[str, int]] = set()
        for tx_input in tx.inputs:
            if tx_input.outpoint in seen_outpoints:
                return ValidationResult(False, ValidationError.DOUBLE_SPEND, cost)
            seen_outpoints.add(tx_input.outpoint)
            entry = utxo.get(tx_input.outpoint)
            if entry is None:
                return ValidationResult(False, ValidationError.MISSING_INPUT, cost)
            if address_of_public_key(tx_input.public_key) != entry.address:
                return ValidationResult(False, ValidationError.WRONG_OWNER, cost)
            if not verify_signature(
                tx_input.public_key, tx_input.private_key_hint, tx.body(), tx_input.signature
            ):
                return ValidationResult(False, ValidationError.BAD_SIGNATURE, cost)
            total_in += entry.value

        if tx.total_output_value > total_in:
            return ValidationResult(False, ValidationError.VALUE_OVERSPEND, cost)
        return ValidationResult(True, None, cost)

    def validate_block(self, block: Block, parent: Block, utxo: UtxoSet) -> ValidationResult:
        """Check block linkage, merkle root and every contained transaction.

        The ``utxo`` argument must be the ledger state as of ``parent``; it is
        not modified (a working copy is used for intra-block dependencies).
        """
        total_cost = 0.0
        if block.previous_hash != parent.block_hash:
            return ValidationResult(False, ValidationError.BAD_PREVIOUS_BLOCK, total_cost)
        if block.header.merkle_root != merkle_root(block.transactions):
            return ValidationResult(False, ValidationError.BAD_MERKLE_ROOT, total_cost)
        working = utxo.copy()
        for tx in block.transactions:
            result = self.validate_transaction(tx, working)
            total_cost += result.verification_cost_s
            if not result.valid:
                return ValidationResult(False, result.error, total_cost)
            working.apply_transaction(tx, block_hash=block.block_hash)
        return ValidationResult(True, None, total_cost)
