"""Neighbour-selection policy interface.

A policy answers one question: *which peers should each node connect to?*
The paper's three contenders (random/Bitcoin, LBC, BCBPT) are implemented as
subclasses of :class:`NeighbourPolicy`.  The protocol stack is identical under
every policy; only the topology differs, which is exactly the experimental
control the paper needs for its Fig. 3 comparison.

A policy is used in two phases, mirroring Section V.B:

1. **Topology build** (cluster generation): :meth:`build_topology` is invoked
   once, before "normal Bitcoin simulator events" are launched.  It creates
   connections via the network and returns a :class:`TopologyBuildReport`.
2. **Maintenance**: during the measurement phase, churn calls
   :meth:`on_node_leave` / :meth:`on_node_join` so the policy can repair the
   overlay, and experiments may drive :meth:`run_discovery_round` periodically
   (the paper lets every node discover new peers every 100 ms).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.cluster import ClusterRegistry
from repro.protocol.discovery import DnsSeedService
from repro.protocol.network import P2PNetwork


@dataclass
class PolicyStatistics:
    """Counters a policy accumulates while building and maintaining the overlay."""

    connections_created: int = 0
    connections_rejected: int = 0
    long_links_created: int = 0
    join_requests_sent: int = 0
    clusters_formed: int = 0
    discovery_rounds: int = 0
    repairs_performed: int = 0


@dataclass(frozen=True)
class TopologyBuildReport:
    """Summary of one topology build, returned by :meth:`NeighbourPolicy.build_topology`.

    Attributes:
        policy_name: name of the policy that built the overlay.
        node_count: nodes that were online during the build.
        link_count: live links after the build.
        average_degree: mean connections per node.
        cluster_summary: cluster statistics (empty for the random policy).
        ping_exchanges: ping/pong message pairs used for distance measurement.
        control_messages: non-ping control messages attributed to the build
            (JOIN, CLUSTER_MEMBERS, GETADDR/ADDR, ...).
    """

    policy_name: str
    node_count: int
    link_count: int
    average_degree: float
    cluster_summary: dict[str, float]
    ping_exchanges: int
    control_messages: int


class NeighbourPolicy(abc.ABC):
    """Base class for neighbour-selection policies.

    Args:
        network: the P2P fabric whose topology the policy manages.
        seed_service: DNS seed used for bootstrap discovery.
        rng: random stream owned by the policy.
        max_outbound: outbound connections each node aims to maintain.
    """

    #: Short human-readable policy name, overridden by subclasses.
    name = "abstract"

    def __init__(
        self,
        network: P2PNetwork,
        seed_service: DnsSeedService,
        rng: np.random.Generator,
        *,
        max_outbound: int = 8,
    ) -> None:
        if max_outbound <= 0:
            raise ValueError(f"max_outbound must be positive, got {max_outbound}")
        self.network = network
        self.seed_service = seed_service
        self.rng = rng
        self.max_outbound = max_outbound
        self.stats = PolicyStatistics()
        self.clusters = ClusterRegistry()

    # ------------------------------------------------------------- interface
    @abc.abstractmethod
    def build_topology(self) -> TopologyBuildReport:
        """Create the initial overlay for all currently-online nodes."""

    @abc.abstractmethod
    def select_peers(self, node_id: int) -> list[int]:
        """Choose the peers ``node_id`` should connect to right now.

        Used both during the initial build and when a node (re)joins under
        churn; returns candidate peer ids, best first, possibly more than
        ``max_outbound`` (the caller connects until the quota is filled).
        """

    # ------------------------------------------------------------ churn hooks
    def on_node_leave(self, node_id: int) -> None:
        """Maintenance when a node goes offline.

        The network has already torn down its links; the default implementation
        removes it from any cluster bookkeeping.
        """
        self.clusters.remove_node(node_id)

    def on_node_join(self, node_id: int) -> None:
        """Maintenance when a node (re)joins: reconnect it using the policy."""
        self.connect_node(node_id)
        self.stats.repairs_performed += 1

    def run_discovery_round(self, node_id: int) -> int:
        """One periodic discovery round for a node (paper: every 100 ms).

        The default implementation tops up the node's connections if it has
        fallen below the outbound quota.  Returns the number of new links.
        """
        self.stats.discovery_rounds += 1
        current = self.network.topology.degree(node_id)
        if current >= self.max_outbound:
            return 0
        return self.connect_node(node_id, limit=self.max_outbound - current)

    # --------------------------------------------------------------- helpers
    def connect_node(self, node_id: int, *, limit: Optional[int] = None) -> int:
        """Connect ``node_id`` to peers chosen by :meth:`select_peers`.

        Returns:
            Number of new connections created.
        """
        if not self.network.is_online(node_id):
            return 0
        quota = self.max_outbound if limit is None else limit
        created = 0
        for peer in self.select_peers(node_id):
            if created >= quota:
                break
            if self.network.topology.are_connected(node_id, peer):
                continue
            if self.network.connect(node_id, peer, is_cluster_link=self._is_cluster_link(node_id, peer)):
                created += 1
                self.stats.connections_created += 1
            else:
                self.stats.connections_rejected += 1
        return created

    def _is_cluster_link(self, node_a: int, node_b: int) -> bool:
        """Whether a new link would be an intra-cluster link."""
        return self.clusters.are_same_cluster(node_a, node_b)

    def ensure_connected_overlay(self) -> int:
        """Bridge disconnected components with random links.

        Clustering can fragment the overlay (especially with small latency
        thresholds); the paper's protocol keeps "a few long distance links to
        the outside cluster" for exactly this reason.  This helper guarantees a
        single connected component so transactions can reach every node.

        Returns:
            Number of bridge links created.
        """
        created = 0
        components = self.network.topology.connected_components()
        online = set(self.network.online_node_ids())
        components = [sorted(c & online) for c in components if c & online]
        if len(components) <= 1:
            return 0
        components.sort(key=len, reverse=True)
        main_component = list(components[0])
        for component in components[1:]:
            # Connect a few bridge links per stranded component for resilience.
            bridges = min(2, len(component))
            for i in range(bridges):
                source = component[int(self.rng.integers(len(component)))]
                target = main_component[int(self.rng.integers(len(main_component)))]
                if self.network.connect(source, target, is_long_link=True):
                    created += 1
                    self.stats.long_links_created += 1
            main_component.extend(component)
        return created

    def _build_report(self, *, ping_exchanges: int, control_messages: int) -> TopologyBuildReport:
        """Assemble the standard build report from current network state."""
        online = self.network.online_node_ids()
        return TopologyBuildReport(
            policy_name=self.name,
            node_count=len(online),
            link_count=self.network.topology.link_count,
            average_degree=self.network.topology.average_degree(),
            cluster_summary=self.clusters.summary(),
            ping_exchanges=ping_exchanges,
            control_messages=control_messages,
        )
