"""Cluster/topology maintenance under churn.

Section IV.B: nodes periodically discover new peers (every 100 ms in the
paper's setup), and "when the node N wants to leave the network, no further
action is required" — the remaining nodes simply repair their connection
quotas through the ordinary discovery mechanism.

:class:`ChurnMaintainer` wires a :class:`~repro.net.churn.ChurnModel`, the
:class:`~repro.protocol.network.P2PNetwork`, the DNS seed and a
:class:`~repro.core.policy.NeighbourPolicy` together so that experiments with
node churn keep a healthy overlay under any policy.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import NeighbourPolicy
from repro.net.churn import ChurnModel, SessionLengthModel
from repro.protocol.discovery import DnsSeedService
from repro.protocol.network import P2PNetwork
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class ChurnMaintainer:
    """Keeps the overlay healthy while nodes join and leave.

    Args:
        simulator: the event engine.
        network: the P2P fabric.
        policy: neighbour-selection policy used for repairs.
        seed_service: DNS seed whose reachable-node set must track liveness.
        session_model: session length / downtime sampler driving churn.
        discovery_interval_s: period of the per-network discovery sweep that
            tops up under-connected nodes (None disables the sweep).
    """

    def __init__(
        self,
        simulator: Simulator,
        network: P2PNetwork,
        policy: NeighbourPolicy,
        seed_service: DnsSeedService,
        session_model: SessionLengthModel,
        *,
        discovery_interval_s: Optional[float] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.policy = policy
        self.seed_service = seed_service
        self.churn = ChurnModel(
            simulator,
            session_model,
            on_leave=self._handle_leave,
            on_join=self._handle_join,
        )
        self._discovery_timer: Optional[PeriodicTimer] = None
        if discovery_interval_s is not None:
            self._discovery_timer = PeriodicTimer(
                simulator,
                discovery_interval_s,
                self._discovery_sweep,
                jitter=0.1,
                rng=simulator.random.stream("maintenance-discovery"),
                label="maintenance-discovery",
            )
        self.nodes_repaired = 0

    # ------------------------------------------------------------- lifecycle
    def start(self, node_ids: Optional[list[int]] = None) -> None:
        """Begin churn cycles (for ``node_ids`` or every registered node)."""
        targets = node_ids if node_ids is not None else self.network.node_ids()
        for node_id in targets:
            self.churn.start_node(node_id)
        if self._discovery_timer is not None:
            self._discovery_timer.start()

    def stop(self) -> None:
        """Stop the periodic discovery sweep (churn processes run to end of sim)."""
        if self._discovery_timer is not None and self._discovery_timer.running:
            self._discovery_timer.stop()

    # ----------------------------------------------------------- churn hooks
    def _handle_leave(self, node_id: int) -> None:
        self.network.set_online(node_id, False)
        self.seed_service.set_online(node_id, False)
        self.policy.on_node_leave(node_id)

    def _handle_join(self, node_id: int) -> None:
        self.network.set_online(node_id, True)
        self.seed_service.set_online(node_id, True)
        self.policy.on_node_join(node_id)
        self.nodes_repaired += 1

    # ------------------------------------------------------------- discovery
    def _discovery_sweep(self) -> None:
        """Top up connections of under-connected online nodes."""
        for node_id in self.network.online_node_ids():
            degree = self.network.topology.degree(node_id)
            if degree < self.policy.max_outbound:
                self.policy.run_discovery_round(node_id)
