"""Cluster/topology maintenance under churn.

Section IV.B: nodes periodically discover new peers (every 100 ms in the
paper's setup), and "when the node N wants to leave the network, no further
action is required" — the remaining nodes simply repair their connection
quotas through the ordinary discovery mechanism.

:class:`ChurnMaintainer` wires a :class:`~repro.net.churn.ChurnModel`, the
:class:`~repro.protocol.network.P2PNetwork`, the DNS seed and a
:class:`~repro.core.policy.NeighbourPolicy` together so that experiments with
node churn keep a healthy overlay under any policy.  Two periodic sweeps run
while churn is active:

* the **discovery sweep** (the paper's 100 ms peer discovery) tops up the
  connections of under-connected online nodes;
* the **repair sweep** fixes cluster damage churn leaves behind: members
  orphaned into singleton clusters are re-homed through the policy's join
  procedure, clusters whose representative (founder) departed elect a new
  one, and a fragmented overlay is re-bridged so propagation can still reach
  every online node.
"""

from __future__ import annotations

from typing import Optional

from repro.core.policy import NeighbourPolicy
from repro.net.churn import ChurnModel, SessionLengthModel
from repro.protocol.discovery import DnsSeedService
from repro.protocol.network import P2PNetwork
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer


class ChurnMaintainer:
    """Keeps the overlay healthy while nodes join and leave.

    Args:
        simulator: the event engine.
        network: the P2P fabric.
        policy: neighbour-selection policy used for repairs.
        seed_service: DNS seed whose reachable-node set must track liveness.
        session_model: session length / downtime sampler driving churn.
        discovery_interval_s: period of the per-network discovery sweep that
            tops up under-connected nodes (None disables the sweep).
        repair_interval_s: period of the cluster-repair sweep (None disables
            it): re-homes orphaned singleton-cluster members, replaces
            departed cluster representatives and re-bridges disconnected
            overlay components.
    """

    def __init__(
        self,
        simulator: Simulator,
        network: P2PNetwork,
        policy: NeighbourPolicy,
        seed_service: DnsSeedService,
        session_model: SessionLengthModel,
        *,
        discovery_interval_s: Optional[float] = None,
        repair_interval_s: Optional[float] = None,
    ) -> None:
        self.simulator = simulator
        self.network = network
        self.policy = policy
        self.seed_service = seed_service
        self.churn = ChurnModel(
            simulator,
            session_model,
            on_leave=self._handle_leave,
            on_join=self._handle_join,
        )
        self._discovery_timer: Optional[PeriodicTimer] = None
        if discovery_interval_s is not None:
            self._discovery_timer = PeriodicTimer(
                simulator,
                discovery_interval_s,
                self._discovery_sweep,
                jitter=0.1,
                rng=simulator.random.stream("maintenance-discovery"),
                label="maintenance-discovery",
            )
        self._repair_timer: Optional[PeriodicTimer] = None
        if repair_interval_s is not None:
            self._repair_timer = PeriodicTimer(
                simulator,
                repair_interval_s,
                self.repair_clusters,
                jitter=0.1,
                rng=simulator.random.stream("maintenance-repair"),
                label="maintenance-repair",
            )
        #: Cluster id -> node currently acting as the cluster's representative
        #: (initially its founder; re-elected by :meth:`repair_clusters` when
        #: the representative departs).
        self.cluster_representatives: dict[int, int] = {}
        self.nodes_repaired = 0
        self.repair_sweeps = 0
        self.orphans_reassigned = 0
        self.representatives_replaced = 0
        self.bridges_created = 0

    # ------------------------------------------------------------- lifecycle
    def start(self, node_ids: Optional[list[int]] = None) -> None:
        """Begin churn cycles (for ``node_ids`` or every registered node)."""
        targets = node_ids if node_ids is not None else self.network.node_ids()
        for node_id in targets:
            self.churn.start_node(node_id)
        if self._discovery_timer is not None:
            self._discovery_timer.start()
        if self._repair_timer is not None:
            self._repair_timer.start()

    def stop(self) -> None:
        """Stop the periodic sweeps (churn processes run to end of sim)."""
        if self._discovery_timer is not None and self._discovery_timer.running:
            self._discovery_timer.stop()
        if self._repair_timer is not None and self._repair_timer.running:
            self._repair_timer.stop()

    # ----------------------------------------------------------- churn hooks
    def _handle_leave(self, node_id: int) -> None:
        self.network.set_online(node_id, False)
        self.seed_service.set_online(node_id, False)
        self.policy.on_node_leave(node_id)

    def _handle_join(self, node_id: int) -> None:
        self.network.set_online(node_id, True)
        self.seed_service.set_online(node_id, True)
        self.policy.on_node_join(node_id)
        self.nodes_repaired += 1

    # ------------------------------------------------------------- discovery
    def _discovery_sweep(self) -> None:
        """Top up connections of under-connected online nodes."""
        for node_id in self.network.online_node_ids():
            degree = self.network.topology.degree(node_id)
            if degree < self.policy.max_outbound:
                self.policy.run_discovery_round(node_id)

    # ---------------------------------------------------------------- repair
    def repair_clusters(self) -> dict[str, int]:
        """One repair sweep over the policy's cluster bookkeeping.

        Performs, in order:

        1. **Representative replacement** — every cluster whose current
           representative (initially the founder) is offline or no longer a
           member elects the lowest-id online member instead, so cluster-level
           coordination (JOIN targets, recommendations) keeps an anchor.
        2. **Orphan re-homing** — online nodes stranded in singleton clusters
           (everyone else in their cluster left) re-run the policy's join
           procedure, giving them a chance to merge into a live cluster, and
           are re-connected up to the outbound quota.
        3. **Overlay re-bridging** — if churn disconnected the overlay graph,
           bridge links are created so every online component can still hear
           broadcasts.

        Returns:
            Counters of this sweep's actions (also accumulated on the
            maintainer): ``representatives_replaced``, ``orphans_reassigned``
            and ``bridges_created``.
        """
        self.repair_sweeps += 1
        replaced = self._ensure_representatives()
        rehomed = self._rehome_orphans()
        bridges = self.policy.ensure_connected_overlay()
        self.bridges_created += bridges
        return {
            "representatives_replaced": replaced,
            "orphans_reassigned": rehomed,
            "bridges_created": bridges,
        }

    def _ensure_representatives(self) -> int:
        """Replace departed cluster representatives; returns replacements made."""
        replaced = 0
        clusters = self.policy.clusters
        live_ids = set()
        for cluster in clusters.clusters():
            live_ids.add(cluster.cluster_id)
            current = self.cluster_representatives.get(cluster.cluster_id, cluster.founder)
            online_members = sorted(
                member for member in cluster.members if self.network.is_online(member)
            )
            if not online_members:
                # Every member is offline; leave the record as-is — either the
                # members come back or the cluster empties out via remove_node.
                continue
            if current in cluster.members and self.network.is_online(current):
                self.cluster_representatives[cluster.cluster_id] = current
                continue
            self.cluster_representatives[cluster.cluster_id] = online_members[0]
            replaced += 1
        # Drop records of clusters that dissolved entirely.
        for cluster_id in list(self.cluster_representatives):
            if cluster_id not in live_ids:
                del self.cluster_representatives[cluster_id]
        self.representatives_replaced += replaced
        return replaced

    def _rehome_orphans(self) -> int:
        """Re-run the join procedure for online singleton-cluster members."""
        rehomed = 0
        clusters = self.policy.clusters
        orphans = [
            cluster.member_list()[0]
            for cluster in list(clusters.clusters())
            if cluster.size == 1 and self.network.is_online(cluster.member_list()[0])
        ]
        assign = getattr(self.policy, "assign_to_cluster", None)
        for node_id in sorted(orphans):
            if assign is None:
                # Non-clustering policy: an orphan just needs connections.
                self.policy.connect_node(node_id)
                continue
            before = clusters.cluster_of(node_id)
            before_id = before.cluster_id if before is not None else None
            assign(node_id)
            after = clusters.cluster_of(node_id)
            if after is not None and after.cluster_id != before_id and after.size > 1:
                rehomed += 1
            self.policy.connect_node(node_id)
        self.orphans_reassigned += rehomed
        return rehomed

    def representative_of(self, cluster_id: int) -> Optional[int]:
        """The current representative of a cluster (None if unknown)."""
        rep = self.cluster_representatives.get(cluster_id)
        if rep is not None:
            return rep
        try:
            return self.policy.clusters.cluster(cluster_id).founder
        except KeyError:
            return None
