"""LBC: Locality Based Clustering (the authors' earlier protocol, the paper's
second baseline).

LBC "aims to convert the Bitcoin network topology from normal randomised
neighbour selection to location based neighbour selection.  Clusters in LBC
are formulated by referring an extra function to each node ... each node is
responsible for recommending proximity nodes to its neighbours.  The proximity
is defined based on the physical geographical location" (Section V.C).

Here each node joins the cluster of the geographically closest discovered node
(within a great-circle distance threshold), connects preferentially to the
geographically nearest members of its cluster, and keeps a small number of
long-distance links for inter-cluster visibility.  Crucially, LBC never
measures latency — which is why node pairs that are geographically close but
latency-far (routing detours) end up as LBC neighbours, the effect the paper
identifies as the reason BCBPT beats LBC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import NeighbourPolicy, TopologyBuildReport
from repro.protocol.discovery import DnsSeedService
from repro.protocol.network import P2PNetwork


@dataclass(frozen=True)
class LbcConfig:
    """Configuration of the LBC policy.

    Attributes:
        max_outbound: intra-cluster outbound connections per node.
        geographic_threshold_km: two nodes are considered geographically close
            when their great-circle distance is below this value.
        long_links_per_node: deliberate links to peers outside the node's
            cluster, keeping the overlay globally connected.
        recommendation_size: how many close peers a node recommends when asked
            (the "extra function" of the LBC description).
    """

    max_outbound: int = 8
    geographic_threshold_km: float = 1500.0
    long_links_per_node: int = 2
    recommendation_size: int = 20

    def __post_init__(self) -> None:
        if self.max_outbound <= 0:
            raise ValueError("max_outbound must be positive")
        if self.geographic_threshold_km <= 0:
            raise ValueError("geographic_threshold_km must be positive")
        if self.long_links_per_node < 0:
            raise ValueError("long_links_per_node cannot be negative")
        if self.recommendation_size <= 0:
            raise ValueError("recommendation_size must be positive")


class LbcPolicy(NeighbourPolicy):
    """Geography-based clustering (LBC)."""

    name = "lbc"

    def __init__(
        self,
        network: P2PNetwork,
        seed_service: DnsSeedService,
        rng: np.random.Generator,
        config: LbcConfig | None = None,
    ) -> None:
        self.config = config if config is not None else LbcConfig()
        super().__init__(network, seed_service, rng, max_outbound=self.config.max_outbound)

    # -------------------------------------------------------------- geometry
    def geographic_distance_km(self, node_a: int, node_b: int) -> float:
        """Great-circle distance between two nodes in kilometres."""
        return self.network.position(node_a).distance_km(self.network.position(node_b))

    def recommend_peers(self, recommender: int, target: int) -> list[int]:
        """The LBC 'extra function': peers near ``target`` known to ``recommender``.

        A node recommends, from its own cluster, the peers geographically
        closest to the asking node.
        """
        cluster = self.clusters.cluster_of(recommender)
        if cluster is None:
            return []
        candidates = [m for m in cluster.member_list() if m != target]
        candidates.sort(key=lambda peer: (self.geographic_distance_km(target, peer), peer))
        return candidates[: self.config.recommendation_size]

    # ----------------------------------------------------------- peer choice
    def select_peers(self, node_id: int) -> list[int]:
        """Geographically-close cluster members (random order), then close outsiders.

        Symmetrically to BCBPT, the geographic threshold is the membership
        criterion and the choice among qualifying peers is uniform; LBC never
        measures latency, so a geographically-close pair that happens to be
        latency-far (a routing detour) is as likely to be picked as any other
        — the weakness the paper attributes to LBC in its Fig. 3 discussion.
        """
        cluster = self.clusters.cluster_of(node_id)
        current = set(self.network.neighbors(node_id))
        online = set(self.network.online_node_ids())

        def usable(peer: int) -> bool:
            return peer != node_id and peer not in current and peer in online

        def close_subset(candidates: list[int]) -> list[int]:
            qualifying = [
                peer
                for peer in candidates
                if self.geographic_distance_km(node_id, peer) < self.config.geographic_threshold_km
            ]
            if len(qualifying) > 1:
                order = self.rng.permutation(len(qualifying))
                qualifying = [qualifying[int(i)] for i in order]
            return qualifying

        ranked: list[int] = []
        if cluster is not None:
            ranked.extend(close_subset([m for m in cluster.member_list() if usable(m)]))
        if len(ranked) < self.max_outbound:
            # Not enough close cluster members: consider the geographically
            # nearest non-members that still qualify under the threshold.
            outsiders = [
                peer for peer in online if usable(peer) and peer not in set(ranked)
            ]
            outsiders.sort(key=lambda peer: (self.geographic_distance_km(node_id, peer), peer))
            ranked.extend(close_subset(outsiders[: self.config.recommendation_size]))
        return ranked

    # ------------------------------------------------------------ clustering
    def assign_to_cluster(self, node_id: int) -> None:
        """Join the cluster of the geographically closest assigned node, or found one."""
        candidates = self.seed_service.query_proximity_ranked(node_id)
        best_peer = None
        best_distance = float("inf")
        for peer in candidates:
            if self.clusters.cluster_of(peer) is None:
                continue
            distance = self.geographic_distance_km(node_id, peer)
            if distance < best_distance:
                best_peer, best_distance = peer, distance
        if best_peer is not None and best_distance < self.config.geographic_threshold_km:
            cluster = self.clusters.cluster_of(best_peer)
            assert cluster is not None  # guarded by the candidate filter above
            self.clusters.assign(node_id, cluster.cluster_id)
        else:
            self.clusters.create_cluster(node_id, created_at=self.network.simulator.now)
            self.stats.clusters_formed += 1

    def _add_long_links(self, node_id: int) -> None:
        """Connect to a few random peers outside the node's cluster."""
        cluster = self.clusters.cluster_of(node_id)
        members = set(cluster.members) if cluster is not None else set()
        outsiders = [
            peer
            for peer in self.network.online_node_ids()
            if peer != node_id
            and peer not in members
            and not self.network.topology.are_connected(node_id, peer)
        ]
        if not outsiders:
            return
        count = min(self.config.long_links_per_node, len(outsiders))
        picked = self.rng.choice(len(outsiders), size=count, replace=False)
        for index in picked:
            if self.network.connect(node_id, outsiders[int(index)], is_long_link=True):
                self.stats.long_links_created += 1

    # ----------------------------------------------------------------- build
    def build_topology(self) -> TopologyBuildReport:
        """Cluster every online node geographically, then wire up the overlay."""
        pings_before = self.network.messages_sent.get("ping", 0)
        control_before = self._control_message_count()
        online = sorted(self.network.online_node_ids())
        for node_id in online:
            self.assign_to_cluster(node_id)
        for node_id in online:
            self.connect_node(node_id)
            if self.config.long_links_per_node > 0:
                self._add_long_links(node_id)
        self.ensure_connected_overlay()
        return self._build_report(
            ping_exchanges=self.network.messages_sent.get("ping", 0) - pings_before,
            control_messages=self._control_message_count() - control_before,
        )

    # -------------------------------------------------------------- churn
    def on_node_join(self, node_id: int) -> None:
        """Re-cluster and reconnect a node that has come back online."""
        self.assign_to_cluster(node_id)
        self.connect_node(node_id)
        if self.config.long_links_per_node > 0:
            self._add_long_links(node_id)
        self.stats.repairs_performed += 1

    def _control_message_count(self) -> int:
        counters = self.network.messages_sent
        return sum(
            counters.get(command, 0)
            for command in ("getaddr", "addr", "join", "join_accept", "cluster_members")
        )
