"""The paper's contribution: proximity-aware neighbour selection.

Three neighbour-selection policies share one interface
(:class:`~repro.core.policy.NeighbourPolicy`), so the identical protocol stack
can be run under each — which is how the paper frames BCBPT, as an extension
of the existing Bitcoin protocol rather than a replacement:

* :class:`~repro.core.random_topology.RandomNeighbourPolicy` — vanilla Bitcoin:
  each node picks outbound peers uniformly at random, "regardless of any
  proximity criteria";
* :class:`~repro.core.lbc.LbcPolicy` — the authors' earlier LBC protocol:
  peers are grouped by physical geographic location;
* :class:`~repro.core.bcbpt.BcbptPolicy` — BCBPT, this paper: peers are grouped
  by measured round-trip ping latency under a threshold ``d_t`` (Eq. 1), using
  the distance utility function of Eq. 2-4, with a few long-distance links per
  node for inter-cluster visibility.

Public entry points: the three policy classes above (usually reached through
:func:`repro.workloads.scenarios.build_scenario` by name),
:class:`~repro.core.cluster.ClusterRegistry` (cluster membership and
summaries) and :class:`~repro.core.maintenance.ChurnMaintainer` (session
lifecycle + periodic cluster repair under churn).
"""

from repro.core.bcbpt import BcbptConfig, BcbptPolicy
from repro.core.cluster import Cluster, ClusterRegistry
from repro.core.distance import DistanceCalculator, DistanceEstimate
from repro.core.lbc import LbcConfig, LbcPolicy
from repro.core.maintenance import ChurnMaintainer
from repro.core.policy import NeighbourPolicy, PolicyStatistics, TopologyBuildReport
from repro.core.random_topology import RandomNeighbourPolicy, RandomPolicyConfig

__all__ = [
    "BcbptConfig",
    "BcbptPolicy",
    "ChurnMaintainer",
    "Cluster",
    "ClusterRegistry",
    "DistanceCalculator",
    "DistanceEstimate",
    "LbcConfig",
    "LbcPolicy",
    "NeighbourPolicy",
    "PolicyStatistics",
    "RandomNeighbourPolicy",
    "RandomPolicyConfig",
    "TopologyBuildReport",
]
