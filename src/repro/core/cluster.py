"""Cluster data structures shared by the clustering policies.

A *cluster* is a set of nodes that consider each other close (by ping latency
under BCBPT, by geography under LBC) and are therefore densely connected among
themselves.  The :class:`ClusterRegistry` tracks cluster membership globally —
in the real protocol this knowledge is distributed, but the simulator keeps a
registry so that experiments can ask questions like "how large did clusters
get for threshold 30 ms" (the explanation the paper gives for Fig. 4) and the
attack experiments can target a specific cluster.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator, Optional


@dataclass
class Cluster:
    """One cluster of mutually-close nodes.

    Attributes:
        cluster_id: unique id assigned by the registry.
        members: node ids currently in the cluster.
        founder: node that started the cluster (the first node that could not
            find an existing close cluster to join).
        created_at: simulated time the cluster was created.
    """

    cluster_id: int
    founder: int
    created_at: float = 0.0
    members: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.members.add(self.founder)

    @property
    def size(self) -> int:
        """Number of member nodes."""
        return len(self.members)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.members

    def add(self, node_id: int) -> None:
        """Add a member (idempotent)."""
        self.members.add(node_id)

    def remove(self, node_id: int) -> None:
        """Remove a member if present."""
        self.members.discard(node_id)

    def member_list(self) -> list[int]:
        """Members in sorted order (deterministic for messages and tests)."""
        return sorted(self.members)


class ClusterRegistry:
    """Global bookkeeping of clusters and node membership."""

    def __init__(self) -> None:
        self._clusters: dict[int, Cluster] = {}
        self._membership: dict[int, int] = {}
        self._id_counter = itertools.count()

    # --------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self._clusters)

    def clusters(self) -> Iterator[Cluster]:
        """Iterate over all clusters."""
        return iter(self._clusters.values())

    def cluster(self, cluster_id: int) -> Cluster:
        """Look up a cluster by id.

        Raises:
            KeyError: if the cluster does not exist.
        """
        return self._clusters[cluster_id]

    def cluster_of(self, node_id: int) -> Optional[Cluster]:
        """The cluster containing ``node_id``, or None."""
        cluster_id = self._membership.get(node_id)
        if cluster_id is None:
            return None
        return self._clusters[cluster_id]

    def are_same_cluster(self, node_a: int, node_b: int) -> bool:
        """Whether two nodes belong to the same cluster."""
        cluster_a = self._membership.get(node_a)
        return cluster_a is not None and cluster_a == self._membership.get(node_b)

    def cluster_sizes(self) -> list[int]:
        """Sizes of all clusters, descending."""
        return sorted((c.size for c in self._clusters.values()), reverse=True)

    def assigned_nodes(self) -> int:
        """Number of nodes currently assigned to some cluster."""
        return len(self._membership)

    # -------------------------------------------------------------- mutation
    def create_cluster(self, founder: int, *, created_at: float = 0.0) -> Cluster:
        """Start a new cluster with ``founder`` as its first member.

        The founder is removed from any previous cluster first.
        """
        self.remove_node(founder)
        cluster = Cluster(
            cluster_id=next(self._id_counter), founder=founder, created_at=created_at
        )
        self._clusters[cluster.cluster_id] = cluster
        self._membership[founder] = cluster.cluster_id
        return cluster

    def assign(self, node_id: int, cluster_id: int) -> Cluster:
        """Move a node into an existing cluster (a no-op if already a member).

        Raises:
            KeyError: if the cluster does not exist.
        """
        cluster = self._clusters[cluster_id]
        if self._membership.get(node_id) == cluster_id:
            return cluster
        self.remove_node(node_id)
        cluster.add(node_id)
        self._membership[node_id] = cluster_id
        return cluster

    def remove_node(self, node_id: int) -> Optional[int]:
        """Remove a node from its cluster (empty clusters are deleted).

        Returns:
            The id of the cluster it was removed from, or None.
        """
        cluster_id = self._membership.pop(node_id, None)
        if cluster_id is None:
            return None
        cluster = self._clusters[cluster_id]
        cluster.remove(node_id)
        if cluster.size == 0:
            del self._clusters[cluster_id]
        return cluster_id

    # ------------------------------------------------------------ statistics
    def summary(self) -> dict[str, float]:
        """Aggregate cluster statistics used by experiments and reports."""
        sizes = self.cluster_sizes()
        if not sizes:
            return {
                "cluster_count": 0,
                "assigned_nodes": 0,
                "mean_size": 0.0,
                "max_size": 0,
                "min_size": 0,
            }
        return {
            "cluster_count": len(sizes),
            "assigned_nodes": self.assigned_nodes(),
            "mean_size": sum(sizes) / len(sizes),
            "max_size": sizes[0],
            "min_size": sizes[-1],
        }
