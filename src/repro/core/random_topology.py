"""Vanilla Bitcoin neighbour selection: uniform random peers.

"Currently in the Bitcoin network, a node connects with nodes regardless of
any proximity criteria" (Section I).  Each node asks the DNS seed for
addresses and opens outbound connections to a uniform random subset of
reachable peers, up to the outbound quota (8 in Bitcoin Core).  This policy is
the paper's baseline in Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policy import NeighbourPolicy, TopologyBuildReport
from repro.protocol.discovery import DnsSeedService
from repro.protocol.network import P2PNetwork


@dataclass(frozen=True)
class RandomPolicyConfig:
    """Configuration of the random (vanilla Bitcoin) policy.

    Attributes:
        max_outbound: outbound connections per node (Bitcoin Core default 8).
        candidate_pool_size: how many addresses a node considers per
            connection round (a DNS seed answer plus some ADDR gossip).
    """

    max_outbound: int = 8
    candidate_pool_size: int = 40

    def __post_init__(self) -> None:
        if self.max_outbound <= 0:
            raise ValueError("max_outbound must be positive")
        if self.candidate_pool_size < self.max_outbound:
            raise ValueError("candidate_pool_size must be at least max_outbound")


class RandomNeighbourPolicy(NeighbourPolicy):
    """Uniform random outbound peer selection (the unmodified Bitcoin protocol)."""

    name = "bitcoin-random"

    def __init__(
        self,
        network: P2PNetwork,
        seed_service: DnsSeedService,
        rng: np.random.Generator,
        config: RandomPolicyConfig | None = None,
    ) -> None:
        self.config = config if config is not None else RandomPolicyConfig()
        super().__init__(network, seed_service, rng, max_outbound=self.config.max_outbound)

    def select_peers(self, node_id: int) -> list[int]:
        """A random permutation of reachable peers (excluding current neighbours)."""
        current = set(self.network.neighbors(node_id))
        candidates = [
            peer
            for peer in self.network.online_node_ids()
            if peer != node_id and peer not in current
        ]
        if not candidates:
            return []
        pool_size = min(self.config.candidate_pool_size, len(candidates))
        picked = self.rng.choice(len(candidates), size=pool_size, replace=False)
        return [candidates[i] for i in picked]

    def build_topology(self) -> TopologyBuildReport:
        """Connect every online node to ``max_outbound`` random peers."""
        pings_before = self.network.messages_sent.get("ping", 0)
        control_before = self._control_message_count()
        online = sorted(self.network.online_node_ids())
        for node_id in online:
            # One DNS query per node during bootstrap (counted, result unused:
            # the random policy treats every reachable peer equally).
            self.seed_service.query(node_id)
            self.connect_node(node_id)
        self.ensure_connected_overlay()
        return self._build_report(
            ping_exchanges=self.network.messages_sent.get("ping", 0) - pings_before,
            control_messages=self._control_message_count() - control_before,
        )

    def _control_message_count(self) -> int:
        counters = self.network.messages_sent
        return sum(
            counters.get(command, 0)
            for command in ("getaddr", "addr", "join", "join_accept", "cluster_members")
        )
