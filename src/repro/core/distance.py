"""Distance calculation between Bitcoin nodes (Section IV.A).

The paper defines proximity between two nodes as the round-trip ping latency
predicted by the utility function of Eq. (2)-(4) and declares two nodes close
when that distance falls below a threshold (Eq. 1):

    D_ij < D_th

Because "distances measurements are subject to network congestion and
therefore dynamic, within some variance, multiple messages between pairs of
nodes are repeatedly sent over the time in order to determine variance" — the
:class:`DistanceCalculator` therefore takes several ping samples per pair,
averages them, and reports the observed variance.  Every sample costs one
ping/pong exchange, which the overhead experiment (Ext-2 in DESIGN.md) counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.protocol.network import P2PNetwork


@dataclass(frozen=True)
class DistanceEstimate:
    """Result of measuring the distance between a pair of nodes.

    Attributes:
        node_a / node_b: the measured pair.
        mean_rtt_s: average of the ping RTT samples.
        std_rtt_s: sample standard deviation of the RTT samples.
        samples: number of ping exchanges used.
    """

    node_a: int
    node_b: int
    mean_rtt_s: float
    std_rtt_s: float
    samples: int

    def is_close(self, threshold_s: float) -> bool:
        """Eq. (1): whether the pair is considered close under ``threshold_s``."""
        if threshold_s <= 0:
            raise ValueError(f"distance threshold must be positive, got {threshold_s}")
        return self.mean_rtt_s < threshold_s


class DistanceCalculator:
    """Measures pairwise node distance by repeated ping sampling.

    Args:
        network: the P2P fabric (provides the latency model and traffic
            accounting).
        samples_per_pair: ping exchanges per distance estimate; the paper
            sends "multiple messages ... repeatedly over the time".
        cache: whether to memoise estimates per pair.  During one cluster
            generation phase the underlying base RTT is stable, so caching
            avoids re-measuring a pair both ends already measured; the cache
            can be disabled to study measurement overhead without reuse.
    """

    def __init__(
        self,
        network: "P2PNetwork",
        *,
        samples_per_pair: int = 3,
        cache: bool = True,
    ) -> None:
        if samples_per_pair <= 0:
            raise ValueError(f"samples_per_pair must be positive, got {samples_per_pair}")
        self._network = network
        self.samples_per_pair = samples_per_pair
        self._use_cache = cache
        self._cache: dict[tuple[int, int], DistanceEstimate] = {}
        self.measurements_taken = 0
        self.ping_exchanges = 0

    @staticmethod
    def _pair_key(node_a: int, node_b: int) -> tuple[int, int]:
        return (node_a, node_b) if node_a <= node_b else (node_b, node_a)

    def measure(self, node_a: int, node_b: int) -> DistanceEstimate:
        """Estimate the distance between two nodes by pinging.

        Each call charges ``samples_per_pair`` ping/pong exchanges to the
        network's traffic counters (unless served from the cache).
        """
        if node_a == node_b:
            raise ValueError("cannot measure the distance from a node to itself")
        key = self._pair_key(node_a, node_b)
        if self._use_cache and key in self._cache:
            return self._cache[key]
        # One batched call instead of samples_per_pair scalar pings: the pair's
        # routed path resolves once and the jitter factors are drawn as one
        # array, bit-identical to the sequential loop (see LatencyModel.sample_rtts).
        samples = self._network.measure_rtts(node_a, node_b, self.samples_per_pair)
        self._network.record_ping_exchange(self.samples_per_pair)
        self.ping_exchanges += self.samples_per_pair
        self.measurements_taken += 1
        mean = sum(samples) / len(samples)
        if len(samples) > 1:
            variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
        else:
            variance = 0.0
        estimate = DistanceEstimate(
            node_a=key[0],
            node_b=key[1],
            mean_rtt_s=mean,
            std_rtt_s=math.sqrt(variance),
            samples=len(samples),
        )
        if self._use_cache:
            self._cache[key] = estimate
        return estimate

    def is_close(self, node_a: int, node_b: int, threshold_s: float) -> bool:
        """Eq. (1) applied to a fresh (or cached) measurement of the pair."""
        return self.measure(node_a, node_b).is_close(threshold_s)

    def rank_by_distance(self, origin: int, candidates: list[int]) -> list[DistanceEstimate]:
        """Measure ``origin`` against every candidate, closest first."""
        estimates = [self.measure(origin, candidate) for candidate in candidates if candidate != origin]
        return sorted(estimates, key=lambda e: (e.mean_rtt_s, e.node_a, e.node_b))

    def clear_cache(self) -> None:
        """Forget every memoised estimate (e.g. between experiment repetitions)."""
        self._cache.clear()
