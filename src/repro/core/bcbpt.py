"""BCBPT: Bitcoin Clustering Based Ping Time (the paper's contribution).

Section IV: each node gathers proximity knowledge about discovered peers by
measuring round-trip ping latency (the Eq. 2-4 utility function, realised here
by actual ping sampling through :class:`~repro.core.distance.DistanceCalculator`),
declares a peer *close* when the measured distance is below the latency
threshold ``d_t`` (Eq. 1, 25 ms in the paper's main experiment), and

* **cluster generation** (Section IV.B): a joining node learns candidate peers
  from the DNS seed (ranked geographically, since that is all the seed knows),
  measures its distance to each, sends a ``JOIN`` request to the closest one,
  receives the list of that node's cluster members, and connects only to
  members of that cluster — preferring the lowest-latency ones;
* **cluster maintenance**: every node periodically (the paper uses 100 ms)
  discovers new peers through the normal Bitcoin mechanism and applies the
  same distance rule to decide whether to connect;
* each node additionally keeps "a few long distance links to the outside
  cluster" so information from other clusters remains visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.cluster import Cluster
from repro.core.distance import DistanceCalculator
from repro.core.policy import NeighbourPolicy, TopologyBuildReport
from repro.protocol.discovery import DnsSeedService
from repro.protocol.messages import (
    ClusterMembersMessage,
    JoinAcceptMessage,
    JoinMessage,
)
from repro.protocol.network import P2PNetwork
from repro.protocol.node import BitcoinNode


@dataclass(frozen=True)
class BcbptConfig:
    """Configuration of the BCBPT policy.

    Attributes:
        latency_threshold_s: ``d_t`` of Eq. (1); the paper evaluates 25 ms in
            Fig. 3 and {30, 50, 100} ms in Fig. 4.
        max_outbound: intra-cluster outbound connections per node.
        ping_samples: ping exchanges per distance estimate ("multiple messages
            ... repeatedly over the time").
        candidates_per_round: how many discovered peers a node measures per
            discovery round.
        long_links_per_node: deliberate links to peers outside the cluster.
        discovery_interval_s: period of the maintenance discovery round
            (100 ms in the paper's experiment setup).
    """

    latency_threshold_s: float = 0.025
    max_outbound: int = 8
    ping_samples: int = 3
    candidates_per_round: int = 25
    long_links_per_node: int = 2
    discovery_interval_s: float = 0.1

    def __post_init__(self) -> None:
        if self.latency_threshold_s <= 0:
            raise ValueError("latency_threshold_s must be positive")
        if self.max_outbound <= 0:
            raise ValueError("max_outbound must be positive")
        if self.ping_samples <= 0:
            raise ValueError("ping_samples must be positive")
        if self.candidates_per_round <= 0:
            raise ValueError("candidates_per_round must be positive")
        if self.long_links_per_node < 0:
            raise ValueError("long_links_per_node cannot be negative")
        if self.discovery_interval_s <= 0:
            raise ValueError("discovery_interval_s must be positive")


class BcbptPolicy(NeighbourPolicy):
    """Ping-latency clustering (BCBPT)."""

    name = "bcbpt"

    def __init__(
        self,
        network: P2PNetwork,
        seed_service: DnsSeedService,
        rng: np.random.Generator,
        config: BcbptConfig | None = None,
    ) -> None:
        self.config = config if config is not None else BcbptConfig()
        super().__init__(network, seed_service, rng, max_outbound=self.config.max_outbound)
        self.distances = DistanceCalculator(
            network, samples_per_pair=self.config.ping_samples
        )

    # --------------------------------------------------------------- metrics
    @property
    def latency_threshold_s(self) -> float:
        """The active distance threshold ``d_t`` in seconds."""
        return self.config.latency_threshold_s

    def measured_distance_s(self, node_a: int, node_b: int) -> float:
        """Mean measured ping RTT between two nodes (charges ping traffic)."""
        return self.distances.measure(node_a, node_b).mean_rtt_s

    def are_close(self, node_a: int, node_b: int) -> bool:
        """Eq. (1): whether the measured distance is under the threshold."""
        return self.distances.is_close(node_a, node_b, self.config.latency_threshold_s)

    # ----------------------------------------------------------- peer choice
    def select_peers(self, node_id: int) -> list[int]:
        """Peers that pass the Eq. (1) threshold, in random order, cluster members first.

        Peers whose measured distance exceeds ``d_t`` are never selected —
        "these two nodes would have a very little chance to get directly
        connected and stay in the same cluster if they are so far away from
        each other" (Section IV.A).  Among the peers that *do* qualify, the
        choice is uniform: the threshold is the protocol's membership
        criterion, and within a cluster nodes connect the same way ordinary
        Bitcoin peers do.  (This is what makes the threshold value matter —
        the paper's Fig. 4 — a larger ``d_t`` admits slower links.)  Nodes
        with few close peers rely on their long-distance links for
        connectivity instead of opening latency-far cluster links.
        """
        cluster = self.clusters.cluster_of(node_id)
        current = set(self.network.neighbors(node_id))
        online = set(self.network.online_node_ids())

        def usable(peer: int) -> bool:
            return peer != node_id and peer not in current and peer in online

        def close_subset(candidates: list[int]) -> list[int]:
            estimates = self.distances.rank_by_distance(node_id, candidates)
            qualifying = [
                e.node_b if e.node_a == node_id else e.node_a
                for e in estimates
                if e.is_close(self.config.latency_threshold_s)
            ]
            if len(qualifying) > 1:
                order = self.rng.permutation(len(qualifying))
                qualifying = [qualifying[int(i)] for i in order]
            return qualifying

        ranked: list[int] = []
        if cluster is not None:
            ranked.extend(close_subset([m for m in cluster.member_list() if usable(m)]))
        if len(ranked) < self.max_outbound:
            # Not enough close cluster members: measure the geographically
            # nearest outsiders and keep only those under the threshold.
            outsiders = [
                peer
                for peer in self.seed_service.query_proximity_ranked(node_id)
                if usable(peer) and peer not in set(ranked)
            ]
            ranked.extend(close_subset(outsiders[: self.config.candidates_per_round]))
        return ranked

    # ------------------------------------------------------------ clustering
    def assign_to_cluster(self, node_id: int) -> Optional[Cluster]:
        """Run the Section IV.B join procedure for one node.

        Returns the cluster the node ended up in (a new one if no discovered
        peer was within the latency threshold).
        """
        candidates = self.seed_service.query_proximity_ranked(node_id)
        candidates = candidates[: self.config.candidates_per_round]
        assigned_candidates = [
            peer for peer in candidates if self.clusters.cluster_of(peer) is not None
        ]
        estimates = self.distances.rank_by_distance(node_id, assigned_candidates)
        for estimate in estimates:
            if not estimate.is_close(self.config.latency_threshold_s):
                # Candidates are sorted by distance; the first miss ends the search.
                break
            closest = estimate.node_b if estimate.node_a == node_id else estimate.node_a
            cluster = self.clusters.cluster_of(closest)
            if cluster is None:
                continue
            # JOIN handshake: one JOIN, one JOIN_ACCEPT, one CLUSTER_MEMBERS
            # listing the cluster, all charged to the traffic counters.
            self._charge_join_traffic(cluster)
            self.stats.join_requests_sent += 1
            return self.clusters.assign(node_id, cluster.cluster_id)
        cluster = self.clusters.create_cluster(node_id, created_at=self.network.simulator.now)
        self.stats.clusters_formed += 1
        return cluster

    def _charge_join_traffic(self, cluster: Cluster) -> None:
        from repro.net.message import message_size_bytes

        counters = self.network.messages_sent
        sizes = self.network.bytes_sent
        counters["join"] += 1
        sizes["join"] += message_size_bytes("join")
        counters["join_accept"] += 1
        sizes["join_accept"] += message_size_bytes("join_accept")
        counters["cluster_members"] += 1
        sizes["cluster_members"] += message_size_bytes("cluster_members", cluster.size)

    def _add_long_links(self, node_id: int) -> None:
        """Connect to a few random peers outside the node's cluster (long links)."""
        cluster = self.clusters.cluster_of(node_id)
        members = set(cluster.members) if cluster is not None else set()
        outsiders = [
            peer
            for peer in self.network.online_node_ids()
            if peer != node_id
            and peer not in members
            and not self.network.topology.are_connected(node_id, peer)
        ]
        if not outsiders:
            return
        count = min(self.config.long_links_per_node, len(outsiders))
        picked = self.rng.choice(len(outsiders), size=count, replace=False)
        for index in picked:
            if self.network.connect(node_id, outsiders[int(index)], is_long_link=True):
                self.stats.long_links_created += 1

    # ----------------------------------------------------------------- build
    def build_topology(self) -> TopologyBuildReport:
        """Cluster generation phase: assign every online node, then connect."""
        pings_before = self.network.messages_sent.get("ping", 0)
        control_before = self._control_message_count()
        online = sorted(self.network.online_node_ids())
        for node_id in online:
            self.assign_to_cluster(node_id)
        for node_id in online:
            self.connect_node(node_id)
            if self.config.long_links_per_node > 0:
                self._add_long_links(node_id)
        self.ensure_connected_overlay()
        return self._build_report(
            ping_exchanges=self.network.messages_sent.get("ping", 0) - pings_before,
            control_messages=self._control_message_count() - control_before,
        )

    # ----------------------------------------------------------------- churn
    def on_node_join(self, node_id: int) -> None:
        """Re-run the join procedure for a node coming back online."""
        self.assign_to_cluster(node_id)
        self.connect_node(node_id)
        if self.config.long_links_per_node > 0:
            self._add_long_links(node_id)
        self.stats.repairs_performed += 1

    def run_discovery_round(self, node_id: int) -> int:
        """Periodic discovery (paper: every 100 ms): measure new peers, connect if close."""
        self.stats.discovery_rounds += 1
        if not self.network.is_online(node_id):
            return 0
        degree = self.network.topology.degree(node_id)
        if degree >= self.max_outbound:
            return 0
        return self.connect_node(node_id, limit=self.max_outbound - degree)

    # ---------------------------------------------- message-driven join path
    # These three methods implement the ClusterMessageListener protocol so the
    # join handshake can also be exercised as real JOIN / JOIN_ACCEPT /
    # CLUSTER_MEMBERS messages flowing through the network (used by the
    # event-driven example and its tests).
    def on_join_request(self, node: BitcoinNode, sender: int, message: JoinMessage) -> None:
        """A peer asked ``node`` to admit it to ``node``'s cluster."""
        cluster = self.clusters.cluster_of(node.node_id)
        if cluster is None:
            cluster = self.clusters.create_cluster(
                node.node_id, created_at=self.network.simulator.now
            )
            self.stats.clusters_formed += 1
        self.clusters.assign(sender, cluster.cluster_id)
        self.network.send(
            node.node_id,
            sender,
            JoinAcceptMessage(sender=node.node_id, cluster_id=cluster.cluster_id),
        )
        self.network.send(
            node.node_id,
            sender,
            ClusterMembersMessage(
                sender=node.node_id,
                cluster_id=cluster.cluster_id,
                members=tuple(cluster.member_list()),
            ),
        )

    def on_join_accept(self, node: BitcoinNode, sender: int, message: JoinAcceptMessage) -> None:
        """The admitting node confirmed membership; nothing further to do."""

    def on_cluster_members(
        self, node: BitcoinNode, sender: int, message: ClusterMembersMessage
    ) -> None:
        """Received the member list: connect to the closest members under the threshold."""
        created = 0
        candidates = [m for m in message.members if m != node.node_id]
        estimates = self.distances.rank_by_distance(node.node_id, candidates)
        for estimate in estimates:
            if created >= self.max_outbound:
                break
            if not estimate.is_close(self.config.latency_threshold_s):
                break
            peer = estimate.node_b if estimate.node_a == node.node_id else estimate.node_a
            if self.network.connect(node.node_id, peer, is_cluster_link=True):
                created += 1
                self.stats.connections_created += 1

    def _control_message_count(self) -> int:
        counters = self.network.messages_sent
        return sum(
            counters.get(command, 0)
            for command in ("getaddr", "addr", "join", "join_accept", "cluster_members")
        )
