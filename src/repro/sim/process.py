"""Cooperative processes for the simulation kernel.

A *process* is a Python generator driven by the engine.  Each ``yield``
suspends the process until the yielded condition is satisfied:

* ``yield Timeout(1.5)`` — resume 1.5 simulated seconds later;
* ``yield some_wait_event`` — resume when another component triggers the
  :class:`WaitEvent` (optionally passing a value back into the generator);
* ``yield 0.25`` — shorthand for ``Timeout(0.25)``.

Processes are used for long-running behaviours such as node churn, periodic
peer discovery, and the transaction workload generator.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional


class ProcessExit(Exception):
    """Internal signal that a process generator has finished."""


class Timeout:
    """Yielded by a process to sleep for ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"timeout delay cannot be negative, got {delay}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay})"


class WaitEvent:
    """A one-shot condition that processes can wait on.

    A component creates a :class:`WaitEvent`, hands it to interested processes
    (which ``yield`` it), and later calls :meth:`trigger` with an optional
    value.  Every waiter resumes with that value.  Triggering twice is an
    error; waiting on an already-triggered event resumes immediately on the
    next engine step.
    """

    __slots__ = ("_waiters", "_triggered", "_value", "name")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self._triggered = False
        self._value: Any = None

    @property
    def triggered(self) -> bool:
        """True once :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`trigger` (None before triggering)."""
        return self._value

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register a resume callback; used by the engine, not user code."""
        if self._triggered:
            resume(self._value)
        else:
            self._waiters.append(resume)

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming every waiting process with ``value``."""
        if self._triggered:
            raise RuntimeError(f"WaitEvent {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else f"{len(self._waiters)} waiting"
        return f"WaitEvent({self.name!r}, {state})"


class Process:
    """Wrapper around a generator being driven by the engine."""

    __slots__ = ("_generator", "name", "_alive", "_result")

    def __init__(self, generator: Iterator[Any], name: str = "") -> None:
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._alive = True
        self._result: Optional[Any] = None

    @property
    def alive(self) -> bool:
        """True while the generator has not returned or been killed."""
        return self._alive

    @property
    def result(self) -> Any:
        """The generator's return value once it has finished."""
        return self._result

    def step(self, value: Any) -> Any:
        """Advance the generator, returning what it yields.

        Raises:
            ProcessExit: when the generator completes.
        """
        if not self._alive:
            raise ProcessExit()
        try:
            return self._generator.send(value)
        except StopIteration as stop:
            self._alive = False
            self._result = stop.value
            raise ProcessExit() from None

    def kill(self) -> None:
        """Terminate the process; it will not be resumed again."""
        if self._alive:
            self._alive = False
            self._generator.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self._alive else "finished"
        return f"Process({self.name!r}, {state})"
