"""The discrete-event simulation engine.

:class:`Simulator` owns the clock, the event heap, the random-number service
and the tracer.  All network, protocol and measurement components schedule
work through :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` or by
spawning generator-based processes with :meth:`Simulator.spawn`.

The engine is single-threaded and deterministic: two runs constructed with the
same seed execute exactly the same event sequence.

The event heap stores ``(time, priority, sequence, event)`` tuples so heap
sifts compare plain numbers; combined with ``__slots__`` on :class:`Event`
this keeps the per-event dispatch cost low (the hot loop is the dominant cost
of every experiment).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

from repro.sim.clock import SimClock
from repro.sim.events import Event, EventHandle, EventPriority
from repro.sim.process import Process, ProcessExit, Timeout, WaitEvent
from repro.sim.rng import RandomService
from repro.sim.trace import Tracer


class StopSimulation(Exception):
    """Raised by a callback or process to stop the run immediately."""


class Simulator:
    """Deterministic discrete-event simulator.

    Args:
        seed: master seed for the :class:`RandomService`.  Every stochastic
            component derives its own stream from this seed, so a single
            integer reproduces an entire experiment.
        trace: whether to record an event trace (useful in tests and for the
            measurement layer's bookkeeping; adds memory overhead).
    """

    def __init__(self, seed: int = 0, trace: bool = False) -> None:
        self.clock = SimClock()
        self.random = RandomService(seed)
        self.tracer = Tracer(enabled=trace)
        #: Heap of (time, priority, sequence, Event) tuples; the leading
        #: numeric fields keep heap comparisons away from rich Python objects
        #: and ``sequence`` is unique, so the Event itself is never compared.
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._processes: list[Process] = []

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def events_executed(self) -> int:
        """Number of events that have fired so far."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    # ------------------------------------------------------------- scheduling
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule an event in the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, priority=priority, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = EventPriority.NORMAL,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule an event in the past: now={self.now}, requested={time}"
            )
        event = Event(
            time=float(time),
            priority=int(priority),
            sequence=self._sequence,
            callback=callback,
            label=label,
        )
        self._sequence += 1
        heapq.heappush(self._heap, (event.time, event.priority, event.sequence, event))
        return EventHandle(event)

    def call_soon(self, callback: Callable[[], Any], *, label: str = "") -> EventHandle:
        """Schedule ``callback`` to run at the current time, after current events."""
        return self.schedule(0.0, callback, label=label)

    # -------------------------------------------------------------- processes
    def spawn(self, generator: Iterator[Any], *, name: str = "") -> Process:
        """Start a cooperative process.

        The generator may ``yield``:

        * :class:`Timeout(delay)` — resume after ``delay`` simulated seconds;
        * :class:`WaitEvent(event)` — resume when the given wait-event fires;
        * a plain float — shorthand for ``Timeout(float)``.

        Returns:
            The :class:`Process` wrapper, which exposes ``alive`` and
            ``result``.
        """
        process = Process(generator, name=name)
        self._processes.append(process)
        self.call_soon(lambda: self._step_process(process, None), label=f"spawn:{name}")
        return process

    def _step_process(self, process: Process, value: Any) -> None:
        if not process.alive:
            return
        try:
            yielded = process.step(value)
        except ProcessExit:
            return
        self._handle_yield(process, yielded)

    def _handle_yield(self, process: Process, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            self.schedule(
                yielded.delay,
                lambda: self._step_process(process, None),
                label=f"timeout:{process.name}",
            )
        elif isinstance(yielded, WaitEvent):
            yielded.add_waiter(lambda value: self._step_process(process, value))
        elif isinstance(yielded, (int, float)):
            self.schedule(
                float(yielded),
                lambda: self._step_process(process, None),
                label=f"timeout:{process.name}",
            )
        else:
            raise TypeError(
                f"process {process.name!r} yielded unsupported value {yielded!r}; "
                "yield a Timeout, WaitEvent, or a number of seconds"
            )

    # ------------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the simulation.

        Args:
            until: stop once the clock would pass this time (the clock is left
                at ``until``).  ``None`` runs until the event heap drains.
            max_events: safety valve — stop after this many events.

        Returns:
            The simulated time at which the run stopped.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run() call)")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        clock = self.clock
        try:
            while heap:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    heappop(heap)
                    continue
                event_time = entry[0]
                if until is not None and event_time > until:
                    clock.advance_to(until)
                    break
                heappop(heap)
                clock.advance_to(event_time)
                self._events_executed += 1
                try:
                    event.callback()
                except StopSimulation:
                    self._stopped = True
                    break
                if max_events is not None and self._events_executed >= max_events:
                    break
            else:
                # Heap drained without hitting the until-limit: if an explicit
                # horizon was requested, report time as that horizon.
                if until is not None and until > self.now:
                    self.clock.advance_to(until)
        finally:
            self._running = False
        return self.now

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        raise StopSimulation()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}, pending={self.pending_events}, "
            f"executed={self._events_executed})"
        )
