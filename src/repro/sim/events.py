"""Event objects and handles used by the simulation engine.

An :class:`Event` is a scheduled callback.  Ordering in the event heap is by
``(time, priority, sequence)``:

* ``time`` — absolute simulated time in seconds;
* ``priority`` — lower runs first among events at the same instant.  Protocol
  code mostly uses the default; the engine uses priorities to make control
  events (e.g. simulation stop) run after ordinary events at the same time;
* ``sequence`` — a monotonically increasing tie-breaker, so events scheduled
  earlier in wall-clock order run first and the ordering is fully
  deterministic.

The engine stores ``(time, priority, sequence, event)`` tuples in its heap, so
heap sift operations compare plain floats/ints and never fall through to the
event object itself (``sequence`` is unique).  :class:`Event` keeps a
``__lt__`` implementing the same ordering for direct comparisons in tests and
debugging, but the hot path never calls it.

Cancellation is handled by flagging the event rather than removing it from the
heap (lazy deletion), which keeps cancellation O(1).
"""

from __future__ import annotations

import enum
from typing import Any, Callable


class EventPriority(enum.IntEnum):
    """Relative ordering of events that share the same timestamp."""

    URGENT = 0
    NORMAL = 10
    LOW = 20
    CONTROL = 100


class Event:
    """A single scheduled callback.

    Attributes:
        time: absolute simulated time at which the callback fires.
        priority: tie-break priority (lower fires first).
        sequence: engine-assigned monotonic tie-breaker.
        callback: callable invoked as ``callback()`` when the event fires.
        label: human-readable label used in traces and error messages.
        cancelled: set by :meth:`EventHandle.cancel`; cancelled events are
            skipped when popped.
    """

    __slots__ = ("time", "priority", "sequence", "callback", "label", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        sequence: int,
        callback: Callable[[], Any],
        label: str = "",
        cancelled: bool = False,
    ) -> None:
        self.time = time
        self.priority = priority
        self.sequence = sequence
        self.callback = callback
        self.label = label
        self.cancelled = cancelled

    @property
    def sort_key(self) -> tuple[float, int, int]:
        """The ``(time, priority, sequence)`` ordering key."""
        return (self.time, self.priority, self.sequence)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key < other.sort_key

    def __le__(self, other: "Event") -> bool:
        return self.sort_key <= other.sort_key

    def __gt__(self, other: "Event") -> bool:
        return self.sort_key > other.sort_key

    def __ge__(self, other: "Event") -> bool:
        return self.sort_key >= other.sort_key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.sort_key == other.sort_key

    def __hash__(self) -> int:
        return hash((Event, self.sequence))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return (
            f"Event(t={self.time:.6f}, prio={self.priority}, seq={self.sequence}, "
            f"label={self.label!r}, {state})"
        )


class EventHandle:
    """Reference to a scheduled event allowing cancellation and inspection."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def label(self) -> str:
        """Label given when the event was scheduled."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event.

        Returns:
            True if the event was still pending and is now cancelled, False if
            it had already been cancelled.
        """
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.6f}, label={self.label!r}, {state})"
