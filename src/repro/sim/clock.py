"""Simulation clock.

The clock is a thin wrapper around a float number of simulated seconds.  It is
owned by the :class:`~repro.sim.engine.Simulator` and only the engine may
advance it; every other component reads it through ``simulator.now``.

Keeping the clock as its own object (rather than a bare float attribute) lets
components hold a reference to the clock and observe time advancing without
holding a reference to the whole engine, which keeps the measurement layer
decoupled from the scheduling layer.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"simulation time cannot start negative, got {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to ``t``.

        Raises:
            ValueError: if ``t`` is earlier than the current time.  The engine
                guarantees events are popped in order, so this only fires on
                programming errors.
        """
        if t < self._now:
            raise ValueError(
                f"cannot move simulation clock backwards: now={self._now}, requested={t}"
            )
        self._now = float(t)

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock, used when an engine is reused between runs."""
        if start < 0:
            raise ValueError(f"simulation time cannot start negative, got {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"
