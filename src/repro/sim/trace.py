"""Event tracing.

The tracer records ``(time, category, subject, detail)`` tuples.  The protocol
layer emits traces for message sends/receives and the measurement layer emits
traces for transaction announcements; tests assert against them and the
overhead experiment counts them.

Tracing is off by default because a full Fig. 3 run generates millions of
records; experiments that need it opt in per category.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """A single trace entry."""

    time: float
    category: str
    subject: str
    detail: Any = None


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered by category."""

    def __init__(self, enabled: bool = False, categories: Optional[Iterable[str]] = None) -> None:
        self.enabled = enabled
        self._categories = set(categories) if categories is not None else None
        self._records: list[TraceRecord] = []
        self._counts: Counter[str] = Counter()

    def record(self, time: float, category: str, subject: str, detail: Any = None) -> None:
        """Store a record if tracing is enabled and the category is selected."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        self._records.append(TraceRecord(time, category, subject, detail))
        self._counts[category] += 1

    def records(self, category: Optional[str] = None) -> list[TraceRecord]:
        """Return recorded entries, optionally restricted to one category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def count(self, category: Optional[str] = None) -> int:
        """Number of records, optionally restricted to one category."""
        if category is None:
            return len(self._records)
        return self._counts.get(category, 0)

    def clear(self) -> None:
        """Drop all recorded entries."""
        self._records.clear()
        self._counts.clear()

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Tracer({state}, {len(self._records)} records)"
