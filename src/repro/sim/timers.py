"""Periodic timers.

Bitcoin nodes run several recurring activities — peer discovery every 100 ms
in the paper's setup, ping keep-alives, cluster maintenance.  A
:class:`PeriodicTimer` wraps the "reschedule yourself after each firing"
pattern and supports jitter so that thousands of nodes do not fire at exactly
the same instant (which would be unrealistic and create artificial event
storms).
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Simulator


class PeriodicTimer:
    """Repeatedly invoke a callback at a fixed interval.

    Args:
        simulator: owning engine.
        interval: seconds between firings.
        callback: invoked with no arguments on every firing.
        jitter: if non-zero, each interval is multiplied by a uniform factor in
            ``[1 - jitter, 1 + jitter]`` drawn from ``rng``.
        rng: random stream used for jitter; required when ``jitter > 0``.
        start_delay: delay before the first firing; defaults to one interval.
        label: label used for scheduled events (shows up in traces).
    """

    def __init__(
        self,
        simulator: "Simulator",
        interval: float,
        callback: Callable[[], None],
        *,
        jitter: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        start_delay: Optional[float] = None,
        label: str = "periodic",
    ) -> None:
        if interval <= 0:
            raise ValueError(f"timer interval must be positive, got {interval}")
        if jitter < 0 or jitter >= 1:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if jitter > 0 and rng is None:
            raise ValueError("a random stream is required when jitter > 0")
        self._simulator = simulator
        self._interval = float(interval)
        self._callback = callback
        self._jitter = float(jitter)
        self._rng = rng
        self._label = label
        self._running = False
        self._handle = None
        self._fired = 0
        self._start_delay = self._next_interval() if start_delay is None else float(start_delay)

    @property
    def running(self) -> bool:
        """True while the timer is scheduled."""
        return self._running

    @property
    def fired(self) -> int:
        """Number of times the callback has run."""
        return self._fired

    @property
    def interval(self) -> float:
        """Nominal interval in seconds."""
        return self._interval

    def start(self) -> None:
        """Begin firing.  Starting an already-running timer is an error."""
        if self._running:
            raise RuntimeError(f"timer {self._label!r} is already running")
        self._running = True
        self._handle = self._simulator.schedule(
            self._start_delay, self._fire, label=self._label
        )

    def stop(self) -> None:
        """Stop firing.  Safe to call when already stopped."""
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_interval(self) -> float:
        if self._jitter == 0.0 or self._rng is None:
            return self._interval
        factor = self._rng.uniform(1.0 - self._jitter, 1.0 + self._jitter)
        return self._interval * factor

    def _fire(self) -> None:
        if not self._running:
            return
        self._fired += 1
        self._callback()
        if self._running:
            self._handle = self._simulator.schedule(
                self._next_interval(), self._fire, label=self._label
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "running" if self._running else "stopped"
        return f"PeriodicTimer({self._label!r}, every {self._interval}s, {state})"
