"""Deterministic discrete-event simulation kernel.

The kernel is intentionally small and dependency-free: a binary-heap event
queue keyed on ``(time, priority, sequence)``, a simulation clock measured in
seconds (float), cooperative processes implemented as generators, periodic
timers, a hierarchical seeded random-number service, and an event trace
recorder used by the measurement layer.

Everything in the repository that "happens over time" — message transmission,
ping round trips, node churn, transaction relay — is scheduled through
:class:`~repro.sim.engine.Simulator`.

Public entry points: :class:`~repro.sim.engine.Simulator` (the event loop:
``schedule`` / ``run(until=...)``), :class:`~repro.sim.rng.RandomService`
(named deterministic random streams — the root of the repository's
same-seed ⇒ same-trace guarantee), :class:`~repro.sim.timers.PeriodicTimer`
and :class:`~repro.sim.trace.Tracer`.
"""

from repro.sim.clock import SimClock
from repro.sim.engine import Simulator, StopSimulation
from repro.sim.events import Event, EventHandle
from repro.sim.process import Process, Timeout, WaitEvent
from repro.sim.rng import RandomService
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "Process",
    "RandomService",
    "SimClock",
    "Simulator",
    "StopSimulation",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "WaitEvent",
]
