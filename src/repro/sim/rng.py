"""Hierarchical seeded randomness.

Every stochastic component in the simulator (latency jitter, churn, workload,
topology generation, ...) asks the :class:`RandomService` for a *named stream*.
Streams are derived from the master seed and the stream name with SHA-256, so:

* the whole experiment is reproducible from one integer seed;
* adding a new random consumer does not perturb the draws seen by existing
  consumers (unlike sharing one generator);
* two components never accidentally share a stream.
"""

from __future__ import annotations

import hashlib

import numpy as np


class RandomService:
    """Factory for named, deterministic ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields an identical sequence of
        draws, independent of creation order.
        """
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def fork(self, name: str) -> "RandomService":
        """Create a child service with an independent but derived master seed.

        Used when one experiment spins up several simulator instances (e.g.
        repeated measurement runs) that must not share streams.
        """
        return RandomService(self._derive_seed(f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomService(seed={self.seed}, streams={sorted(self._streams)})"
