"""Funding helpers and background transaction workloads.

The measuring node (and any node that should emit payments) needs confirmed,
spendable outputs.  :func:`fund_nodes` installs a *funding block* — one block
at height 1 containing a coinbase output per (node, output) pair — directly on
every node's chain, standing in for history that would precede the experiment
in the real network.

:class:`TransactionWorkload` generates background payment traffic: funded
nodes create and broadcast transactions following a Poisson process, the way
ordinary wallet activity arrives in the real network.  The fork-rate,
double-spend and attack experiments all run on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.protocol.block import Block
from repro.protocol.node import BitcoinNode
from repro.protocol.transaction import Transaction
from repro.protocol.utxo import UtxoSet
from repro.sim.engine import Simulator
from repro.sim.process import Timeout


def fund_nodes(
    nodes: Sequence[BitcoinNode],
    *,
    amount_satoshi: int = 1_000_000,
    outputs_per_node: int = 1,
    funded_node_ids: Optional[Sequence[int]] = None,
) -> Block:
    """Give nodes confirmed spendable outputs by installing a shared funding block.

    Args:
        nodes: every node in the network (all of them must learn the block so
            their ledgers agree).
        amount_satoshi: value of each funding output.
        outputs_per_node: number of separate outputs per funded node (a
            measurement campaign of N runs needs at least N outputs on the
            measuring node, because change stays unconfirmed).
        funded_node_ids: nodes that receive outputs; defaults to all of them.

    Returns:
        The funding block that was installed on every node.

    Raises:
        ValueError: on nonsensical amounts/counts or if any node has already
            advanced past the genesis block (the funding block must be the
            first block everyone agrees on).
    """
    if amount_satoshi <= 0:
        raise ValueError(f"amount_satoshi must be positive, got {amount_satoshi}")
    if outputs_per_node <= 0:
        raise ValueError(f"outputs_per_node must be positive, got {outputs_per_node}")
    if not nodes:
        raise ValueError("fund_nodes needs at least one node")
    funded = set(funded_node_ids) if funded_node_ids is not None else {n.node_id for n in nodes}
    by_id = {node.node_id: node for node in nodes}
    unknown = funded - set(by_id)
    if unknown:
        raise ValueError(f"cannot fund unknown node ids: {sorted(unknown)}")

    reference = nodes[0]
    if reference.blockchain.height != 0:
        raise ValueError("fund_nodes must run before any blocks are mined")
    funding_txs = [
        Transaction.coinbase(
            by_id[node_id].keypair.address,
            amount_satoshi,
            tag=f"funding:{node_id}:{output_index}",
        )
        for node_id in sorted(funded)
        for output_index in range(outputs_per_node)
    ]
    funding_block = Block.create(
        reference.blockchain.genesis,
        funding_txs,
        timestamp=0.0,
        nonce=0,
        miner_id=-1,
    )
    # Every node ends up with the identical (genesis + funding block) ledger,
    # so the UTXO set is computed once and copied — rebuilding it per node is
    # O(nodes * outputs) transaction applications per node, which dominated
    # experiment start-up at scale.
    shared_utxo: Optional[UtxoSet] = None
    funding_txids = [tx.txid for tx in funding_txs]
    for node in nodes:
        if node.blockchain.height != 0:
            raise ValueError(f"node {node.node_id} has already advanced past genesis")
        node.blockchain.add_block(funding_block)
        if shared_utxo is None:
            shared_utxo = node.blockchain.utxo_set()
        node.utxo = shared_utxo.copy()
        node.known_blocks.add(funding_block.block_hash)
        node.known_transactions.update(funding_txids)
    return funding_block


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the background transaction workload.

    Attributes:
        transactions_per_second: network-wide mean arrival rate of new payments.
        payment_satoshi: value of each generated payment.
        sender_count: how many distinct funded nodes emit payments (a subset
            keeps wallet management simple); senders are drawn once at start.
    """

    transactions_per_second: float = 0.5
    payment_satoshi: int = 5_000
    sender_count: int = 20

    def __post_init__(self) -> None:
        if self.transactions_per_second <= 0:
            raise ValueError("transactions_per_second must be positive")
        if self.payment_satoshi <= 0:
            raise ValueError("payment_satoshi must be positive")
        if self.sender_count <= 0:
            raise ValueError("sender_count must be positive")


class TransactionWorkload:
    """Poisson background payment traffic between simulated wallets."""

    def __init__(
        self,
        simulator: Simulator,
        nodes: dict[int, BitcoinNode],
        rng: np.random.Generator,
        config: Optional[WorkloadConfig] = None,
    ) -> None:
        if not nodes:
            raise ValueError("the workload needs at least one node")
        self._simulator = simulator
        self._nodes = nodes
        self._rng = rng
        self.config = config if config is not None else WorkloadConfig()
        self.transactions_created = 0
        self.failures = 0
        self._running = False
        self._senders: list[int] = []

    @property
    def senders(self) -> list[int]:
        """Node ids selected as payment senders (empty until started)."""
        return list(self._senders)

    def start(self) -> None:
        """Begin generating transactions."""
        if self._running:
            raise RuntimeError("the workload is already running")
        self._running = True
        candidate_ids = sorted(self._nodes)
        count = min(self.config.sender_count, len(candidate_ids))
        picked = self._rng.choice(len(candidate_ids), size=count, replace=False)
        self._senders = [candidate_ids[int(i)] for i in picked]
        self._simulator.spawn(self._generate_forever(), name="tx-workload")

    def stop(self) -> None:
        """Stop after the next scheduled arrival."""
        self._running = False

    def _generate_forever(self):
        while self._running:
            gap = float(self._rng.exponential(1.0 / self.config.transactions_per_second))
            yield Timeout(max(gap, 1e-6))
            if not self._running:
                return
            self._emit_one()

    def _emit_one(self) -> None:
        sender_id = self._senders[int(self._rng.integers(len(self._senders)))]
        sender = self._nodes[sender_id]
        if sender.network is not None and not sender.network.is_online(sender_id):
            self.failures += 1
            return
        receiver_id = sender_id
        while receiver_id == sender_id:
            receiver_id = int(self._rng.integers(len(self._nodes)))
            receiver_id = sorted(self._nodes)[receiver_id]
        receiver = self._nodes[receiver_id]
        try:
            sender.create_transaction(
                [(receiver.keypair.address, self.config.payment_satoshi)]
            )
        except ValueError:
            # Wallet exhausted (all outputs unconfirmed); count and move on.
            self.failures += 1
            return
        self.transactions_created += 1
