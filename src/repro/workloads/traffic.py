"""Open-loop traffic plane: load schedules, fee draws and confirmation latency.

The paper measures propagation under short fixed-rate bursts; its claim only
matters under *sustained* load, where mempools fill, blocks hit their size cap
and the user-visible metric becomes confirmation latency.  This module
provides that load:

* :class:`TrafficProfile` — an offered-load schedule (constant, ramp or step)
  giving the aggregate transaction arrival rate as a function of simulated
  time;
* :class:`FeeModel` — a deterministic per-seed fee distribution, so admission
  and block inclusion become a fee market instead of FIFO;
* :class:`TrafficModel` — an open-loop Poisson generator driving per-node
  transaction creation as simulator events (thinning against the profile's
  peak rate, so time-varying schedules stay exact);
* :class:`ConfirmationTracker` — an observer on one node's
  ``block_listeners`` that streams tx-generated → tx-buried-``k``-deep
  latency through constant-size P² quantile estimators, so multi-hour runs
  with thousands of blocks never store a per-sample series.

Determinism contract: arrival and fee draws come from the dedicated
``"traffic-arrivals"`` / ``"traffic-fees"`` streams of the simulator's
:class:`~repro.sim.rng.RandomService`.  Named streams are derived
independently from the master seed, so wiring a TrafficModel into a scenario
does not perturb a single draw seen by the existing consumers — with traffic
off (or simply absent) every other workload, including the fig3 golden
fingerprints, stays byte-identical.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.stats import StreamingQuantile
from repro.protocol.node import BitcoinNode
from repro.sim.engine import Simulator
from repro.sim.process import Timeout

#: Profile kinds accepted by :class:`TrafficProfile`.
PROFILE_KINDS = ("constant", "ramp", "step")


@dataclass(frozen=True)
class TrafficProfile:
    """Aggregate offered load (tx/s) as a function of simulated time.

    Attributes:
        kind: ``"constant"`` (always ``rate_tps``), ``"ramp"`` (linear from
            ``base_rate_tps`` to ``rate_tps`` over ``ramp_duration_s``) or
            ``"step"`` (``base_rate_tps`` until ``step_at_s``, then
            ``rate_tps``).
        rate_tps: the target aggregate rate (the final rate for ramps, the
            post-step rate for steps).
        base_rate_tps: the starting rate for ramp/step profiles.
        ramp_duration_s: seconds a ramp takes to reach ``rate_tps``.
        step_at_s: time at which a step profile jumps.
    """

    kind: str = "constant"
    rate_tps: float = 1.0
    base_rate_tps: float = 0.0
    ramp_duration_s: float = 0.0
    step_at_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in PROFILE_KINDS:
            raise ValueError(f"unknown profile kind {self.kind!r}; expected one of {PROFILE_KINDS}")
        if self.rate_tps <= 0:
            raise ValueError(f"rate_tps must be positive, got {self.rate_tps}")
        if self.base_rate_tps < 0:
            raise ValueError(f"base_rate_tps cannot be negative, got {self.base_rate_tps}")
        if self.kind == "ramp" and self.ramp_duration_s <= 0:
            raise ValueError("a ramp profile needs a positive ramp_duration_s")
        if self.kind == "step" and self.step_at_s <= 0:
            raise ValueError("a step profile needs a positive step_at_s")

    def rate_at(self, t: float) -> float:
        """Offered aggregate rate (tx/s) at simulated time ``t``."""
        if self.kind == "constant":
            return self.rate_tps
        if self.kind == "ramp":
            fraction = min(max(t / self.ramp_duration_s, 0.0), 1.0)
            return self.base_rate_tps + (self.rate_tps - self.base_rate_tps) * fraction
        return self.base_rate_tps if t < self.step_at_s else self.rate_tps

    def peak_rate(self) -> float:
        """The schedule's maximum rate (the thinning envelope)."""
        return max(self.rate_tps, self.base_rate_tps)


@dataclass(frozen=True)
class FeeModel:
    """Deterministic per-seed fee distribution.

    Fees are drawn from an exponential distribution (most transactions pay
    little, a heavy tail pays a lot — the shape real fee markets show), with
    an optional floor.  All draws come from the ``"traffic-fees"`` stream.
    """

    mean_fee_satoshi: float = 200.0
    min_fee_satoshi: int = 1

    def __post_init__(self) -> None:
        if self.mean_fee_satoshi < 0:
            raise ValueError(f"mean_fee_satoshi cannot be negative, got {self.mean_fee_satoshi}")
        if self.min_fee_satoshi < 0:
            raise ValueError(f"min_fee_satoshi cannot be negative, got {self.min_fee_satoshi}")

    def draw(self, rng: np.random.Generator) -> int:
        """Draw one fee in satoshi."""
        if self.mean_fee_satoshi == 0:
            return self.min_fee_satoshi
        return self.min_fee_satoshi + int(rng.exponential(self.mean_fee_satoshi))


class ConfirmationTracker:
    """Streams tx-generated → buried-``depth``-deep confirmation latency.

    Attached to one observer node's ``block_listeners`` (the same observe-only
    contract as :class:`~repro.analysis.samples.BlockArrivalRecorder`): on
    every accepted block it notes which watched transactions were included,
    and once an inclusion is ``depth`` confirmations deep *and still on the
    best chain* it emits the latency into constant-size P² quantile
    estimators.  A transaction reorganised off the best chain goes back to
    pending, so a later re-inclusion restarts its burial count without losing
    its generation time.

    Memory is O(pending transactions) + O(1) quantile state — no per-sample
    series, which is what lets the load-frontier experiment run multi-hour
    horizons with thousands of blocks.
    """

    def __init__(self, node: BitcoinNode, *, depth: int = 6) -> None:
        if depth < 1:
            raise ValueError(f"confirmation depth must be at least 1, got {depth}")
        self._node = node
        self.depth = depth
        self._created_at: dict[str, float] = {}
        self._inflight: set[str] = set()
        self._inclusions: list[tuple[int, str]] = []  # (height, txid) min-heap
        self.p50 = StreamingQuantile(0.5)
        self.p99 = StreamingQuantile(0.99)
        self.confirmed = 0
        self.latency_sum = 0.0
        self.latency_max = 0.0
        node.block_listeners.append(self._on_block)

    @property
    def pending(self) -> int:
        """Watched transactions not yet buried ``depth`` deep."""
        return len(self._created_at)

    @property
    def mean_latency(self) -> float:
        """Mean confirmation latency in seconds (0.0 before any confirmation)."""
        return self.latency_sum / self.confirmed if self.confirmed else 0.0

    def register(self, txid: str, created_at: float) -> None:
        """Start watching a freshly-generated transaction."""
        self._created_at[txid] = created_at

    def _on_block(self, node_id: int, block, accepted_at: float) -> None:
        for tx in block.transactions:
            if tx.txid in self._created_at and tx.txid not in self._inflight:
                self._inflight.add(tx.txid)
                heapq.heappush(self._inclusions, (block.height, tx.txid))
        chain = self._node.blockchain
        burial_horizon = chain.height - self.depth + 1
        while self._inclusions and self._inclusions[0][0] <= burial_horizon:
            height, txid = heapq.heappop(self._inclusions)
            self._inflight.discard(txid)
            created = self._created_at.get(txid)
            if created is None:
                continue
            if not chain.contains_transaction(txid):
                # Reorganised off the best chain: back to pending; a later
                # inclusion re-enters the heap through the loop above.
                continue
            latency = accepted_at - created
            del self._created_at[txid]
            self.confirmed += 1
            self.latency_sum += latency
            self.latency_max = max(self.latency_max, latency)
            self.p50.add(latency)
            self.p99.add(latency)


class TrafficModel:
    """Open-loop Poisson transaction generation against a load schedule.

    Candidate arrivals are drawn at the profile's peak rate and thinned to
    the instantaneous rate (exact for time-varying schedules); each accepted
    arrival picks a uniformly random funded sender, a distinct receiver and a
    fee from the :class:`FeeModel`, then creates and broadcasts the payment.
    Open-loop means arrivals never wait for the network: when a wallet cannot
    fund a payment (all outputs unconfirmed — the saturated regime) the
    arrival is counted in :attr:`generation_failures` and the schedule keeps
    going.
    """

    def __init__(
        self,
        simulator: Simulator,
        nodes: dict[int, BitcoinNode],
        *,
        profile: TrafficProfile,
        fee_model: Optional[FeeModel] = None,
        payment_satoshi: int = 5_000,
        sender_ids: Optional[Sequence[int]] = None,
        tracker: Optional[ConfirmationTracker] = None,
    ) -> None:
        if not nodes:
            raise ValueError("the traffic model needs at least one node")
        if payment_satoshi <= 0:
            raise ValueError(f"payment_satoshi must be positive, got {payment_satoshi}")
        self._simulator = simulator
        self._nodes = nodes
        self.profile = profile
        self.fee_model = fee_model if fee_model is not None else FeeModel()
        self.payment_satoshi = int(payment_satoshi)
        self._senders = sorted(sender_ids) if sender_ids is not None else sorted(nodes)
        if not self._senders:
            raise ValueError("the traffic model needs at least one sender")
        self._node_ids = sorted(nodes)
        # Dedicated split streams: creating them cannot perturb draws seen by
        # any other consumer (see the RandomService stream-derivation contract).
        self._arrival_rng = simulator.random.stream("traffic-arrivals")
        self._fee_rng = simulator.random.stream("traffic-fees")
        self.tracker = tracker
        self.txs_generated = 0
        self.generation_failures = 0
        self.fees_offered = 0
        self._running = False

    def start(self) -> None:
        """Begin generating load."""
        if self._running:
            raise RuntimeError("the traffic model is already running")
        self._running = True
        self._simulator.spawn(self._generate_forever(), name="traffic")

    def stop(self) -> None:
        """Stop after the next candidate arrival."""
        self._running = False

    def _generate_forever(self):
        peak = self.profile.peak_rate()
        while self._running:
            gap = float(self._arrival_rng.exponential(1.0 / peak))
            yield Timeout(max(gap, 1e-6))
            if not self._running:
                return
            # Thinning: accept the candidate with probability rate/peak, so
            # the accepted process is Poisson at the instantaneous rate.
            rate = self.profile.rate_at(self._simulator.now)
            if float(self._arrival_rng.random()) * peak > rate:
                continue
            self._emit_one()

    def _emit_one(self) -> None:
        sender_id = self._senders[int(self._arrival_rng.integers(len(self._senders)))]
        sender = self._nodes[sender_id]
        fee = self.fee_model.draw(self._fee_rng)
        if sender.network is not None and not sender.network.is_online(sender_id):
            self.generation_failures += 1
            return
        receiver_id = sender_id
        while receiver_id == sender_id:
            receiver_id = self._node_ids[int(self._arrival_rng.integers(len(self._node_ids)))]
        receiver = self._nodes[receiver_id]
        try:
            tx = sender.create_transaction(
                [(receiver.keypair.address, self.payment_satoshi)], fee=fee
            )
        except ValueError:
            # Wallet exhausted (all outputs unconfirmed); open-loop load
            # keeps arriving regardless.
            self.generation_failures += 1
            return
        self.txs_generated += 1
        self.fees_offered += fee
        if self.tracker is not None:
            self.tracker.register(tx.txid, self._simulator.now)
