"""Workload and scenario construction.

* :mod:`repro.workloads.network_gen` — builds a complete simulated network
  (engine, geography, latency model, nodes, DNS seed) from a
  :class:`~repro.workloads.network_gen.NetworkParameters` description;
* :mod:`repro.workloads.generators` — funding helpers and background
  transaction workload generators;
* :mod:`repro.workloads.traffic` — the open-loop traffic plane: load
  schedules (:class:`~repro.workloads.traffic.TrafficProfile`), per-seed fee
  draws, Poisson generation as simulator events and streamed confirmation
  latency (:class:`~repro.workloads.traffic.ConfirmationTracker`);
* :mod:`repro.workloads.scenarios` — named presets combining a network, a
  neighbour-selection policy and (optionally) churn, used by the examples,
  experiments and benchmarks.

Public entry points: :func:`~repro.workloads.scenarios.build_scenario` (the
one call that assembles network + policy + relay + churn from names),
:class:`~repro.workloads.network_gen.NetworkParameters`,
:func:`~repro.workloads.generators.fund_nodes` and
:class:`~repro.workloads.scenarios.ChurnSchedule`.
"""

from repro.workloads.generators import TransactionWorkload, WorkloadConfig, fund_nodes
from repro.workloads.network_gen import NetworkParameters, SimulatedNetwork, build_network
from repro.workloads.traffic import (
    ConfirmationTracker,
    FeeModel,
    TrafficModel,
    TrafficProfile,
)
from repro.workloads.scenarios import (
    POLICY_NAMES,
    RELAY_NAMES,
    ChurnSchedule,
    Scenario,
    build_policy,
    build_scenario,
    validate_policy_name,
    validate_relay_name,
)

__all__ = [
    "ChurnSchedule",
    "ConfirmationTracker",
    "FeeModel",
    "NetworkParameters",
    "POLICY_NAMES",
    "RELAY_NAMES",
    "Scenario",
    "SimulatedNetwork",
    "TrafficModel",
    "TrafficProfile",
    "TransactionWorkload",
    "WorkloadConfig",
    "build_network",
    "build_policy",
    "build_scenario",
    "fund_nodes",
    "validate_policy_name",
    "validate_relay_name",
]
