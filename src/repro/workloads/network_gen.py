"""Construction of a complete simulated Bitcoin network.

:func:`build_network` assembles every substrate component — event engine,
geography, latency and bandwidth models, link delay calculator, P2P fabric,
nodes and DNS seed — from a single :class:`NetworkParameters` description, and
returns them bundled in a :class:`SimulatedNetwork`.  All experiments,
examples and most tests start from here.

Network snapshots
-----------------

Building a large network is expensive (position sampling, node construction,
registration), and a (point × seed) experiment grid rebuilds the *same*
network for every point sharing a seed.  :func:`save_network` /
:func:`load_network` snapshot a freshly-built network to disk so the grid
builds each (node count, seed) network once and every cell resumes from its
own private copy.  Snapshots are stream-exact: every random stream is derived
by name from the master seed (creation-order independent) and numpy
``Generator`` objects pickle with their exact bit-stream position, so
build → save → load → run is byte-identical to build → run.  Only *quiescent*
networks snapshot — no pending events, no live processes — which is exactly
the state :func:`build_network` returns.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.net.bandwidth import BandwidthModel
from repro.net.churn import SessionLengthModel, SessionParameters
from repro.net.geo import GeoModel, Region
from repro.net.latency import LatencyModel, LatencyParameters
from repro.net.link import LinkDelayCalculator
from repro.net.topology import OverlayTopology
from repro.protocol.block import Block
from repro.protocol.discovery import DnsSeedService
from repro.protocol.network import P2PNetwork
from repro.protocol.node import BitcoinNode, NodeConfig
from repro.protocol.validation import TransactionValidator, VerificationCostModel
from repro.sim.engine import Simulator


@dataclass(frozen=True)
class NetworkParameters:
    """Everything needed to build a simulated network.

    Attributes:
        node_count: number of Bitcoin nodes.  The paper runs at the measured
            size of the reachable network (~5000); experiments here default to
            a few hundred for tractable runtimes and scale up on request.
        seed: master random seed (drives every stochastic component).
        latency: parameters of the Eq. (2)-(4) latency model.
        node_config: per-node behaviour (outbound quota, relay flags, ...).
        verification_cost: CPU cost model for transaction validation.
        session: churn session-length parameters (only used when an experiment
            enables churn).
        max_connections: per-node cap applied by the overlay topology.
        use_bandwidth_model: whether to draw heterogeneous per-node access
            rates (True) or use the flat link rate from the latency model.
        regions: custom world regions (defaults to the built-in set).
        seed_sample_size: how many addresses a DNS query returns.
        trace: enable event tracing on the engine.
    """

    node_count: int = 200
    seed: int = 1
    latency: LatencyParameters = field(default_factory=LatencyParameters)
    node_config: NodeConfig = field(default_factory=NodeConfig)
    verification_cost: VerificationCostModel = field(default_factory=VerificationCostModel)
    session: SessionParameters = field(default_factory=SessionParameters)
    max_connections: int = 125
    use_bandwidth_model: bool = True
    regions: Optional[Sequence[Region]] = None
    seed_sample_size: int = 25
    trace: bool = False

    def __post_init__(self) -> None:
        if self.node_count < 2:
            raise ValueError(f"a network needs at least 2 nodes, got {self.node_count}")
        if self.max_connections <= 0:
            raise ValueError("max_connections must be positive")
        if self.seed_sample_size <= 0:
            raise ValueError("seed_sample_size must be positive")

    def with_overrides(self, **kwargs: object) -> "NetworkParameters":
        """A copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass
class SimulatedNetwork:
    """A fully-wired simulated network and its supporting models."""

    parameters: NetworkParameters
    simulator: Simulator
    geo_model: GeoModel
    latency_model: LatencyModel
    bandwidth_model: Optional[BandwidthModel]
    network: P2PNetwork
    nodes: dict[int, BitcoinNode]
    seed_service: DnsSeedService
    session_model: SessionLengthModel
    genesis: Block

    @property
    def node_count(self) -> int:
        """Number of nodes in the network."""
        return len(self.nodes)

    def node(self, node_id: int) -> BitcoinNode:
        """Look up a node by id."""
        return self.nodes[node_id]

    def node_ids(self) -> list[int]:
        """All node ids, sorted."""
        return sorted(self.nodes)


def build_network(parameters: Optional[NetworkParameters] = None) -> SimulatedNetwork:
    """Build a ready-to-use simulated Bitcoin network.

    Every node is created online, attached to the P2P fabric and registered
    with the DNS seed, but no connections exist yet — establishing the overlay
    is the job of a :class:`~repro.core.policy.NeighbourPolicy`.
    """
    params = parameters if parameters is not None else NetworkParameters()
    simulator = Simulator(seed=params.seed, trace=params.trace)

    geo_model = GeoModel(simulator.random.stream("geo"), regions=params.regions)
    # Array mode: per-pair routing state in flat numpy arrays instead of dicts
    # (byte-identical streams; see LatencyModel).  This is what bounds memory
    # at 10k-node scale.
    latency_model = LatencyModel(
        simulator.random.stream("latency"),
        parameters=params.latency,
        node_count=params.node_count,
    )
    bandwidth_model = (
        BandwidthModel(simulator.random.stream("bandwidth")) if params.use_bandwidth_model else None
    )
    delay_calculator = LinkDelayCalculator(latency_model, bandwidth_model)
    topology = OverlayTopology(max_connections=params.max_connections)
    network = P2PNetwork(simulator, delay_calculator, topology)

    genesis = Block.genesis()
    validator = TransactionValidator(params.verification_cost)
    positions = geo_model.sample_positions(params.node_count)
    nodes: dict[int, BitcoinNode] = {}
    for node_id, position in enumerate(positions):
        node = BitcoinNode(
            node_id,
            position,
            config=params.node_config,
            validator=validator,
            genesis=genesis,
        )
        node.attach(network)
        nodes[node_id] = node

    seed_service = DnsSeedService(
        {node_id: node.position for node_id, node in nodes.items()},
        simulator.random.stream("dns-seed"),
        seed_sample_size=params.seed_sample_size,
    )
    for node_id in nodes:
        seed_service.set_online(node_id, True)

    session_model = SessionLengthModel(
        simulator.random.stream("sessions"), parameters=params.session
    )
    return SimulatedNetwork(
        parameters=params,
        simulator=simulator,
        geo_model=geo_model,
        latency_model=latency_model,
        bandwidth_model=bandwidth_model,
        network=network,
        nodes=nodes,
        seed_service=seed_service,
        session_model=session_model,
        genesis=genesis,
    )


# ------------------------------------------------------------------ snapshots
def save_network(simulated: SimulatedNetwork, path: Union[str, Path]) -> Path:
    """Snapshot a quiescent network to ``path`` (pickle, written atomically).

    The network must be at rest: a pending event or a live process would pull
    scheduled callbacks (closures, generators) into the pickle and make the
    resumed run diverge from — or fail against — a freshly-built one.  The
    output of :func:`build_network`, before any policy runs, always qualifies.

    Raises:
        ValueError: if the network has pending events or live processes.
    """
    simulator = simulated.simulator
    if simulator.pending_events:
        raise ValueError(
            f"cannot snapshot a network with {simulator.pending_events} pending "
            "event(s); snapshots capture quiescent networks only"
        )
    if any(process.alive for process in simulator._processes):
        raise ValueError(
            "cannot snapshot a network with live processes; snapshots capture "
            "quiescent networks only"
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.with_name(path.name + ".tmp")
    with open(tmp_path, "wb") as handle:
        pickle.dump(simulated, handle, protocol=pickle.HIGHEST_PROTOCOL)
    # Atomic publish: a concurrent reader sees either no file or a full one.
    os.replace(tmp_path, path)
    return path


def load_network(path: Union[str, Path]) -> SimulatedNetwork:
    """Load a network snapshot written by :func:`save_network`.

    Every load returns a fresh, fully independent copy: random streams resume
    at their exact saved bit positions, so running a policy/campaign on the
    loaded network is byte-identical to running it on the network the snapshot
    was taken from.

    Inside a warm-worker fork child (see
    :func:`serve_cached_snapshots`) the per-process cache is consulted
    first: the cached object was unpickled from the same bytes a cold load
    would read, and the child's copy-on-write memory makes it private, so
    the result is bit-identical either way.
    """
    cached = _cached_snapshot(path)
    if cached is not None:
        return cached
    with open(path, "rb") as handle:
        simulated = pickle.load(handle)
    if not isinstance(simulated, SimulatedNetwork):
        raise TypeError(f"{path} is not a SimulatedNetwork snapshot: {type(simulated)!r}")
    return simulated


# ------------------------------------------------------- warm snapshot cache
# Per-process warm cache for the pool backend's warm workers: a worker
# unpickles each snapshot it encounters once (LRU-bounded) and runs every
# snapshot-backed cell in a forked child, whose copy-on-write view of the
# cached network is private.  Serving is gated behind an explicit flag that
# only those single-cell children enable — handing the *same* object to two
# cells in one process would let mutations leak between them.
_SNAPSHOT_CACHE: "dict[str, SimulatedNetwork]" = {}
_SNAPSHOT_CACHE_LIMIT = 0
_SERVE_CACHED_SNAPSHOTS = False


def configure_snapshot_cache(limit: int) -> None:
    """Enable this process's warm snapshot cache with an LRU entry bound."""
    global _SNAPSHOT_CACHE_LIMIT
    _SNAPSHOT_CACHE_LIMIT = max(0, limit)
    if _SNAPSHOT_CACHE_LIMIT == 0:
        _SNAPSHOT_CACHE.clear()


def warm_snapshot(path: Union[str, Path]) -> bool:
    """Unpickle ``path`` into this process's warm cache (at most once).

    Returns True when the snapshot is cached afterwards; False when the
    cache is disabled (limit 0) or the file cannot be cached.
    """
    if _SNAPSHOT_CACHE_LIMIT <= 0:
        return False
    key = str(Path(path))
    if key in _SNAPSHOT_CACHE:
        # Refresh LRU recency (dicts preserve insertion order).
        _SNAPSHOT_CACHE[key] = _SNAPSHOT_CACHE.pop(key)
        return True
    with open(key, "rb") as handle:
        simulated = pickle.load(handle)
    if not isinstance(simulated, SimulatedNetwork):
        raise TypeError(f"{key} is not a SimulatedNetwork snapshot: {type(simulated)!r}")
    _SNAPSHOT_CACHE[key] = simulated
    while len(_SNAPSHOT_CACHE) > _SNAPSHOT_CACHE_LIMIT:
        _SNAPSHOT_CACHE.pop(next(iter(_SNAPSHOT_CACHE)))
    return True


def serve_cached_snapshots(enabled: bool) -> None:
    """Let :func:`load_network` return cached objects directly.

    Only safe in a process that loads **at most one** network and never
    shares it — in practice the pool backend's forked single-cell children.
    """
    global _SERVE_CACHED_SNAPSHOTS
    _SERVE_CACHED_SNAPSHOTS = enabled


def _cached_snapshot(path: Union[str, Path]) -> Optional[SimulatedNetwork]:
    if not _SERVE_CACHED_SNAPSHOTS:
        return None
    return _SNAPSHOT_CACHE.get(str(Path(path)))


def snapshot_filename(parameters: NetworkParameters) -> str:
    """Deterministic snapshot filename for one parameter set.

    Node count and seed are spelled out for human eyes; the digest over the
    full parameter repr distinguishes builds that differ in any other knob.
    """
    digest = hashlib.sha256(repr(parameters).encode()).hexdigest()[:12]
    return f"network-n{parameters.node_count}-s{parameters.seed}-{digest}.pkl"


def ensure_network_snapshot(
    parameters: NetworkParameters, directory: Union[str, Path]
) -> Path:
    """Build-and-save a network snapshot unless an identical one exists.

    The cache key is :func:`snapshot_filename`, so every distinct parameter
    set gets its own file and repeated calls (across points of an experiment
    grid) reuse the first build.
    """
    directory = Path(directory)
    path = directory / snapshot_filename(parameters)
    if not path.exists():
        save_network(build_network(parameters), path)
    return path
