"""Named scenario presets: network + policy (+ churn) ready to measure.

A :class:`Scenario` bundles a freshly-built network with a constructed
neighbour-selection policy and the build report of its topology.  Experiments,
benchmarks and examples use :func:`build_scenario` so they all agree on what
"run protocol X on a network of N nodes with seed S" means.  The relay
protocol is an independent axis: ``build_scenario(..., relay="compact")``
makes every node run the named
:class:`~repro.protocol.relay.RelayStrategy` instead of the default
INV/GETDATA flood.

Dynamic membership
------------------

Passing a :class:`ChurnSchedule` to :func:`build_scenario` turns the static
topology into a *dynamic-membership* scenario: a
:class:`~repro.core.maintenance.ChurnMaintainer` is wired to the network so
nodes leave and rejoin mid-simulation (session lengths drawn from
:class:`~repro.net.churn.SessionLengthModel`), departures tear their
connections down, and rejoining nodes are re-clustered and re-connected by the
scenario's policy.  Churn does not start on its own — call
:meth:`Scenario.start_churn` once the measurement phase begins, optionally
sparing a set of nodes (e.g. measuring nodes) from the churn cycle.

Composed attack scenarios
-------------------------

An :class:`AttackSpec` names an adversary composition and
:func:`install_attack` applies it to a built scenario: silent byzantine
peers scattered at random, captured cluster representatives (the PR-2
``representative_of`` role — the high-value target the paper never
stress-tests), delay injectors, or an eclipse ring of selective-relay nodes
placed latency-nearest to a victim (composed with churn by the attacks
experiment, so the overlay is being repaired while it is being attacked).
Adversary *selection* draws only from the ``"adversary-selection"`` named
stream and behaviours only from ``"adversary-behavior"``, so attack-off runs
stay byte-identical to builds that predate the adversary plane.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.bcbpt import BcbptConfig, BcbptPolicy
from repro.core.lbc import LbcConfig, LbcPolicy
from repro.core.maintenance import ChurnMaintainer
from repro.core.policy import NeighbourPolicy, TopologyBuildReport
from repro.core.random_topology import RandomNeighbourPolicy, RandomPolicyConfig
from repro.net.churn import SessionParameters
from repro.protocol.relay import RELAY_NAMES, validate_relay_name
from repro.workloads.network_gen import (
    NetworkParameters,
    SimulatedNetwork,
    build_network,
    load_network,
)

#: Protocol names accepted by :func:`build_policy` / :func:`build_scenario`.
POLICY_NAMES = ("bitcoin", "lbc", "bcbpt")

#: Adversary compositions accepted by :class:`AttackSpec` /
#: :func:`install_attack`.  ``"none"`` is the honest baseline cell;
#: ``"selfish"`` installs no relay behaviour here (the withholding filter is
#: wired by :class:`~repro.protocol.adversary.SelfishMiner`, which needs the
#: experiment's mining process).
ATTACK_KINDS = ("none", "byzantine", "representatives", "delay", "eclipse", "selfish")

__all__ = [
    "ATTACK_KINDS",
    "POLICY_NAMES",
    "RELAY_NAMES",
    "AttackSpec",
    "ChurnSchedule",
    "Scenario",
    "build_policy",
    "build_scenario",
    "install_attack",
    "validate_attack_kind",
    "validate_policy_name",
    "validate_relay_name",
]


def validate_attack_kind(kind: str) -> str:
    """Check an attack kind against :data:`ATTACK_KINDS` and return it.

    Raises:
        ValueError: for an unknown attack kind.
    """
    if kind not in ATTACK_KINDS:
        raise ValueError(f"unknown attack {kind!r}; expected one of {ATTACK_KINDS}")
    return kind


@dataclass(frozen=True)
class AttackSpec:
    """A picklable adversary composition for one scenario.

    Attributes:
        kind: one of :data:`ATTACK_KINDS`.
        fraction: share of the node population the adversary controls
            (``byzantine``/``delay``/``eclipse``; also the random-control
            size for ``representatives`` on non-clustered overlays).
        extra_delay_s: fixed extra forwarding delay of a ``delay`` adversary.
        delay_jitter_s: width of the uniform extra delay on top of it.
        hashpower: the selfish miner's hash-power share α (``selfish`` only).
    """

    kind: str = "none"
    fraction: float = 0.2
    extra_delay_s: float = 0.25
    delay_jitter_s: float = 0.25
    hashpower: float = 0.35

    def __post_init__(self) -> None:
        validate_attack_kind(self.kind)
        if not 0.0 < self.fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {self.fraction}")
        if self.extra_delay_s < 0:
            raise ValueError(f"extra_delay_s cannot be negative, got {self.extra_delay_s}")
        if self.delay_jitter_s < 0:
            raise ValueError(
                f"delay_jitter_s cannot be negative, got {self.delay_jitter_s}"
            )
        if not 0.0 < self.hashpower < 1.0:
            raise ValueError(f"hashpower must be in (0, 1), got {self.hashpower}")

    @property
    def needs_churn(self) -> bool:
        """Whether this composition runs on a dynamic-membership scenario."""
        return self.kind == "eclipse"

    @property
    def mines_selfishly(self) -> bool:
        """Whether the experiment must wire a selfish miner for this spec."""
        return self.kind == "selfish"


def install_attack(
    scenario: "Scenario",
    spec: AttackSpec,
    *,
    victim: Optional[int] = None,
    protected: Iterable[int] = (),
) -> tuple[int, ...]:
    """Install the spec's byzantine behaviours on a built scenario.

    Selection rules per kind:

    * ``byzantine`` — a ``fraction`` of the population, drawn uniformly from
      the ``"adversary-selection"`` stream, each made
      :class:`~repro.protocol.adversary.SilentByzantine`.
    * ``representatives`` — every cluster representative (the maintainer's
      :meth:`~repro.core.maintenance.ChurnMaintainer.representative_of` role
      when churn is wired, the cluster founder otherwise) turns silent.  On
      the non-clustered vanilla overlay there are no representatives, so an
      equal-``fraction`` random set stands in as the fair control cell.
    * ``delay`` — a random ``fraction`` becomes
      :class:`~repro.protocol.adversary.DelayByzantine`, adding
      ``extra_delay_s`` plus uniform ``delay_jitter_s`` to every relayed
      message (jitter drawn from ``"adversary-behavior"``).
    * ``eclipse`` — the ``fraction`` of nodes latency-nearest to ``victim``
      relay honestly to everyone *except* the victim
      (:class:`~repro.protocol.adversary.SelectiveByzantine`) — the
      concentrated-near-the-target placement the paper warns about.
    * ``none`` / ``selfish`` — no relay behaviours installed here.

    Args:
        scenario: the built scenario to corrupt.
        spec: the adversary composition.
        victim: the eclipse target (required for ``kind="eclipse"``).
        protected: node ids that must stay honest (e.g. the victim itself,
            the observation plane's reference node).

    Returns:
        The corrupted node ids, sorted.
    """
    from repro.protocol.adversary import (
        DelayByzantine,
        SelectiveByzantine,
        SilentByzantine,
    )

    if spec.kind in ("none", "selfish"):
        return ()
    simulated = scenario.network
    network = simulated.network
    shielded = set(protected)
    if victim is not None:
        shielded.add(victim)
    candidates = [n for n in simulated.node_ids() if n not in shielded]
    if not candidates:
        raise ValueError("no candidate nodes left to corrupt")
    count = max(1, int(spec.fraction * simulated.node_count))
    count = min(count, len(candidates))

    if spec.kind == "eclipse":
        if victim is None:
            raise ValueError("an eclipse attack needs a victim node id")
        candidates.sort(key=lambda peer: network.base_rtt(victim, peer))
        chosen = candidates[:count]
        for node_id in chosen:
            network.install_behavior(node_id, SelectiveByzantine({victim}))
        return tuple(sorted(chosen))

    if spec.kind == "representatives":
        representatives = _cluster_representatives(scenario)
        chosen = sorted(rep for rep in representatives if rep not in shielded)
        if not chosen:
            # Non-clustered control: an equally-sized random capture.
            chosen = _draw_nodes(simulated, candidates, count)
        for node_id in chosen:
            network.install_behavior(node_id, SilentByzantine())
        return tuple(chosen)

    chosen = _draw_nodes(simulated, candidates, count)
    if spec.kind == "byzantine":
        for node_id in chosen:
            network.install_behavior(node_id, SilentByzantine())
    else:  # "delay"
        rng = (
            simulated.simulator.random.stream("adversary-behavior")
            if spec.delay_jitter_s > 0
            else None
        )
        for node_id in chosen:
            network.install_behavior(
                node_id,
                DelayByzantine(
                    spec.extra_delay_s, jitter_s=spec.delay_jitter_s, rng=rng
                ),
            )
    return tuple(chosen)


def _draw_nodes(
    simulated: SimulatedNetwork, candidates: list[int], count: int
) -> list[int]:
    """Draw ``count`` distinct nodes from the ``"adversary-selection"`` stream."""
    rng = simulated.simulator.random.stream("adversary-selection")
    indexes = rng.choice(len(candidates), size=count, replace=False)
    return sorted(candidates[int(i)] for i in indexes)


def _cluster_representatives(scenario: "Scenario") -> list[int]:
    """One representative per cluster, in cluster-id order."""
    representatives: list[int] = []
    for cluster in scenario.policy.clusters.clusters():
        rep = None
        if scenario.maintainer is not None:
            rep = scenario.maintainer.representative_of(cluster.cluster_id)
        representatives.append(rep if rep is not None else cluster.founder)
    return representatives


def validate_policy_name(name: str) -> str:
    """Check a policy name against :data:`POLICY_NAMES` and return it.

    Every call path that accepts a protocol/policy name — scenario builders,
    experiment drivers, parallel job constructors — funnels through this
    check, so a typo fails immediately with a clear message instead of deep
    inside a worker process (or, worse, being silently skipped).

    Raises:
        ValueError: for an unknown policy name.
    """
    if name not in POLICY_NAMES:
        raise ValueError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")
    return name


@dataclass(frozen=True)
class ChurnSchedule:
    """When and how hard nodes churn in a dynamic-membership scenario.

    Attributes:
        median_session_s: median online-session length of ordinary nodes.
        sigma: log-normal session-length shape (larger = heavier tail).
        stable_fraction: share of nodes that are effectively always-on.
        stable_session_s: session length assigned to always-on nodes.
        mean_downtime_s: mean offline gap between two sessions.
        start_delay_s: simulated seconds between :meth:`Scenario.start_churn`
            and the first session clocks starting (lets the initial overlay
            settle, mirroring the paper's build-then-measure phases).
        discovery_interval_s: period of the maintenance discovery sweep that
            tops up under-connected nodes (None disables it).
        repair_interval_s: period of the cluster-repair sweep that re-homes
            orphaned members, replaces departed cluster representatives and
            re-bridges a fragmented overlay (None disables it).
    """

    median_session_s: float = 120.0
    sigma: float = 1.0
    stable_fraction: float = 0.2
    stable_session_s: float = 24 * 3600.0
    mean_downtime_s: float = 30.0
    start_delay_s: float = 0.0
    discovery_interval_s: Optional[float] = 1.0
    repair_interval_s: Optional[float] = 5.0

    def __post_init__(self) -> None:
        if self.median_session_s <= 0:
            raise ValueError("median_session_s must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ValueError("stable_fraction must be in [0, 1]")
        if self.stable_session_s <= 0:
            raise ValueError("stable_session_s must be positive")
        if self.mean_downtime_s < 0:
            raise ValueError("mean_downtime_s cannot be negative")
        if self.start_delay_s < 0:
            raise ValueError("start_delay_s cannot be negative")
        if self.discovery_interval_s is not None and self.discovery_interval_s <= 0:
            raise ValueError("discovery_interval_s must be positive (or None)")
        if self.repair_interval_s is not None and self.repair_interval_s <= 0:
            raise ValueError("repair_interval_s must be positive (or None)")

    def session_parameters(self) -> SessionParameters:
        """The session-length distribution this schedule prescribes."""
        return SessionParameters(
            median_session_s=self.median_session_s,
            sigma=self.sigma,
            stable_fraction=self.stable_fraction,
            stable_session_s=self.stable_session_s,
            mean_downtime_s=self.mean_downtime_s,
        )


@dataclass
class Scenario:
    """A built network with its policy-constructed overlay.

    Attributes:
        name: protocol label the scenario was built for.
        network: the simulated network and its supporting models.
        policy: the neighbour-selection policy that built (and maintains) the
            overlay.
        build_report: summary of the initial topology build.
        churn: the churn schedule, if this is a dynamic-membership scenario.
        maintainer: the churn/maintenance driver (None for static scenarios).
    """

    name: str
    network: SimulatedNetwork
    policy: NeighbourPolicy
    build_report: TopologyBuildReport
    churn: Optional[ChurnSchedule] = None
    maintainer: Optional[ChurnMaintainer] = None

    @property
    def simulator(self):
        """The scenario's event engine."""
        return self.network.simulator

    @property
    def dynamic(self) -> bool:
        """Whether this scenario has live join/leave churn wired up."""
        return self.maintainer is not None

    def start_churn(self, *, spare: Optional[Iterable[int]] = None) -> None:
        """Begin the join/leave cycles of a dynamic-membership scenario.

        Args:
            spare: node ids exempted from churn (they stay online for the
                whole run) — typically the measuring nodes, so a campaign is
                never interrupted by its own observer departing.

        Raises:
            RuntimeError: if the scenario was built without a churn schedule.
        """
        if self.maintainer is None or self.churn is None:
            raise RuntimeError(
                f"scenario {self.name!r} was built without a ChurnSchedule; "
                "pass churn=ChurnSchedule(...) to build_scenario() first"
            )
        spared = set(spare) if spare is not None else set()
        targets = [
            node_id
            for node_id in self.network.network.node_ids()
            if node_id not in spared
        ]
        maintainer = self.maintainer
        if self.churn.start_delay_s > 0:
            self.simulator.schedule(
                self.churn.start_delay_s,
                lambda: maintainer.start(targets),
                label="churn-start",
            )
        else:
            maintainer.start(targets)


def build_policy(
    name: str,
    simulated: SimulatedNetwork,
    *,
    latency_threshold_s: Optional[float] = None,
    max_outbound: int = 8,
) -> NeighbourPolicy:
    """Construct (but do not run) a neighbour policy for a built network.

    Args:
        name: one of ``"bitcoin"``, ``"lbc"``, ``"bcbpt"``.
        simulated: the network to operate on.
        latency_threshold_s: BCBPT's ``d_t``; ignored by the other policies.
        max_outbound: outbound connection quota for every policy.

    Raises:
        ValueError: for an unknown policy name.
    """
    validate_policy_name(name)
    rng = simulated.simulator.random.stream(f"policy-{name}")
    if name == "bitcoin":
        config = RandomPolicyConfig(max_outbound=max_outbound)
        return RandomNeighbourPolicy(
            simulated.network, simulated.seed_service, rng, config
        )
    if name == "lbc":
        config = LbcConfig(max_outbound=max_outbound)
        return LbcPolicy(simulated.network, simulated.seed_service, rng, config)
    if name == "bcbpt":
        threshold = latency_threshold_s if latency_threshold_s is not None else 0.025
        config = BcbptConfig(latency_threshold_s=threshold, max_outbound=max_outbound)
        return BcbptPolicy(simulated.network, simulated.seed_service, rng, config)
    raise ValueError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")


def build_scenario(
    policy_name: str,
    parameters: Optional[NetworkParameters] = None,
    *,
    latency_threshold_s: Optional[float] = None,
    max_outbound: int = 8,
    churn: Optional[ChurnSchedule] = None,
    relay: Optional[str] = None,
    snapshot: Optional[Union[str, Path]] = None,
) -> Scenario:
    """Build a network, run the policy's topology construction, return both.

    This is the entry point used by the figure experiments: the same
    ``parameters`` (and therefore the same seed-derived node placement) with a
    different ``policy_name`` gives the controlled comparison of Fig. 3.

    Args:
        policy_name: one of :data:`POLICY_NAMES`.
        parameters: network build parameters (defaults apply when omitted).
        latency_threshold_s: BCBPT's ``d_t``; ignored by the other policies.
        max_outbound: outbound connection quota for every policy.
        churn: optional churn schedule.  When given, the returned scenario
            carries a wired (but not yet started)
            :class:`~repro.core.maintenance.ChurnMaintainer`, the network's
            session model follows the schedule, and every node resynchronises
            chain/mempool inventory when it reconnects after downtime
            (``NodeConfig.resync_on_reconnect``).
        relay: relay-strategy name every node runs (one of
            :data:`~repro.protocol.relay.RELAY_NAMES`); None keeps whatever
            ``parameters.node_config.relay_strategy`` says (the ``"flood"``
            baseline by default).
        snapshot: path to a network snapshot written by
            :func:`~repro.workloads.network_gen.save_network`.  When given the
            network is loaded instead of built — stream-exact, so the run is
            byte-identical to one on a freshly-built network — and
            ``parameters`` (if also given) must equal the snapshot's own.
            Incompatible with ``churn``/``relay``, which rewrite the network
            parameters before the build.

    Raises:
        ValueError: for an unknown policy name, or a ``snapshot`` combined
            with ``churn``/``relay`` or mismatched ``parameters``.
    """
    validate_policy_name(policy_name)
    if snapshot is not None:
        if churn is not None or relay is not None:
            raise ValueError(
                "snapshot reuse supports static flood scenarios only; "
                "churn/relay overrides change NetworkParameters before the build"
            )
        simulated = load_network(snapshot)
        if parameters is not None and parameters != simulated.parameters:
            raise ValueError(
                "snapshot was built with different NetworkParameters; "
                "rebuild the snapshot or drop the parameters argument"
            )
        policy = build_policy(
            policy_name,
            simulated,
            latency_threshold_s=latency_threshold_s,
            max_outbound=max_outbound,
        )
        report = policy.build_topology()
        return Scenario(
            name=policy_name,
            network=simulated,
            policy=policy,
            build_report=report,
        )
    params = parameters if parameters is not None else NetworkParameters()
    if relay is not None:
        validate_relay_name(relay)
        params = params.with_overrides(
            node_config=replace(params.node_config, relay_strategy=relay)
        )
    if churn is not None:
        # Dynamic membership: session lengths follow the schedule, and nodes
        # exchange tip/mempool inventory on reconnect so rejoining peers
        # converge back to the network state they missed while offline.
        params = params.with_overrides(
            session=churn.session_parameters(),
            node_config=replace(params.node_config, resync_on_reconnect=True),
        )
    simulated = build_network(params)
    policy = build_policy(
        policy_name,
        simulated,
        latency_threshold_s=latency_threshold_s,
        max_outbound=max_outbound,
    )
    report = policy.build_topology()
    maintainer: Optional[ChurnMaintainer] = None
    if churn is not None:
        maintainer = ChurnMaintainer(
            simulated.simulator,
            simulated.network,
            policy,
            simulated.seed_service,
            simulated.session_model,
            discovery_interval_s=churn.discovery_interval_s,
            repair_interval_s=churn.repair_interval_s,
        )
    return Scenario(
        name=policy_name,
        network=simulated,
        policy=policy,
        build_report=report,
        churn=churn,
        maintainer=maintainer,
    )
