"""Named scenario presets: network + policy (+ churn) ready to measure.

A :class:`Scenario` bundles a freshly-built network with a constructed
neighbour-selection policy and the build report of its topology.  Experiments,
benchmarks and examples use :func:`build_scenario` so they all agree on what
"run protocol X on a network of N nodes with seed S" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.bcbpt import BcbptConfig, BcbptPolicy
from repro.core.lbc import LbcConfig, LbcPolicy
from repro.core.policy import NeighbourPolicy, TopologyBuildReport
from repro.core.random_topology import RandomNeighbourPolicy, RandomPolicyConfig
from repro.workloads.network_gen import NetworkParameters, SimulatedNetwork, build_network

#: Protocol names accepted by :func:`build_policy` / :func:`build_scenario`.
POLICY_NAMES = ("bitcoin", "lbc", "bcbpt")


@dataclass
class Scenario:
    """A built network with its policy-constructed overlay."""

    name: str
    network: SimulatedNetwork
    policy: NeighbourPolicy
    build_report: TopologyBuildReport

    @property
    def simulator(self):
        """The scenario's event engine."""
        return self.network.simulator


def build_policy(
    name: str,
    simulated: SimulatedNetwork,
    *,
    latency_threshold_s: Optional[float] = None,
    max_outbound: int = 8,
) -> NeighbourPolicy:
    """Construct (but do not run) a neighbour policy for a built network.

    Args:
        name: one of ``"bitcoin"``, ``"lbc"``, ``"bcbpt"``.
        simulated: the network to operate on.
        latency_threshold_s: BCBPT's ``d_t``; ignored by the other policies.
        max_outbound: outbound connection quota for every policy.

    Raises:
        ValueError: for an unknown policy name.
    """
    rng = simulated.simulator.random.stream(f"policy-{name}")
    if name == "bitcoin":
        config = RandomPolicyConfig(max_outbound=max_outbound)
        return RandomNeighbourPolicy(
            simulated.network, simulated.seed_service, rng, config
        )
    if name == "lbc":
        config = LbcConfig(max_outbound=max_outbound)
        return LbcPolicy(simulated.network, simulated.seed_service, rng, config)
    if name == "bcbpt":
        threshold = latency_threshold_s if latency_threshold_s is not None else 0.025
        config = BcbptConfig(latency_threshold_s=threshold, max_outbound=max_outbound)
        return BcbptPolicy(simulated.network, simulated.seed_service, rng, config)
    raise ValueError(f"unknown policy {name!r}; expected one of {POLICY_NAMES}")


def build_scenario(
    policy_name: str,
    parameters: Optional[NetworkParameters] = None,
    *,
    latency_threshold_s: Optional[float] = None,
    max_outbound: int = 8,
) -> Scenario:
    """Build a network, run the policy's topology construction, return both.

    This is the entry point used by the figure experiments: the same
    ``parameters`` (and therefore the same seed-derived node placement) with a
    different ``policy_name`` gives the controlled comparison of Fig. 3.
    """
    simulated = build_network(parameters)
    policy = build_policy(
        policy_name,
        simulated,
        latency_threshold_s=latency_threshold_s,
        max_outbound=max_outbound,
    )
    report = policy.build_topology()
    return Scenario(
        name=policy_name,
        network=simulated,
        policy=policy,
        build_report=report,
    )
