"""Overlay topology: the graph of live peer connections.

The topology is the ground truth of "who is connected to whom" at any instant.
It wraps a :class:`networkx.Graph` so that experiments can run graph analytics
(diameter, clustering coefficient, connected components) on snapshots, while
exposing the small mutating API the protocol layer needs: add/remove links,
enumerate a node's neighbours, enforce connection limits.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

import networkx as nx

from repro.net.link import Link


class OverlayTopology:
    """Mutable undirected connection graph of the Bitcoin overlay.

    Args:
        max_connections: per-node cap on total connections (Bitcoin Core's
            default is 125).  ``None`` disables the cap.
    """

    def __init__(self, max_connections: Optional[int] = 125) -> None:
        if max_connections is not None and max_connections <= 0:
            raise ValueError(f"max_connections must be positive or None, got {max_connections}")
        self.max_connections = max_connections
        self._graph = nx.Graph()
        self._links: dict[tuple[int, int], Link] = {}

    # ----------------------------------------------------------------- nodes
    def add_node(self, node_id: int) -> None:
        """Register a node (idempotent)."""
        self._graph.add_node(node_id)

    def remove_node(self, node_id: int) -> list[Link]:
        """Remove a node and all its links; returns the removed links."""
        if node_id not in self._graph:
            return []
        removed = [self._links.pop(self._link_key(node_id, peer)) for peer in self.neighbors(node_id)]
        self._graph.remove_node(node_id)
        return removed

    def has_node(self, node_id: int) -> bool:
        """Whether the node is currently part of the overlay."""
        return node_id in self._graph

    @property
    def node_count(self) -> int:
        """Number of nodes currently registered."""
        return self._graph.number_of_nodes()

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(self._graph.nodes)

    # ----------------------------------------------------------------- links
    @staticmethod
    def _link_key(node_x: int, node_y: int) -> tuple[int, int]:
        return (node_x, node_y) if node_x < node_y else (node_y, node_x)

    def connect(self, link: Link) -> None:
        """Add a connection.

        Raises:
            ValueError: if either endpoint would exceed ``max_connections`` or
                the link already exists.
        """
        if self.are_connected(link.node_a, link.node_b):
            raise ValueError(f"nodes {link.node_a} and {link.node_b} are already connected")
        for endpoint in (link.node_a, link.node_b):
            if (
                self.max_connections is not None
                and self.degree(endpoint) >= self.max_connections
            ):
                raise ValueError(
                    f"node {endpoint} is at its connection limit ({self.max_connections})"
                )
        self._graph.add_edge(link.node_a, link.node_b)
        self._links[link.key] = link

    def disconnect(self, node_x: int, node_y: int) -> Optional[Link]:
        """Remove the connection between two nodes if it exists."""
        key = self._link_key(node_x, node_y)
        link = self._links.pop(key, None)
        if link is not None:
            self._graph.remove_edge(*key)
        return link

    def are_connected(self, node_x: int, node_y: int) -> bool:
        """Whether a live connection exists between the two nodes."""
        return self._graph.has_edge(node_x, node_y)

    def link(self, node_x: int, node_y: int) -> Link:
        """The :class:`Link` between two nodes.

        Raises:
            KeyError: if they are not connected.
        """
        key = self._link_key(node_x, node_y)
        if key not in self._links:
            raise KeyError(f"nodes {node_x} and {node_y} are not connected")
        return self._links[key]

    def links(self) -> Iterator[Link]:
        """Iterate over all live links."""
        return iter(self._links.values())

    @property
    def link_count(self) -> int:
        """Number of live links."""
        return len(self._links)

    def neighbors(self, node_id: int) -> list[int]:
        """Node ids directly connected to ``node_id`` (empty if unknown)."""
        if node_id not in self._graph:
            return []
        return list(self._graph.neighbors(node_id))

    def degree(self, node_id: int) -> int:
        """Number of live connections of a node."""
        if node_id not in self._graph:
            return 0
        return int(self._graph.degree(node_id))

    def can_accept(self, node_id: int) -> bool:
        """Whether the node has room for one more connection."""
        if self.max_connections is None:
            return True
        return self.degree(node_id) < self.max_connections

    # -------------------------------------------------------------- analysis
    def snapshot(self) -> nx.Graph:
        """A copy of the current connection graph for offline analysis."""
        return self._graph.copy()

    def is_connected(self) -> bool:
        """Whether the overlay forms a single connected component."""
        if self._graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self._graph)

    def connected_components(self) -> list[set[int]]:
        """Connected components as sets of node ids."""
        return [set(c) for c in nx.connected_components(self._graph)]

    def average_degree(self) -> float:
        """Mean connection count per node (0 for an empty overlay)."""
        n = self._graph.number_of_nodes()
        if n == 0:
            return 0.0
        return 2.0 * self._graph.number_of_edges() / n

    def average_shortest_path_length(self) -> float:
        """Average hop distance on the largest connected component."""
        if self._graph.number_of_nodes() < 2:
            return 0.0
        components = sorted(nx.connected_components(self._graph), key=len, reverse=True)
        giant = self._graph.subgraph(components[0])
        if giant.number_of_nodes() < 2:
            return 0.0
        return float(nx.average_shortest_path_length(giant))

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OverlayTopology(nodes={self.node_count}, links={self.link_count})"
