"""Per-node bandwidth model.

The latency model charges a transmission delay derived from a link-wide
transmission rate (Eq. 2).  Real peers are heterogeneous — a home DSL node and
a datacentre node serialise a 500 KB block very differently — so the bandwidth
model assigns each node an uplink/downlink rate drawn from a small set of
access classes.  The link layer uses the slower of the sender's uplink and the
receiver's downlink when computing transmission delay for large messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class AccessClass:
    """A class of internet access with typical up/down rates in bytes/second."""

    name: str
    uplink_bps: float
    downlink_bps: float
    weight: float

    def __post_init__(self) -> None:
        if self.uplink_bps <= 0 or self.downlink_bps <= 0:
            raise ValueError(f"access class {self.name!r} must have positive rates")
        if self.weight < 0:
            raise ValueError(f"access class {self.name!r} weight cannot be negative")


#: Access-class mix roughly matching the 2016 reachable-node population:
#: most reachable peers run on reasonably provisioned links, with a tail of
#: slow residential nodes and a head of datacentre relays.
DEFAULT_ACCESS_CLASSES: tuple[AccessClass, ...] = (
    AccessClass("residential-slow", uplink_bps=125_000, downlink_bps=1_000_000, weight=0.20),
    AccessClass("residential-fast", uplink_bps=625_000, downlink_bps=5_000_000, weight=0.40),
    AccessClass("business", uplink_bps=2_500_000, downlink_bps=12_500_000, weight=0.25),
    AccessClass("datacenter", uplink_bps=12_500_000, downlink_bps=12_500_000, weight=0.15),
)


@dataclass(frozen=True)
class NodeBandwidth:
    """Up/down rates assigned to one node."""

    access_class: str
    uplink_bps: float
    downlink_bps: float


class BandwidthModel:
    """Assigns access classes to nodes and computes effective link rates."""

    def __init__(
        self,
        rng: np.random.Generator,
        classes: Optional[Sequence[AccessClass]] = None,
    ) -> None:
        self._rng = rng
        self._classes = tuple(classes) if classes is not None else DEFAULT_ACCESS_CLASSES
        if not self._classes:
            raise ValueError("at least one access class is required")
        total = sum(c.weight for c in self._classes)
        if total <= 0:
            raise ValueError("access class weights must sum to a positive value")
        self._probabilities = np.array([c.weight / total for c in self._classes])
        self._assignments: dict[int, NodeBandwidth] = {}

    def assign(self, node_id: int) -> NodeBandwidth:
        """Assign (or return the existing) bandwidth class for a node."""
        bandwidth = self._assignments.get(node_id)
        if bandwidth is None:
            index = int(self._rng.choice(len(self._classes), p=self._probabilities))
            cls = self._classes[index]
            bandwidth = NodeBandwidth(cls.name, cls.uplink_bps, cls.downlink_bps)
            self._assignments[node_id] = bandwidth
        return bandwidth

    def effective_rate_bps(self, sender_id: int, receiver_id: int) -> float:
        """Bottleneck rate for a transfer from sender to receiver."""
        sender = self.assign(sender_id)
        receiver = self.assign(receiver_id)
        return min(sender.uplink_bps, receiver.downlink_bps)

    def transmission_delay_s(self, sender_id: int, receiver_id: int, size_bytes: float) -> float:
        """Time to serialise ``size_bytes`` over the bottleneck rate."""
        if size_bytes < 0:
            raise ValueError(f"message size cannot be negative, got {size_bytes}")
        return size_bytes / self.effective_rate_bps(sender_id, receiver_id)
