"""Link latency model implementing the paper's distance utility function.

Section IV.A of the paper defines the distance between two nodes *i* and *j*
as the round-trip ping time predicted by

    D_ij = M_ping / rate(r)  +  2 * P  +  q'          (Eq. 2)
    P    = D(m) / S                                    (Eq. 3)
    q'   = M_ping / (r - lambda * M_ping)              (Eq. 4)

where ``M_ping`` is the ping message length in bytes, ``rate(r)`` the link
transmission rate, ``P`` the one-way propagation time over the physical
distance ``D(m)`` at signal speed ``S`` (2/3 c in fibre/copper, c for
wireless), and ``q'`` the average M/M/1-style queuing delay at the receiver
given a ping arrival rate ``lambda``.

Two effects the paper calls out are added on top of the deterministic formula:

* **congestion jitter** — "distances measurements are subject to network
  congestion and therefore dynamic, within some variance"; every sample is
  multiplied by a log-normal factor;
* **routing detour** — the physical internet does not route along great
  circles, and BGP policy routing means geographically-close node pairs can be
  latency-far.  Each node pair gets a persistent detour factor >= 1 drawn once,
  with a configurable probability of a large detour.  This is precisely the
  phenomenon that separates BCBPT (latency clustering) from LBC (geographic
  clustering) in the paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.net.geo import GeoPosition

#: Speed of light in vacuum, metres per second (used for wireless links).
SIGNAL_SPEED_WIRELESS_M_S = 3.0e8
#: Effective signal speed in copper / fibre, ~2/3 c (used for wired links).
SIGNAL_SPEED_WIRED_M_S = 2.0e8

#: Flag bits of the array-backed pair store (see :class:`LatencyModel`).
_PAIR_FILLED = 1
_PAIR_DETOUR = 2


@dataclass(frozen=True)
class LatencyParameters:
    """Parameters of the Eq. (2)-(4) model plus stochastic extensions.

    Attributes:
        ping_message_bytes: ``M_ping``, length of a ping message.  Bitcoin's
            ping payload is 8 bytes plus a 24-byte header; 32 bytes total.
        transmission_rate_bps: ``rate(r)``, link transmission rate in bytes
            per second.  Defaults to 1 MB/s, a conservative 2016 broadband
            uplink.  (The paper quotes "~100 KB/hour", which is a typo — at
            that rate a single 32-byte ping would take more than a second to
            serialise; we keep the parameter configurable and document the
            substitution in DESIGN.md.)
        signal_speed_m_s: ``S`` in Eq. (3); defaults to wired 2/3 c.
        ping_arrival_rate_per_s: ``lambda`` in Eq. (4), how many pings per
            second arrive at the receiving node.
        queue_service_rate_bps: ``r`` in Eq. (4), the service rate of the
            receiver's queue in bytes per second.
        congestion_jitter_sigma: sigma of the log-normal congestion factor
            applied to every latency sample (0 disables jitter).
        detour_probability: probability that a node pair's traffic takes a
            significant routing detour (BGP policy routing via a distant
            exchange point), making a geographically-close pair latency-far.
        detour_extra_km_range: (low, high) additional path length, in km,
            travelled by detoured pairs on top of their direct path.
        base_detour_range: (low, high) multiplier applied to *all* pairs,
            reflecting that real paths always exceed great-circle distance.
        minimum_rtt_s: floor applied to every RTT sample (kernel/NIC overhead).
    """

    ping_message_bytes: float = 32.0
    transmission_rate_bps: float = 1_000_000.0
    signal_speed_m_s: float = SIGNAL_SPEED_WIRED_M_S
    ping_arrival_rate_per_s: float = 2.0
    queue_service_rate_bps: float = 500_000.0
    congestion_jitter_sigma: float = 0.15
    detour_probability: float = 0.18
    detour_extra_km_range: tuple[float, float] = (2_000.0, 12_000.0)
    base_detour_range: tuple[float, float] = (1.2, 2.0)
    minimum_rtt_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.ping_message_bytes <= 0:
            raise ValueError("ping_message_bytes must be positive")
        if self.transmission_rate_bps <= 0:
            raise ValueError("transmission_rate_bps must be positive")
        if self.signal_speed_m_s <= 0:
            raise ValueError("signal_speed_m_s must be positive")
        if self.queue_service_rate_bps <= self.ping_arrival_rate_per_s * self.ping_message_bytes:
            raise ValueError(
                "queue_service_rate_bps must exceed lambda * M_ping for a stable queue "
                f"(got r={self.queue_service_rate_bps}, "
                f"lambda*M={self.ping_arrival_rate_per_s * self.ping_message_bytes})"
            )
        if not 0.0 <= self.detour_probability <= 1.0:
            raise ValueError("detour_probability must be in [0, 1]")
        if self.detour_extra_km_range[0] > self.detour_extra_km_range[1]:
            raise ValueError("detour_extra_km_range must be (low, high) with low <= high")
        if self.detour_extra_km_range[0] < 0:
            raise ValueError("detour extra distance cannot be negative")
        if self.base_detour_range[0] > self.base_detour_range[1]:
            raise ValueError("base_detour_range must be (low, high) with low <= high")
        if self.base_detour_range[0] < 1.0:
            raise ValueError("base detour factors cannot shorten the great-circle path")
        if self.congestion_jitter_sigma < 0:
            raise ValueError("congestion_jitter_sigma cannot be negative")
        if self.minimum_rtt_s < 0:
            raise ValueError("minimum_rtt_s cannot be negative")

    def with_overrides(self, **kwargs: object) -> "LatencyParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class LatencySample:
    """One measured ping RTT and its decomposition."""

    rtt_s: float
    transmission_s: float
    propagation_s: float
    queuing_s: float
    jitter_factor: float


class LatencyModel:
    """Pairwise latency model over a set of geographic positions.

    The model has two layers:

    * a **deterministic base RTT** per node pair from Eq. (2)-(4) applied to
      the detour-adjusted physical distance — this is the pair's "true"
      topological proximity, stable over a run;
    * a **stochastic sample** layer that multiplies the base RTT by a
      congestion jitter factor each time a ping is measured.

    Per-pair state is stored in one of two backends:

    * **dict mode** (``node_count=None``, the default for standalone use):
      routing tuples and routed path lengths live in per-pair dicts, exactly
      as before — repeated :meth:`path_km` calls with different great-circle
      distances recompute from the persistent stretch/extra draw.
    * **array mode** (``node_count=n``): per-pair state lives in flat
      triangular numpy arrays — 8 bytes of routed-path km plus one flag byte
      per pair instead of ~500 bytes of dict/tuple overhead, which is what
      makes 10k-node networks (~50M pairs) fit in memory.  The arrays are
      lazily filled (``np.zeros`` never touches untouched pages) and keyed by
      the same canonical (low, high) pair ordering, and each pair's routing is
      drawn from the stream in exactly the same order as dict mode, so the
      two backends are byte-identical in every delay they produce.  Because
      node positions are immutable for a run, a pair's routed path is
      resolved once; array mode does not retain the raw stretch factor.

    Args:
        rng: random stream for detour assignment and jitter.
        parameters: model parameters; defaults are sensible for a wired node.
        node_count: when given, enables array mode for node ids in
            ``range(node_count)``; None keeps the dict backend.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        parameters: Optional[LatencyParameters] = None,
        node_count: Optional[int] = None,
    ) -> None:
        self._rng = rng
        self.parameters = parameters if parameters is not None else LatencyParameters()
        if node_count is not None and node_count < 2:
            raise ValueError(f"node_count must be at least 2, got {node_count}")
        self._node_count = node_count
        if node_count is None:
            #: Per-pair persistent routing: (path-stretch factor, extra detour km).
            self._routing: Optional[dict[tuple[int, int], tuple[float, float]]] = {}
            #: Per-pair routed path length cache (positions are immutable for a
            #: run, so the haversine + detour computation is done once per pair).
            self._path_km_cache: Optional[dict[tuple[int, int], float]] = {}
            self._pair_path_km: Optional[np.ndarray] = None
            self._pair_flags: Optional[np.ndarray] = None
            self._deferred_routing: Optional[dict[tuple[int, int], tuple[float, float]]] = None
        else:
            self._routing = None
            self._path_km_cache = None
            pair_count = node_count * (node_count - 1) // 2
            self._pair_path_km = np.zeros(pair_count, dtype=np.float64)
            self._pair_flags = np.zeros(pair_count, dtype=np.uint8)
            #: Routing drawn through the public API (``pair_has_detour`` on an
            #: unresolved pair) before the pair's path is resolved; consumed by
            #: the first resolution so the stream order matches dict mode.
            self._deferred_routing = {}
        # Hot-path constant (parameters are frozen, so this never goes stale).
        # Computed with the exact Eq. (4) expression so cached and uncached
        # code paths agree to the last bit.
        self._queuing_s = self.parameters.ping_message_bytes / (
            self.parameters.queue_service_rate_bps
            - self.parameters.ping_arrival_rate_per_s * self.parameters.ping_message_bytes
        )

    # --------------------------------------------------------------- helpers
    @property
    def array_backed(self) -> bool:
        """Whether per-pair state lives in flat numpy arrays (array mode)."""
        return self._pair_path_km is not None

    @staticmethod
    def _pair_key(node_a: int, node_b: int) -> tuple[int, int]:
        return (node_a, node_b) if node_a <= node_b else (node_b, node_a)

    def _pair_index(self, node_a: int, node_b: int) -> int:
        """Flat triangular index of a pair in the array backend."""
        a, b = (node_a, node_b) if node_a <= node_b else (node_b, node_a)
        n = self._node_count
        if a == b:
            raise ValueError(f"a node has no latency to itself (node {a})")
        if a < 0 or b >= n:  # type: ignore[operator]
            raise ValueError(
                f"pair ({node_a}, {node_b}) outside the declared node range [0, {n})"
            )
        return a * n - (a * (a + 3)) // 2 + b - 1  # type: ignore[operator]

    def _draw_routing(self) -> tuple[float, float]:
        """Draw a pair's persistent (stretch factor, extra km) from the stream.

        The single consumption point of the routing draws: both backends call
        this in the same per-pair order, which is what keeps them bit-exact.
        """
        low, high = self.parameters.base_detour_range
        factor = float(self._rng.uniform(low, high))
        extra_km = 0.0
        if self._rng.random() < self.parameters.detour_probability:
            dlow, dhigh = self.parameters.detour_extra_km_range
            extra_km = float(self._rng.uniform(dlow, dhigh))
        return factor, extra_km

    def _routing_of(self, node_a: int, node_b: int) -> tuple[float, float]:
        """Persistent routing characteristics (stretch factor, extra km) of a pair.

        Dict mode only — array mode persists the resolved path, not the raw
        stretch factor.
        """
        key = self._pair_key(node_a, node_b)
        routing = self._routing.get(key)
        if routing is None:
            routing = self._draw_routing()
            self._routing[key] = routing
        return routing

    def _resolve_pair(self, node_a: int, node_b: int, great_circle_km: float) -> float:
        """Array mode: routed path of a pair, drawing its routing on first touch."""
        index = self._pair_index(node_a, node_b)
        if self._pair_flags[index] & _PAIR_FILLED:
            return float(self._pair_path_km[index])
        routing = self._deferred_routing.pop(self._pair_key(node_a, node_b), None)
        if routing is None:
            routing = self._draw_routing()
        factor, extra_km = routing
        path = great_circle_km * factor + extra_km
        self._pair_path_km[index] = path
        self._pair_flags[index] = (
            _PAIR_FILLED | _PAIR_DETOUR if extra_km > 0.0 else _PAIR_FILLED
        )
        return path

    def path_km(self, node_a: int, node_b: int, great_circle_km: float) -> float:
        """Effective routed path length for a pair, given its great-circle distance.

        In array mode a pair's path is resolved once (positions are immutable
        for a run); subsequent calls return the resolved path regardless of
        the distance passed.
        """
        if self._pair_path_km is not None:
            return self._resolve_pair(node_a, node_b, great_circle_km)
        factor, extra_km = self._routing_of(node_a, node_b)
        return great_circle_km * factor + extra_km

    def routing_cached(self, node_a: int, node_b: int) -> bool:
        """Whether the pair's persistent routing has already been drawn.

        The batched jitter path (see :meth:`jitter_factors`) is only
        stream-exact when no routing draws interleave with the jitter draws,
        so callers check this before batching.
        """
        if self._pair_flags is not None:
            return bool(self._pair_flags[self._pair_index(node_a, node_b)] & _PAIR_FILLED)
        return self._pair_key(node_a, node_b) in self._routing

    def _path_km_for(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
    ) -> float:
        """Cached routed path length between two positioned nodes."""
        if self._pair_path_km is not None:
            index = self._pair_index(node_a, node_b)
            if self._pair_flags[index] & _PAIR_FILLED:
                return float(self._pair_path_km[index])
            return self._resolve_pair(
                node_a, node_b, position_a.distance_km(position_b)
            )
        key = self._pair_key(node_a, node_b)
        cached = self._path_km_cache.get(key)
        if cached is None:
            cached = self.path_km(node_a, node_b, position_a.distance_km(position_b))
            self._path_km_cache[key] = cached
        return cached

    # ------------------------------------------------------------ components
    def transmission_delay_s(self, message_bytes: Optional[float] = None) -> float:
        """``M / rate`` term of Eq. (2) for a message of ``message_bytes``."""
        size = self.parameters.ping_message_bytes if message_bytes is None else message_bytes
        return size / self.parameters.transmission_rate_bps

    def propagation_delay_s(self, distance_km: float) -> float:
        """One-way propagation delay ``P = D(m) / S`` (Eq. 3)."""
        if distance_km < 0:
            raise ValueError(f"distance cannot be negative, got {distance_km}")
        return (distance_km * 1000.0) / self.parameters.signal_speed_m_s

    def queuing_delay_s(self) -> float:
        """Average queuing delay ``q' = M / (r - lambda * M)`` (Eq. 4)."""
        return self._queuing_s

    # ---------------------------------------------------------------- public
    def base_rtt_s(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
    ) -> float:
        """Deterministic Eq. (2) round-trip time for a node pair in seconds."""
        distance_km = self._path_km_for(node_a, position_a, node_b, position_b)
        rtt = (
            self.transmission_delay_s()
            + 2.0 * self.propagation_delay_s(distance_km)
            + self.queuing_delay_s()
        )
        return max(self.parameters.minimum_rtt_s, rtt)

    def sample_rtt(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
    ) -> LatencySample:
        """One stochastic ping measurement between two nodes."""
        distance_km = self._path_km_for(node_a, position_a, node_b, position_b)
        transmission = self.transmission_delay_s()
        propagation = self.propagation_delay_s(distance_km)
        queuing = self.queuing_delay_s()
        if self.parameters.congestion_jitter_sigma > 0:
            jitter = float(
                self._rng.lognormal(mean=0.0, sigma=self.parameters.congestion_jitter_sigma)
            )
        else:
            jitter = 1.0
        rtt = max(
            self.parameters.minimum_rtt_s,
            (transmission + 2.0 * propagation + queuing) * jitter,
        )
        return LatencySample(
            rtt_s=rtt,
            transmission_s=transmission,
            propagation_s=propagation,
            queuing_s=queuing,
            jitter_factor=jitter,
        )

    def sample_rtts(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
        count: int,
    ) -> list[float]:
        """``count`` stochastic RTT samples for one pair in one batched call.

        Bit-identical to ``count`` sequential :meth:`sample_rtt` calls: the
        pair's routing is resolved first (consuming the stream exactly like
        the first sequential call would), then the jitter factors are drawn as
        one array — numpy ``Generator`` array draws consume the bit stream
        exactly like the same number of scalar draws.  This is the clustering
        hot path: :class:`~repro.core.distance.DistanceCalculator` hammers it
        during cluster formation.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        distance_km = self._path_km_for(node_a, position_a, node_b, position_b)
        base = (
            self.transmission_delay_s()
            + 2.0 * self.propagation_delay_s(distance_km)
            + self.queuing_delay_s()
        )
        minimum = self.parameters.minimum_rtt_s
        sigma = self.parameters.congestion_jitter_sigma
        if sigma <= 0:
            return [max(minimum, base)] * count
        factors = self._rng.lognormal(mean=0.0, sigma=sigma, size=count)
        return [max(minimum, base * float(factor)) for factor in factors]

    def one_way_delay_s(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
        message_bytes: float,
        *,
        jittered: bool = True,
        jitter_factor: Optional[float] = None,
    ) -> float:
        """Delivery delay for a single message of ``message_bytes`` from a to b.

        Used by the link layer for every protocol message (INV, GETDATA, TX,
        ...): transmission for the actual message size, one propagation leg,
        one queuing term, and optional congestion jitter.

        Args:
            jitter_factor: pre-drawn congestion jitter multiplier (from
                :meth:`jitter_factors`); when None, one factor is drawn from
                the model's stream here.
        """
        distance_km = self._path_km_for(node_a, position_a, node_b, position_b)
        delay = (
            self.transmission_delay_s(message_bytes)
            + self.propagation_delay_s(distance_km)
            + self._queuing_s
        )
        if jittered and self.parameters.congestion_jitter_sigma > 0:
            if jitter_factor is None:
                jitter_factor = float(
                    self._rng.lognormal(mean=0.0, sigma=self.parameters.congestion_jitter_sigma)
                )
            delay *= jitter_factor
        return max(self.parameters.minimum_rtt_s / 2.0, delay)

    def jitter_factors(self, count: int) -> Optional[np.ndarray]:
        """Draw ``count`` congestion jitter factors in one batched call.

        numpy ``Generator`` array draws consume the underlying bit stream
        exactly like the same number of scalar draws, so — provided no other
        draw on this stream interleaves (callers guarantee that by checking
        :meth:`routing_cached` for every pair first) — the batch is
        bit-identical to ``count`` sequential per-message draws.

        Returns:
            The factors, or None when jitter is disabled (no draws consumed).
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        sigma = self.parameters.congestion_jitter_sigma
        if sigma <= 0:
            return None
        return self._rng.lognormal(mean=0.0, sigma=sigma, size=count)

    def pair_has_detour(self, node_a: int, node_b: int) -> bool:
        """Whether the pair's persistent routing includes a significant detour."""
        if self._pair_flags is not None:
            index = self._pair_index(node_a, node_b)
            flags = self._pair_flags[index]
            if flags & _PAIR_FILLED:
                return bool(flags & _PAIR_DETOUR)
            # Unresolved pair: draw its routing now (same stream position as
            # dict mode) and park it until the path is first resolved.
            key = self._pair_key(node_a, node_b)
            routing = self._deferred_routing.get(key)
            if routing is None:
                routing = self._deferred_routing[key] = self._draw_routing()
            return routing[1] > 0.0
        _, extra_km = self._routing_of(node_a, node_b)
        return extra_km > 0.0
