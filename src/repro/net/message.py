"""Wire-level message representation and sizing.

The protocol layer exchanges :class:`~repro.protocol.messages.Message`
objects; this module maps them onto bytes-on-the-wire so that the latency
model can charge a realistic transmission delay for each.  Sizes follow the
Bitcoin P2P wire format circa 2016: every message carries a 24-byte header
(magic, command, length, checksum) plus a payload whose size depends on the
message type and its content (number of inventory entries, transaction size,
address count, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

#: Size of the fixed Bitcoin P2P message header in bytes.
HEADER_BYTES = 24

#: Per-entry size of an inventory vector (4-byte type + 32-byte hash).
INV_ENTRY_BYTES = 36

#: Serialized size of a network address entry in ADDR messages.
ADDR_ENTRY_BYTES = 30

#: Typical serialized size of a simple 1-in/2-out transaction.
DEFAULT_TX_BYTES = 258

#: Payload of a version message (without user agent).
VERSION_PAYLOAD_BYTES = 102

#: Serialized block header size (the fixed part of block and cmpctblock).
BLOCK_HEADER_BYTES = 80

#: Fixed getblocktxn/blocktxn overhead: 32-byte block hash + 1-byte count.
BLOCK_TXN_REQUEST_BYTES = 33

#: Per-index size in a getblocktxn request (differentially encoded varint;
#: three bytes is a conservative flat estimate).
BLOCK_TXN_INDEX_BYTES = 3

#: Fixed getheaders overhead: 4-byte version + 1-byte locator count + the
#: 32-byte stop hash.
GET_HEADERS_FIXED_BYTES = 37

#: Per-entry size of a block-locator hash in a getheaders request.
GET_HEADERS_LOCATOR_BYTES = 32

#: Per-entry size in a headers reply (80-byte header + 1-byte tx count).
HEADERS_ENTRY_BYTES = 81

#: Ping / pong payload: an 8-byte nonce.
PING_PAYLOAD_BYTES = 8

#: Payload sizes for message commands whose size does not depend on content.
_FIXED_PAYLOADS: dict[str, int] = {
    "version": VERSION_PAYLOAD_BYTES,
    "verack": 0,
    "ping": PING_PAYLOAD_BYTES,
    "pong": PING_PAYLOAD_BYTES,
    "getaddr": 0,
    "join": 16,
    "join_accept": 4,
    "cluster_members": 0,  # plus ADDR_ENTRY_BYTES per member, added below
}


@dataclass(frozen=True, slots=True)
class WireMessage:
    """A message as seen by the link layer: a command name and a byte size."""

    command: str
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes < HEADER_BYTES:
            raise ValueError(
                f"wire message cannot be smaller than the header ({HEADER_BYTES} bytes), "
                f"got {self.size_bytes}"
            )


def message_size_bytes(command: str, payload: Any = None) -> int:
    """Serialized size in bytes of a protocol message.

    Args:
        command: lower-case Bitcoin command name (``"inv"``, ``"tx"``, ...).
        payload: command-dependent content descriptor:

            * ``inv`` / ``getdata`` — number of inventory entries (int);
            * ``tx`` — transaction size in bytes (int), or None for a default;
            * ``addr`` / ``cluster_members`` — number of address entries (int);
            * ``cmpctblock`` — payload bytes (header + short ids + coinbase);
            * ``getblocktxn`` — number of requested transaction indexes (int);
            * ``blocktxn`` — total bytes of the returned transactions (int);
            * ``getheaders`` — number of block-locator hashes (int);
            * ``headers`` — number of block headers (int);
            * fixed-size commands ignore the payload.

    Returns:
        Total bytes on the wire including the 24-byte header.
    """
    command = command.lower()
    if command in ("inv", "getdata"):
        count = int(payload) if payload is not None else 1
        if count < 0:
            raise ValueError(f"inventory count cannot be negative, got {count}")
        return HEADER_BYTES + 1 + count * INV_ENTRY_BYTES
    if command == "tx":
        size = int(payload) if payload is not None else DEFAULT_TX_BYTES
        if size <= 0:
            raise ValueError(f"transaction size must be positive, got {size}")
        return HEADER_BYTES + size
    if command == "block":
        size = int(payload) if payload is not None else 500_000
        if size <= 0:
            raise ValueError(f"block size must be positive, got {size}")
        return HEADER_BYTES + size
    if command == "cmpctblock":
        size = int(payload) if payload is not None else BLOCK_HEADER_BYTES
        if size < BLOCK_HEADER_BYTES:
            raise ValueError(
                f"compact block payload cannot be smaller than a header, got {size}"
            )
        return HEADER_BYTES + size
    if command == "getblocktxn":
        count = int(payload) if payload is not None else 1
        if count < 0:
            raise ValueError(f"index count cannot be negative, got {count}")
        return HEADER_BYTES + BLOCK_TXN_REQUEST_BYTES + count * BLOCK_TXN_INDEX_BYTES
    if command == "blocktxn":
        size = int(payload) if payload is not None else 0
        if size < 0:
            raise ValueError(f"transaction bytes cannot be negative, got {size}")
        return HEADER_BYTES + BLOCK_TXN_REQUEST_BYTES + size
    if command == "getheaders":
        count = int(payload) if payload is not None else 1
        if count < 0:
            raise ValueError(f"locator count cannot be negative, got {count}")
        return HEADER_BYTES + GET_HEADERS_FIXED_BYTES + count * GET_HEADERS_LOCATOR_BYTES
    if command == "headers":
        count = int(payload) if payload is not None else 1
        if count < 0:
            raise ValueError(f"header count cannot be negative, got {count}")
        return HEADER_BYTES + 1 + count * HEADERS_ENTRY_BYTES
    if command in ("addr", "cluster_members"):
        count = int(payload) if payload is not None else 1
        if count < 0:
            raise ValueError(f"address count cannot be negative, got {count}")
        return HEADER_BYTES + 1 + count * ADDR_ENTRY_BYTES
    if command in _FIXED_PAYLOADS:
        return HEADER_BYTES + _FIXED_PAYLOADS[command]
    raise KeyError(f"unknown message command {command!r}")
