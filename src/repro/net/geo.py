"""Geographic model of the Bitcoin node population.

The paper's DNS-seed recommendation step and the LBC baseline both reason
about *geographic* proximity, while BCBPT reasons about *latency* proximity.
The gap between the two — geographically-close nodes that are far apart in the
physical internet — is the effect the paper's headline result rests on, so the
geographic model matters here.

Nodes are placed in a set of world regions whose weights roughly follow the
distribution of reachable Bitcoin nodes reported by public crawlers around
2016 (North America and Europe dominate, followed by East Asia).  Each region
is an anchor city with latitude/longitude plus a dispersion radius; a node's
position is the anchor plus Gaussian noise, so intra-region distances are a
few hundred kilometres and inter-region distances are thousands.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

EARTH_RADIUS_KM = 6371.0


@dataclass(frozen=True)
class Region:
    """A world region that hosts a share of the Bitcoin node population.

    Attributes:
        name: short identifier (e.g. ``"eu-west"``).
        country: representative country code used by LBC-style grouping.
        latitude: anchor latitude in degrees.
        longitude: anchor longitude in degrees.
        weight: relative share of nodes hosted in the region.
        spread_km: standard deviation of node placement around the anchor.
    """

    name: str
    country: str
    latitude: float
    longitude: float
    weight: float
    spread_km: float = 300.0


#: Default world regions with weights approximating the 2016 reachable-node
#: distribution (US + EU host the majority of reachable peers, then East Asia).
WORLD_REGIONS: tuple[Region, ...] = (
    Region("us-east", "US", 40.71, -74.01, weight=0.17, spread_km=450.0),
    Region("us-central", "US", 41.88, -87.63, weight=0.08, spread_km=500.0),
    Region("us-west", "US", 37.77, -122.42, weight=0.10, spread_km=400.0),
    Region("canada", "CA", 43.65, -79.38, weight=0.03, spread_km=500.0),
    Region("eu-west", "DE", 50.11, 8.68, weight=0.16, spread_km=350.0),
    Region("eu-north", "NL", 52.37, 4.90, weight=0.08, spread_km=250.0),
    Region("eu-east", "RU", 55.76, 37.62, weight=0.05, spread_km=600.0),
    Region("uk", "GB", 51.51, -0.13, weight=0.06, spread_km=200.0),
    Region("france", "FR", 48.86, 2.35, weight=0.05, spread_km=250.0),
    Region("east-asia", "CN", 31.23, 121.47, weight=0.07, spread_km=600.0),
    Region("japan", "JP", 35.68, 139.69, weight=0.04, spread_km=250.0),
    Region("southeast-asia", "SG", 1.35, 103.82, weight=0.03, spread_km=400.0),
    Region("oceania", "AU", -33.87, 151.21, weight=0.02, spread_km=500.0),
    Region("south-america", "BR", -23.55, -46.63, weight=0.03, spread_km=700.0),
    Region("africa", "ZA", -26.20, 28.05, weight=0.01, spread_km=700.0),
    Region("india", "IN", 19.08, 72.88, weight=0.02, spread_km=600.0),
)


@dataclass(frozen=True)
class GeoPosition:
    """A node's physical location."""

    latitude: float
    longitude: float
    region: str
    country: str

    def distance_km(self, other: "GeoPosition") -> float:
        """Great-circle distance to another position in kilometres."""
        return haversine_km(self.latitude, self.longitude, other.latitude, other.longitude)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon points in kilometres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    a = min(1.0, a)
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


class GeoModel:
    """Samples node positions from a weighted set of world regions.

    Args:
        rng: random stream used for region choice and intra-region placement.
        regions: region definitions; defaults to :data:`WORLD_REGIONS`.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        regions: Optional[Sequence[Region]] = None,
    ) -> None:
        self._rng = rng
        self._regions = tuple(regions) if regions is not None else WORLD_REGIONS
        if not self._regions:
            raise ValueError("at least one region is required")
        total = sum(r.weight for r in self._regions)
        if total <= 0:
            raise ValueError("region weights must sum to a positive value")
        self._probabilities = np.array([r.weight / total for r in self._regions])

    @property
    def regions(self) -> tuple[Region, ...]:
        """The configured regions."""
        return self._regions

    def sample_position(self) -> GeoPosition:
        """Draw one node position."""
        index = int(self._rng.choice(len(self._regions), p=self._probabilities))
        region = self._regions[index]
        # Convert the km spread to approximate degrees of latitude/longitude.
        lat_noise = self._rng.normal(0.0, region.spread_km / 111.0)
        lon_scale = max(0.2, math.cos(math.radians(region.latitude)))
        lon_noise = self._rng.normal(0.0, region.spread_km / (111.0 * lon_scale))
        latitude = float(np.clip(region.latitude + lat_noise, -89.0, 89.0))
        longitude = float((region.longitude + lon_noise + 180.0) % 360.0 - 180.0)
        return GeoPosition(latitude, longitude, region.name, region.country)

    def sample_positions(self, count: int) -> list[GeoPosition]:
        """Draw ``count`` node positions."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.sample_position() for _ in range(count)]

    def region_of(self, name: str) -> Region:
        """Look up a region by name."""
        for region in self._regions:
            if region.name == name:
                return region
        raise KeyError(f"unknown region {name!r}")
