"""Network substrate: geography, latency, links, overlay topology and churn.

This package stands in for the Internet underneath the Bitcoin overlay.  The
paper parameterised its simulator with crawler measurements of the real
network (link latencies from ~5000 reachable peers and peer session lengths);
here the same quantities are produced synthetically:

* :mod:`repro.net.geo` places nodes in weighted world regions and computes
  great-circle distances;
* :mod:`repro.net.latency` implements the paper's distance utility function,
  Eq. (2)-(4): transmission + 2x propagation + queuing, plus congestion
  jitter and routing-detour noise;
* :mod:`repro.net.link` turns a latency model into per-message delivery
  delays for arbitrary message sizes;
* :mod:`repro.net.topology` tracks the overlay connection graph;
* :mod:`repro.net.churn` generates join/leave events from a heavy-tailed
  session-length distribution.

Public entry points: :class:`~repro.net.latency.LatencyModel` (Eq. 2-4 link
delays), :class:`~repro.net.topology.OverlayTopology` (the connection
graph), :class:`~repro.net.geo.GeoModel`, :class:`~repro.net.churn.ChurnModel`
and :func:`~repro.net.message.message_size_bytes` (wire sizes per command).
"""

from repro.net.bandwidth import BandwidthModel
from repro.net.churn import ChurnModel, SessionLengthModel
from repro.net.geo import GeoModel, GeoPosition, Region, WORLD_REGIONS, haversine_km
from repro.net.latency import LatencyModel, LatencyParameters, LatencySample
from repro.net.link import Link, LinkDelayCalculator
from repro.net.message import WireMessage, message_size_bytes
from repro.net.topology import OverlayTopology

__all__ = [
    "BandwidthModel",
    "ChurnModel",
    "GeoModel",
    "GeoPosition",
    "LatencyModel",
    "LatencyParameters",
    "LatencySample",
    "Link",
    "LinkDelayCalculator",
    "OverlayTopology",
    "Region",
    "SessionLengthModel",
    "WORLD_REGIONS",
    "WireMessage",
    "haversine_km",
    "message_size_bytes",
]
