"""Link layer: turns latency + bandwidth models into per-message delays.

A :class:`Link` represents an established TCP connection between two peers in
the overlay.  The :class:`LinkDelayCalculator` computes the simulated delivery
delay of an individual protocol message across a link, combining:

* transmission delay at the bottleneck of the two endpoints' access rates
  (for small control messages this is negligible; for TX and BLOCK payloads it
  matters);
* one-way propagation over the pair's detour-adjusted physical distance;
* receiver queuing (Eq. 4);
* log-normal congestion jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.bandwidth import BandwidthModel
from repro.net.geo import GeoPosition
from repro.net.latency import LatencyModel
from repro.net.message import message_size_bytes


@dataclass(frozen=True)
class Link:
    """A live connection between two overlay nodes.

    Attributes:
        node_a: lower node id of the pair.
        node_b: higher node id of the pair.
        established_at: simulated time the connection completed its handshake.
        is_cluster_link: True when the connection was created by a clustering
            policy as an intra-cluster link (used by the overhead and attack
            experiments to distinguish link types).
        is_long_link: True for deliberate long-distance inter-cluster links
            (BCBPT keeps "a few long distance links to the outside cluster").
    """

    node_a: int
    node_b: int
    established_at: float
    is_cluster_link: bool = False
    is_long_link: bool = False

    def __post_init__(self) -> None:
        if self.node_a == self.node_b:
            raise ValueError(f"a node cannot link to itself (node {self.node_a})")
        if self.node_a > self.node_b:
            raise ValueError("Link endpoints must be ordered: node_a < node_b")

    @staticmethod
    def make(node_x: int, node_y: int, established_at: float, **kwargs: bool) -> "Link":
        """Create a link with endpoints in canonical order."""
        low, high = (node_x, node_y) if node_x < node_y else (node_y, node_x)
        return Link(low, high, established_at, **kwargs)

    @property
    def key(self) -> tuple[int, int]:
        """Canonical (low, high) endpoint pair."""
        return (self.node_a, self.node_b)

    def other(self, node_id: int) -> int:
        """The endpoint that is not ``node_id``."""
        if node_id == self.node_a:
            return self.node_b
        if node_id == self.node_b:
            return self.node_a
        raise ValueError(f"node {node_id} is not an endpoint of {self.key}")


class LinkDelayCalculator:
    """Computes message delivery delays across links.

    Args:
        latency_model: pairwise latency model (Eq. 2-4 + jitter + detours).
        bandwidth_model: optional per-node bandwidth model; when provided, the
            transmission component uses the endpoints' bottleneck rate instead
            of the link-wide rate from the latency parameters.
    """

    def __init__(
        self,
        latency_model: LatencyModel,
        bandwidth_model: Optional[BandwidthModel] = None,
    ) -> None:
        self._latency = latency_model
        self._bandwidth = bandwidth_model

    def message_delay_s(
        self,
        sender_id: int,
        sender_position: GeoPosition,
        receiver_id: int,
        receiver_position: GeoPosition,
        command: str,
        payload: object = None,
        *,
        jittered: bool = True,
        size_bytes: Optional[int] = None,
        jitter_factor: Optional[float] = None,
    ) -> float:
        """Delivery delay in seconds for one protocol message.

        Args:
            size_bytes: precomputed wire size (skips re-deriving it from the
                command/payload — the network layer already sized the message
                for its byte counters).
            jitter_factor: pre-drawn congestion jitter multiplier for the
                batched broadcast path; None draws per-message as usual.
        """
        size = size_bytes if size_bytes is not None else message_size_bytes(command, payload)
        delay = self._latency.one_way_delay_s(
            sender_id,
            sender_position,
            receiver_id,
            receiver_position,
            message_bytes=size,
            jittered=jittered,
            jitter_factor=jitter_factor,
        )
        if self._bandwidth is not None:
            # Replace the flat-rate transmission term with the bottleneck rate.
            flat_transmission = self._latency.transmission_delay_s(size)
            bottleneck_transmission = self._bandwidth.transmission_delay_s(
                sender_id, receiver_id, size
            )
            delay = max(
                self._latency.parameters.minimum_rtt_s / 2.0,
                delay - flat_transmission + bottleneck_transmission,
            )
        return delay

    def can_batch_jitter(self, sender_id: int, receiver_ids: list[int]) -> bool:
        """Whether jitter for sends to all ``receiver_ids`` may be batch-drawn.

        True only when every pair's persistent routing is already cached, so
        the batched draw consumes the latency stream exactly like sequential
        per-message draws would (see :meth:`LatencyModel.jitter_factors`).
        """
        routing_cached = self._latency.routing_cached
        return all(routing_cached(sender_id, receiver) for receiver in receiver_ids)

    def jitter_factors(self, count: int):
        """Batch-draw ``count`` congestion jitter factors (None if disabled)."""
        return self._latency.jitter_factors(count)

    def ping_rtt_s(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
    ) -> float:
        """One stochastic ping RTT measurement between two connected nodes."""
        return self._latency.sample_rtt(node_a, position_a, node_b, position_b).rtt_s

    def ping_rtts_s(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
        count: int,
    ) -> list[float]:
        """``count`` stochastic ping RTTs in one batched (stream-exact) call."""
        return self._latency.sample_rtts(node_a, position_a, node_b, position_b, count)

    def base_rtt_s(
        self,
        node_a: int,
        position_a: GeoPosition,
        node_b: int,
        position_b: GeoPosition,
    ) -> float:
        """Deterministic base RTT (no jitter) between two nodes."""
        return self._latency.base_rtt_s(node_a, position_a, node_b, position_b)
