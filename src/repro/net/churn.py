"""Node churn: session lengths and join/leave event generation.

The paper's simulator drives joining and leaving events from measured session
lengths of real Bitcoin peers.  Public measurements (and the authors' own
prior work) consistently show a heavy-tailed distribution: most sessions last
minutes to a few hours, while a minority of always-on nodes stay connected for
days.  We reproduce that shape with a log-normal session length plus a
configurable fraction of "stable" long-lived nodes, and an exponential
downtime between sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

import numpy as np

from repro.sim.process import Timeout

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.engine import Simulator


@dataclass(frozen=True)
class SessionParameters:
    """Parameters of the synthetic session-length distribution.

    Attributes:
        median_session_s: median session length of ordinary nodes.
        sigma: log-normal shape parameter (larger = heavier tail).
        stable_fraction: share of nodes that are effectively always-on.
        stable_session_s: session length assigned to stable nodes.
        mean_downtime_s: mean off-line time between two sessions.
    """

    median_session_s: float = 3600.0
    sigma: float = 1.4
    stable_fraction: float = 0.25
    stable_session_s: float = 7 * 24 * 3600.0
    mean_downtime_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.median_session_s <= 0:
            raise ValueError("median_session_s must be positive")
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not 0.0 <= self.stable_fraction <= 1.0:
            raise ValueError("stable_fraction must be in [0, 1]")
        if self.stable_session_s <= 0:
            raise ValueError("stable_session_s must be positive")
        if self.mean_downtime_s < 0:
            raise ValueError("mean_downtime_s cannot be negative")


class SessionLengthModel:
    """Draws session lengths and downtimes for individual nodes."""

    def __init__(
        self,
        rng: np.random.Generator,
        parameters: Optional[SessionParameters] = None,
    ) -> None:
        self._rng = rng
        self.parameters = parameters if parameters is not None else SessionParameters()
        self._stable_nodes: dict[int, bool] = {}

    def is_stable(self, node_id: int) -> bool:
        """Whether the node belongs to the always-on population."""
        stable = self._stable_nodes.get(node_id)
        if stable is None:
            stable = bool(self._rng.random() < self.parameters.stable_fraction)
            self._stable_nodes[node_id] = stable
        return stable

    def sample_session_s(self, node_id: int) -> float:
        """Length of the node's next online session in seconds."""
        if self.is_stable(node_id):
            return self.parameters.stable_session_s
        mu = np.log(self.parameters.median_session_s)
        return float(self._rng.lognormal(mean=mu, sigma=self.parameters.sigma))

    def sample_downtime_s(self, node_id: int) -> float:
        """Offline time before the node rejoins, in seconds."""
        if self.parameters.mean_downtime_s == 0:
            return 0.0
        return float(self._rng.exponential(self.parameters.mean_downtime_s))


class ChurnModel:
    """Drives join/leave events for a population of nodes.

    The model spawns one simulator process per churned node.  Each process
    alternates online sessions and offline gaps, invoking the provided
    ``on_leave`` / ``on_join`` callbacks so the protocol layer can tear down
    and re-establish connections.

    Args:
        simulator: owning engine.
        session_model: session length / downtime sampler.
        on_leave: called with the node id when its session ends.
        on_join: called with the node id when it comes back online.
    """

    def __init__(
        self,
        simulator: "Simulator",
        session_model: SessionLengthModel,
        on_leave: Callable[[int], None],
        on_join: Callable[[int], None],
    ) -> None:
        self._simulator = simulator
        self._sessions = session_model
        self._on_leave = on_leave
        self._on_join = on_join
        self._online: dict[int, bool] = {}
        self._processes: dict[int, object] = {}
        self.join_events = 0
        self.leave_events = 0

    def is_online(self, node_id: int) -> bool:
        """Whether the node is currently in an online session."""
        return self._online.get(node_id, False)

    def online_nodes(self) -> list[int]:
        """Ids of nodes currently online."""
        return [node_id for node_id, online in self._online.items() if online]

    def start_node(self, node_id: int) -> None:
        """Begin the churn cycle for a node that is online right now."""
        if node_id in self._processes:
            raise ValueError(f"node {node_id} is already managed by the churn model")
        self._online[node_id] = True
        process = self._simulator.spawn(self._churn_cycle(node_id), name=f"churn:{node_id}")
        self._processes[node_id] = process

    def _churn_cycle(self, node_id: int):
        while True:
            session = self._sessions.sample_session_s(node_id)
            yield Timeout(session)
            self._online[node_id] = False
            self.leave_events += 1
            self._on_leave(node_id)
            downtime = self._sessions.sample_downtime_s(node_id)
            yield Timeout(max(downtime, 1e-9))
            self._online[node_id] = True
            self.join_events += 1
            self._on_join(node_id)
