"""Execution-plane regression guards: dispatch overhead and warm workers.

Quick-lane guards for the two performance properties the executor backends
exist to provide:

* **cheap dispatch** — adaptive chunking must keep the pool's per-cell
  dispatch overhead (pickle + queue round-trips) far below the cost of even
  a tiny simulation cell, so many-tiny-cell grids (threshold sweeps, churn
  ladders) are not dominated by plumbing;
* **warm snapshot reuse** — a pool worker must unpickle each network
  snapshot once and serve subsequent cells from its in-memory cache (via
  copy-on-write forks), beating the old cold path that re-read the snapshot
  from disk for every cell.

Both bounds are deliberately generous: they trip on order-of-magnitude
regressions (per-task dispatch, cache never hitting), not on CI jitter.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

import pytest

from repro.experiments.backends import PoolBackend
from repro.workloads.network_gen import ensure_network_snapshot, load_network
from repro.experiments.scale import scale_parameters

#: Generous ceiling on pool dispatch overhead per trivial cell.  Adaptive
#: chunking amortises round-trips ~64x, so real overhead is well under a
#: millisecond per cell; 25 ms only trips if chunking stops working.
DISPATCH_OVERHEAD_BOUND_S = 0.025

#: Trivial cells for the dispatch measurement.
DISPATCH_JOBS = 256

#: Network size for the warm-cache comparison: big enough that unpickling
#: the snapshot dominates a fork, small enough to build once in seconds.
WARM_NODE_COUNT = 600

#: Cells per snapshot in the warm/cold comparison.
WARM_CELLS = 12

WORKERS = 2


def _noop(value: int) -> int:
    return value


@dataclass(frozen=True)
class SnapshotProbeJob:
    """A cell that does nothing but acquire its network snapshot."""

    snapshot_path: Optional[str]


def run_snapshot_probe(job: SnapshotProbeJob) -> int:
    return load_network(job.snapshot_path).node_count


def test_pool_dispatch_overhead_per_cell_under_bound():
    backend = PoolBackend(workers=WORKERS, warm_snapshots=False)
    start = time.perf_counter()
    results = backend.run(_noop, list(range(DISPATCH_JOBS)))
    elapsed = time.perf_counter() - start
    assert results == list(range(DISPATCH_JOBS))
    per_cell = elapsed / DISPATCH_JOBS
    print(
        f"\npool dispatch: {DISPATCH_JOBS} trivial cells on {WORKERS} workers "
        f"in {elapsed:.3f}s ({per_cell * 1e3:.2f} ms/cell)"
    )
    assert per_cell < DISPATCH_OVERHEAD_BOUND_S, (
        f"pool dispatch overhead regressed: {per_cell * 1e3:.1f} ms per "
        f"trivial cell (bound {DISPATCH_OVERHEAD_BOUND_S * 1e3:.0f} ms) — "
        "adaptive chunking is probably not amortising round-trips any more"
    )


@pytest.mark.skipif(not hasattr(os, "fork"), reason="warm workers require os.fork")
def test_warm_snapshot_pool_beats_cold_per_cell_loads(tmp_path):
    parameters = scale_parameters(WARM_NODE_COUNT, 3, 6)
    snapshot = str(ensure_network_snapshot(parameters, tmp_path))
    jobs = [SnapshotProbeJob(snapshot_path=snapshot) for _ in range(WARM_CELLS)]

    def timed(backend: PoolBackend) -> float:
        start = time.perf_counter()
        results = backend.run(run_snapshot_probe, jobs)
        elapsed = time.perf_counter() - start
        assert results == [WARM_NODE_COUNT] * WARM_CELLS
        return elapsed

    # Cold first so the OS page cache is warm for *both* measurements — the
    # comparison isolates unpickling cost, which the page cache cannot hide.
    cold = timed(PoolBackend(workers=WORKERS, warm_snapshots=False))
    warm = timed(PoolBackend(workers=WORKERS, warm_snapshots=True))
    print(
        f"\nsnapshot acquisition x{WARM_CELLS} at {WARM_NODE_COUNT} nodes: "
        f"cold {cold:.3f}s, warm {warm:.3f}s ({cold / max(warm, 1e-9):.2f}x)"
    )
    assert warm < cold, (
        f"warm workers regressed: {WARM_CELLS} snapshot-backed cells took "
        f"{warm:.3f}s with the per-worker cache vs {cold:.3f}s cold — the "
        "cache is probably never hit"
    )
