"""Fig. 4 benchmark — Δt distribution for BCBPT at d_t ∈ {30, 50, 100} ms.

Regenerates the paper's threshold study through the unified experiment API
and asserts its trend: a smaller latency threshold yields a lower variance of
the transaction propagation delay, because clusters stay smaller and their
links shorter.
"""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment


@pytest.fixture(scope="module")
def fig4_run(bench_config):
    return run_experiment("fig4", bench_config)


@pytest.fixture(scope="module")
def fig4_results(fig4_run):
    return fig4_run.payload


def test_bench_fig4_threshold_study(benchmark, bench_config, fig4_run):
    """Time one single-seed threshold sweep and report the full table."""

    def single_seed_sweep():
        quick = bench_config.with_overrides(seeds=bench_config.seeds[:1], runs=3)
        return run_experiment("fig4", quick)

    benchmark.pedantic(single_seed_sweep, rounds=1, iterations=1)
    print()
    print(fig4_run.render())
    # Assert the paper's trend here too so a ``--benchmark-only`` run checks it.
    assert fig4_run.verdicts["variance_monotone"]


def test_fig4_variance_monotone_in_threshold(fig4_run):
    """Reproduction criterion: Δt variance does not decrease as d_t grows."""
    assert fig4_run.verdicts["variance_monotone"]


def test_fig4_smallest_threshold_is_best(fig4_results):
    """The 30 ms threshold beats the 100 ms threshold in both mean and variance."""
    tight = fig4_results["bcbpt@30ms"].summary()
    loose = fig4_results["bcbpt@100ms"].summary()
    assert tight["mean_s"] < loose["mean_s"]
    assert tight["variance_s2"] < loose["variance_s2"]


def test_fig4_cluster_size_explains_trend(fig4_results):
    """The paper's explanation: a smaller threshold yields smaller clusters."""
    def mean_cluster_size(label):
        summaries = fig4_results[label].cluster_summaries.values()
        sizes = [s["mean_size"] for s in summaries if s.get("cluster_count")]
        return sum(sizes) / len(sizes)

    assert mean_cluster_size("bcbpt@30ms") <= mean_cluster_size("bcbpt@100ms")
