"""Ext-6 quick-lane guard — churn resilience end-to-end under the parallel runner.

Unlike the figure benchmarks (marked ``slow``), this module runs in the quick
``-m "not slow"`` lane: it drives the whole dynamic-membership stack — churn
schedule, session processes, connection teardown, policy repair, measurement
under churn, parallel fan-out and the ordered merge — through the unified
experiment API at a deliberately small scale, under a generous wall-clock
bound so a runtime regression in the churn path fails loudly without tying CI
to machine speed.
"""

from __future__ import annotations

import time

from repro.experiments.api import run_experiment

#: Generous upper bound (the run takes a few seconds on any recent machine).
WALL_CLOCK_BOUND_S = 30.0


def test_churn_resilience_end_to_end_quickly(bench_config):
    config = bench_config.with_overrides(
        node_count=60,
        runs=2,
        seeds=bench_config.seeds[:2],
        measuring_nodes=2,
        run_timeout_s=30.0,
    )
    start = time.perf_counter()
    run = run_experiment("churn_resilience", config, {"levels": ("static", "heavy")})
    elapsed = time.perf_counter() - start
    results = run.payload

    assert set(results) == {
        f"{protocol}/{level}"
        for protocol in ("bitcoin", "lbc", "bcbpt")
        for level in ("static", "heavy")
    }
    for key, result in results.items():
        assert len(result.delays) > 0, f"{key} produced no delay samples"
        assert 0.0 < result.mean_coverage() <= 1.0
        if result.level == "static":
            assert result.leave_events == 0
        else:
            assert result.leave_events > 0, f"{key} saw no churn"
    # The clustered protocols' maintenance actually ran under churn.
    assert results["bcbpt/heavy"].repair_sweeps > 0
    assert results["lbc/heavy"].repair_sweeps > 0
    assert run.verdicts["clustering_survives_churn"]

    print()
    print(run.render())
    assert elapsed < WALL_CLOCK_BOUND_S, (
        f"churn resilience run regressed: {elapsed:.1f}s (bound {WALL_CLOCK_BOUND_S}s)"
    )
