"""Fig. 3 benchmark — Δt distribution: Bitcoin vs LBC vs BCBPT at d_t = 25 ms.

Regenerates the paper's headline comparison through the unified experiment
API (``run_experiment("fig3", ...)``) and asserts its shape: the BCBPT
protocol achieves lower mean propagation delay *and* lower delay variance than
both the LBC protocol and the unmodified Bitcoin protocol.
"""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment


@pytest.fixture(scope="module")
def fig3_run(bench_config):
    return run_experiment("fig3", bench_config)


@pytest.fixture(scope="module")
def fig3_results(fig3_run):
    return fig3_run.payload


def test_bench_fig3_comparison(benchmark, bench_config, fig3_run):
    """Time one full single-seed Fig. 3 style campaign and report the table."""

    def single_seed_campaign():
        quick = bench_config.with_overrides(seeds=bench_config.seeds[:1], runs=3)
        return run_experiment("fig3", quick)

    benchmark.pedantic(single_seed_campaign, rounds=1, iterations=1)
    print()
    print(fig3_run.render())
    # The headline reproduction criterion is asserted here too so that a
    # ``--benchmark-only`` run still verifies the paper's ordering.
    assert fig3_run.verdicts["paper_ordering"]


def test_fig3_paper_ordering_holds(fig3_run):
    """Reproduction criterion: BCBPT < LBC < Bitcoin in mean and variance."""
    assert fig3_run.verdicts["paper_ordering"]


def test_fig3_bcbpt_improvement_is_substantial(fig3_results):
    """BCBPT cuts the mean delay by well over 2x relative to vanilla Bitcoin
    (the paper's figure shows most BCBPT receptions arriving several times
    earlier than Bitcoin's)."""
    bitcoin = fig3_results["bitcoin"].summary()
    bcbpt = fig3_results["bcbpt"].summary()
    assert bitcoin["mean_s"] / bcbpt["mean_s"] > 2.0
    assert bitcoin["variance_s2"] / bcbpt["variance_s2"] > 5.0


def test_fig3_variance_rank_shape(fig3_results):
    """Bitcoin's Δt variance at late reception ranks dwarfs BCBPT's at the
    same ranks — the per-rank pattern the paper highlights."""
    bitcoin_curve = dict(fig3_results["bitcoin"].rank_variance_curve())
    bcbpt_curve = dict(fig3_results["bcbpt"].rank_variance_curve())
    shared = sorted(set(bitcoin_curve) & set(bcbpt_curve))
    assert shared, "the two curves must share reception ranks"
    late = shared[len(shared) // 2 :]
    assert all(bitcoin_curve[rank] > bcbpt_curve[rank] for rank in late)


def test_fig3_envelope_summaries_match_payload(fig3_run, fig3_results):
    """The persisted envelope's summaries mirror the in-memory aggregates."""
    for protocol, result in fig3_results.items():
        assert fig3_run.summaries[protocol] == result.summary()
