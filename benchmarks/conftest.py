"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's figures (or one of the
extensions documented in DESIGN.md) and prints the corresponding text table so
the shape can be compared against the paper.  Scale is controlled by
environment variables so the same harness covers both the minutes-scale CI
run and a paper-scale reproduction:

* ``REPRO_BENCH_NODES``  — network size (default 200; the paper used ~5000);
* ``REPRO_BENCH_RUNS``   — repetitions per measuring node (default 10; the
  paper averaged ~1000 runs);
* ``REPRO_BENCH_SEEDS``  — comma-separated master seeds (default "3,11,23");
* ``REPRO_BENCH_WORKERS`` — processes for (protocol, seed) fan-out (default:
  one per CPU, capped at 4; results are identical for every worker count —
  see ``repro.experiments.parallel``).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - trivial path bookkeeping
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import ExperimentConfig  # noqa: E402


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


def _env_seeds(name: str, default: tuple[int, ...]) -> tuple[int, ...]:
    value = os.environ.get(name)
    if not value:
        return default
    return tuple(int(part) for part in value.split(",") if part.strip())


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """The experiment configuration shared by all benchmarks."""
    return ExperimentConfig(
        node_count=_env_int("REPRO_BENCH_NODES", 200),
        runs=_env_int("REPRO_BENCH_RUNS", 10),
        seeds=_env_seeds("REPRO_BENCH_SEEDS", (3, 11, 23)),
        measuring_nodes=_env_int("REPRO_BENCH_MEASURING_NODES", 3),
        workers=_env_int("REPRO_BENCH_WORKERS", min(4, os.cpu_count() or 1)),
    )


@pytest.fixture(scope="session")
def quick_config(bench_config: ExperimentConfig) -> ExperimentConfig:
    """A lighter configuration for the auxiliary (extension) benchmarks."""
    return bench_config.with_overrides(
        runs=max(3, bench_config.runs // 2),
        seeds=bench_config.seeds[:2],
    )
