"""Ext-2 benchmark — measurement/control overhead vs propagation benefit."""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment


@pytest.fixture(scope="module")
def overhead_run(quick_config):
    return run_experiment("overhead", quick_config)


@pytest.fixture(scope="module")
def overhead_points(overhead_run):
    return overhead_run.payload


def test_bench_overhead(benchmark, quick_config, overhead_run):
    """Time a single-protocol overhead evaluation and report the comparison."""

    def bcbpt_only():
        return run_experiment(
            "overhead",
            quick_config.with_overrides(seeds=quick_config.seeds[:1], runs=2),
            {"protocols": ("bcbpt",)},
        )

    benchmark.pedantic(bcbpt_only, rounds=1, iterations=1)
    print()
    print(overhead_run.render())


def test_overhead_bcbpt_pays_for_measurement(overhead_points):
    """BCBPT's ping-measurement cost is real (the paper's deferred evaluation):
    it sends ping traffic the Bitcoin baseline does not."""
    by_name = {p.protocol: p for p in overhead_points}
    assert by_name["bitcoin"].ping_messages_per_node == 0
    assert by_name["lbc"].ping_messages_per_node == 0
    assert by_name["bcbpt"].ping_messages_per_node > 10


def test_overhead_buys_delay_improvement(overhead_points):
    """The overhead is worth it: BCBPT's delay is far below Bitcoin's."""
    by_name = {p.protocol: p for p in overhead_points}
    assert by_name["bcbpt"].mean_delay_s < by_name["bitcoin"].mean_delay_s / 2


def test_overhead_cluster_control_traffic_present(overhead_points):
    by_name = {p.protocol: p for p in overhead_points}
    assert by_name["bcbpt"].control_messages_per_node > 0
    assert by_name["bcbpt"].control_bytes_per_node > 0
