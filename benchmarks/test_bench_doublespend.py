"""Ext-4 benchmark — double-spend race outcomes under each protocol."""

from __future__ import annotations

import math

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment


@pytest.fixture(scope="module")
def doublespend_run(quick_config):
    return run_experiment(
        "doublespend", quick_config, {"races_per_seed": 4, "race_horizon_s": 2.0}
    )


@pytest.fixture(scope="module")
def doublespend_points(doublespend_run):
    return doublespend_run.payload


def test_bench_doublespend(benchmark, quick_config, doublespend_run):
    """Time a single-protocol race batch and report the comparison."""

    def bcbpt_only():
        return run_experiment(
            "doublespend",
            quick_config.with_overrides(seeds=quick_config.seeds[:1]),
            {"races_per_seed": 2, "race_horizon_s": 1.0, "protocols": ("bcbpt",)},
        )

    benchmark.pedantic(bcbpt_only, rounds=1, iterations=1)
    print()
    print(doublespend_run.render())


def test_doublespend_merchant_detects_conflict_everywhere(doublespend_points):
    """Within the race horizon the merchant hears about the conflicting
    transaction under every protocol (the network is connected), so detection
    rates are high."""
    for point in doublespend_points:
        assert point.detection_rate >= 0.5


def test_doublespend_clustering_does_not_help_the_attacker(doublespend_points):
    """Faster propagation must not increase the attacker's first-seen share."""
    by_name = {p.protocol: p for p in doublespend_points}
    assert by_name["bcbpt"].mean_attacker_share <= by_name["bitcoin"].mean_attacker_share + 0.15


def test_doublespend_detection_faster_under_clustering(doublespend_points):
    """BCBPT's faster relay lets the merchant learn of the conflict sooner."""
    by_name = {p.protocol: p for p in doublespend_points}
    bcbpt = by_name["bcbpt"].mean_detection_time_s
    bitcoin = by_name["bitcoin"].mean_detection_time_s
    if not (math.isnan(bcbpt) or math.isnan(bitcoin)):
        assert bcbpt <= bitcoin
