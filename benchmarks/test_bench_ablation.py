"""Ext-5 benchmark — ablations of BCBPT's design choices."""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment


@pytest.fixture(scope="module")
def ablation_run(quick_config):
    return run_experiment("ablation", quick_config)


@pytest.fixture(scope="module")
def verification_points(ablation_run):
    return ablation_run.payload.verification


@pytest.fixture(scope="module")
def long_link_points(ablation_run):
    return ablation_run.payload.long_links


def test_bench_ablation(benchmark, quick_config, ablation_run):
    """Time the pipelined-relay variant and report both ablation tables."""

    def pipelined_only():
        from repro.experiments.ablation import run_verification_ablation

        small = quick_config.with_overrides(seeds=quick_config.seeds[:1], runs=2)
        return run_verification_ablation(small)

    benchmark.pedantic(pipelined_only, rounds=1, iterations=1)
    print()
    print(ablation_run.render())


def test_ablation_verification_delay_costs_time(verification_points):
    """Charging the per-hop verification delay slows propagation; pipelining
    it away (Stathakopoulou'15) gives a strictly faster relay."""
    by_name = {p.variant: p for p in verification_points}
    assert by_name["pipelined-relay"].mean_delay_s < by_name["verify-then-relay"].mean_delay_s


def test_ablation_long_links_do_not_hurt_proximity_delay(long_link_points):
    """Adding long links leaves the proximity-connection delay roughly
    unchanged (they are excluded from the measured set) while increasing the
    overlay degree."""
    by_name = {p.variant: p for p in long_link_points}
    assert by_name["long-links=5"].average_degree > by_name["long-links=0"].average_degree
    assert by_name["long-links=5"].mean_delay_s < by_name["long-links=0"].mean_delay_s * 1.5


def test_ablation_long_links_shorten_paths(long_link_points):
    """More long links shrink (or at least do not grow) the overlay's average
    shortest-path length, which is what they exist for."""
    by_name = {p.variant: p for p in long_link_points}
    assert by_name["long-links=5"].average_path_length <= by_name["long-links=0"].average_path_length
