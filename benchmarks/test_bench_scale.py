"""Scale-plane regression guards: peak memory and throughput floors.

Quick-lane (``-m "not slow"``): one mid-size scale cell — snapshot-loaded
network, measuring-only funding, in-run pruning — must stay under a
*generous* traced-allocation ceiling and over a *generous* events/second
floor.  The bounds are an order of magnitude away from current numbers (at
400 nodes a cell peaks around 4 MB traced and runs well above 2000 events/s),
so they only trip on the regressions the scale plane exists to prevent: the
latency plane falling back to per-pair dicts, funding going quadratic again,
or the event loop slowing by 10x.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.experiments.config import ExperimentConfig
from repro.experiments.parallel import ScaleJob, run_scale_job
from repro.experiments.scale import scale_parameters
from repro.workloads.network_gen import ensure_network_snapshot

#: Mid-size rung: big enough that quadratic funding or dict-backed pair
#: storage would blow through the ceiling, small enough for the quick lane.
NODE_COUNT = 400

#: Generous ceiling on the cell's peak traced allocations.
PEAK_TRACED_BOUND_MB = 60.0

#: Generous floor on simulation throughput.
EVENTS_PER_S_FLOOR = 200.0

CONFIG = ExperimentConfig(
    node_count=NODE_COUNT, runs=1, seeds=(3,), measuring_nodes=1, run_timeout_s=30.0
)


def _run_cell(tmp_path):
    parameters = scale_parameters(NODE_COUNT, 3, 6)
    snapshot = ensure_network_snapshot(parameters, tmp_path)
    job = ScaleJob(
        node_count=NODE_COUNT,
        protocol="bitcoin",
        seed=3,
        threshold_s=CONFIG.latency_threshold_s,
        prune_depth=6,
        cell_runs=1,
        profile_memory=True,
        snapshot_path=str(snapshot),
        config=CONFIG,
    )
    return run_scale_job(job)


def test_scale_cell_peak_memory_under_bound(tmp_path):
    assert not tracemalloc.is_tracing()  # the job owns the tracer
    result = _run_cell(tmp_path)
    assert result.events > 0
    assert result.delay_samples > 0
    assert result.peak_traced_mb is not None
    assert result.peak_traced_mb < PEAK_TRACED_BOUND_MB, (
        f"scale cell memory regressed: peak {result.peak_traced_mb:.1f} MB "
        f"traced at {NODE_COUNT} nodes (bound {PEAK_TRACED_BOUND_MB} MB)"
    )


def test_scale_cell_throughput_over_floor(tmp_path):
    start = time.perf_counter()
    result = _run_cell(tmp_path)
    elapsed = time.perf_counter() - start
    assert result.events_per_s > EVENTS_PER_S_FLOOR, (
        f"scale cell throughput regressed: {result.events_per_s:.0f} events/s "
        f"at {NODE_COUNT} nodes (floor {EVENTS_PER_S_FLOOR}, cell took "
        f"{elapsed:.1f}s wall)"
    )
