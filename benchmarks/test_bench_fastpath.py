"""Kernel fast-path regression guard.

Unlike the figure benchmarks (which are marked ``slow``), this module runs in
the quick ``-m "not slow"`` lane: it executes a fixed number of events through
the no-trace fast path under a *generous* wall-clock bound, so a kernel
regression (rich heap comparisons, per-event allocation, tracer overhead
creeping back in) fails loudly without tying CI to machine speed.
"""

from __future__ import annotations

import time

from repro.protocol.messages import InvMessage, InventoryType
from repro.sim.engine import Simulator
from repro.workloads.network_gen import NetworkParameters, build_network

#: Events pushed through the bare engine loop.
EVENT_COUNT = 200_000

#: Generous upper bound: the kernel does this in well under a second on any
#: recent machine; a 10x regression still passes only on severely loaded CI.
WALL_CLOCK_BOUND_S = 10.0


def test_no_trace_fastpath_executes_fixed_event_count_quickly():
    simulator = Simulator(seed=1, trace=False)
    fired = [0]

    def tick():
        fired[0] += 1

    for index in range(EVENT_COUNT):
        simulator.schedule(index * 1e-6, tick)
    start = time.perf_counter()
    simulator.run()
    elapsed = time.perf_counter() - start
    assert fired[0] == EVENT_COUNT
    assert simulator.events_executed == EVENT_COUNT
    # The whole point of the no-trace fast path: nothing was recorded.
    assert len(simulator.tracer) == 0
    assert elapsed < WALL_CLOCK_BOUND_S, (
        f"event kernel regressed: {EVENT_COUNT} events took {elapsed:.2f}s "
        f"(bound {WALL_CLOCK_BOUND_S}s)"
    )


def test_broadcast_fastpath_message_volume_under_bound():
    """Drive the batched-broadcast + delivery path, not just bare events."""
    simulated = build_network(NetworkParameters(node_count=40, seed=9))
    network = simulated.network
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        network.connect(node_id, ids[(index + 1) % len(ids)])
        network.connect(node_id, ids[(index + 2) % len(ids)])
        network.connect(node_id, ids[(index + 5) % len(ids)])
    rounds = 200
    start = time.perf_counter()
    for round_index in range(rounds):
        for node_id in ids:
            network.broadcast(
                node_id,
                InvMessage(
                    sender=node_id,
                    inventory_type=InventoryType.TRANSACTION,
                    hashes=(f"tx-{round_index}-{node_id}",),
                ),
            )
        simulated.simulator.run(until=simulated.simulator.now + 1.0)
    elapsed = time.perf_counter() - start
    assert network.total_messages() > rounds * len(ids)
    assert elapsed < WALL_CLOCK_BOUND_S, (
        f"broadcast path regressed: {rounds} rounds took {elapsed:.2f}s "
        f"(bound {WALL_CLOCK_BOUND_S}s)"
    )
