"""Val-1 benchmark — substrate validation against published real-network shapes."""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.validation import build_report, run_validation


@pytest.fixture(scope="module")
def validation_summary(quick_config):
    return run_validation(quick_config, crawler_samples=10_000)


def test_bench_validation(benchmark, quick_config, validation_summary):
    """Time a reduced crawl and report the full validation outcome."""

    def reduced_crawl():
        return run_validation(
            quick_config.with_overrides(seeds=quick_config.seeds[:1], runs=2),
            crawler_samples=2_000,
        )

    benchmark.pedantic(reduced_crawl, rounds=1, iterations=1)
    print()
    print(build_report(validation_summary).render())


def test_validation_rtt_shape(validation_summary):
    """Intra-region RTTs of tens of ms, inter-region several times larger."""
    assert validation_summary.rtt_shape_ok
    assert validation_summary.intra_region_median_s < validation_summary.inter_region_median_s


def test_validation_delay_shape(validation_summary):
    """Vanilla-Bitcoin Δt is right-skewed with a long tail."""
    assert validation_summary.delay_shape_ok


def test_validation_overall(validation_summary):
    assert validation_summary.all_ok
