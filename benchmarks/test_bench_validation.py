"""Val-1 benchmark — substrate validation against published real-network shapes."""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment


@pytest.fixture(scope="module")
def validation_run(quick_config):
    return run_experiment("validation", quick_config, {"crawler_samples": 10_000})


@pytest.fixture(scope="module")
def validation_summary(validation_run):
    return validation_run.payload


def test_bench_validation(benchmark, quick_config, validation_run):
    """Time a reduced crawl and report the full validation outcome."""

    def reduced_crawl():
        return run_experiment(
            "validation",
            quick_config.with_overrides(seeds=quick_config.seeds[:1], runs=2),
            {"crawler_samples": 2_000},
        )

    benchmark.pedantic(reduced_crawl, rounds=1, iterations=1)
    print()
    print(validation_run.render())


def test_validation_rtt_shape(validation_run, validation_summary):
    """Intra-region RTTs of tens of ms, inter-region several times larger."""
    assert validation_run.verdicts["rtt_shape_ok"]
    assert validation_summary.intra_region_median_s < validation_summary.inter_region_median_s


def test_validation_delay_shape(validation_run):
    """Vanilla-Bitcoin Δt is right-skewed with a long tail."""
    assert validation_run.verdicts["delay_shape_ok"]


def test_validation_overall(validation_run):
    assert validation_run.verdicts["all_ok"]
