"""Ext-7 quick-lane guard — relay comparison end-to-end, compact beats flood.

Runs in the quick ``-m "not slow"`` lane: it drives the whole relay-strategy
stack — scenario construction with a non-default strategy, compact-block
reconstruction, the GETBLOCKTXN fallback plumbing, parallel fan-out and the
ordered merge — through the unified experiment API at small scale, and pins
the two properties the strategy exists for:

* compact relay spends fewer *messages* per block than flood on every policy
  (header + short ids replace the INV/GETDATA/BLOCK triple), and
* compact relay ships fewer *block bytes* than flood on the same seed, once
  blocks carry a realistic number of transactions (with near-empty blocks the
  per-edge header push costs more than a handful of full-block transfers —
  which is exactly why BIP 152 matters for megabyte blocks).

The wall-clock bound is generous so a runtime regression in the relay path
fails loudly without tying CI to machine speed.
"""

from __future__ import annotations

import time

from repro.experiments.api import run_experiment

#: Generous upper bound (the run takes a few seconds on any recent machine).
WALL_CLOCK_BOUND_S = 60.0

#: Transactions per block: enough that a full block dwarfs the compact
#: header+short-id announcement even at benchmark scale.
TXS_PER_BLOCK = 40


def test_relay_comparison_end_to_end_quickly(bench_config):
    config = bench_config.with_overrides(
        node_count=60,
        runs=1,
        seeds=bench_config.seeds[:1],
        measuring_nodes=1,
        funding_outputs_per_node=4,
    )
    start = time.perf_counter()
    run = run_experiment(
        "relay_comparison",
        config,
        {"blocks": 2, "txs_per_block": TXS_PER_BLOCK},
    )
    elapsed = time.perf_counter() - start
    results = run.payload

    assert set(results) == {
        f"{relay}/{protocol}"
        for relay in ("flood", "compact", "push")
        for protocol in ("bitcoin", "lbc", "bcbpt")
    }
    for key, result in results.items():
        assert result.blocks_measured == 2, f"{key} lost a block"
        assert result.mean_coverage() == 1.0, f"{key} did not reach every node"
        assert len(result.delays) > 0

    for protocol in ("bitcoin", "lbc", "bcbpt"):
        flood = results[f"flood/{protocol}"]
        compact = results[f"compact/{protocol}"]
        # The headline reductions: fewer relay messages per block, and fewer
        # block-payload bytes on the wire, on the same seed and overlay.
        assert compact.messages_per_block() < flood.messages_per_block(), protocol
        assert compact.block_payload_bytes_per_block() < flood.block_payload_bytes_per_block(), protocol
        # Compact also wins latency: one hop sheds a request round-trip.
        assert compact.delays.mean() < flood.delays.mean(), protocol

    # The compact machinery actually ran: blocks were rebuilt from mempools.
    assert results["compact/bcbpt"].compact_blocks_reconstructed > 0
    # Push relay exercised its unsolicited path on the clustered overlays.
    assert results["push/bcbpt"].blocks_pushed > 0

    assert run.verdicts["compact_fewer_messages_per_block"]
    assert run.verdicts["compact_faster_block_propagation"]

    print()
    print(run.render())
    assert elapsed < WALL_CLOCK_BOUND_S, (
        f"relay comparison run regressed: {elapsed:.1f}s (bound {WALL_CLOCK_BOUND_S}s)"
    )
