"""Ext-7 quick-lane guard — relay comparison end-to-end, compact beats flood,
headers-first beats flood at sync, adaptive narrows its fan-out.

Runs in the quick ``-m "not slow"`` lane: it drives the whole relay-strategy
stack — scenario construction with a non-default strategy, compact-block
reconstruction, the GETBLOCKTXN fallback plumbing, parallel fan-out and the
ordered merge — through the unified experiment API at small scale, and pins
the properties each strategy exists for:

* compact relay spends fewer *messages* per block than flood on every policy
  (header + short ids replace the INV/GETDATA/BLOCK triple), and
* compact relay ships fewer *block bytes* than flood on the same seed, once
  blocks carry a realistic number of transactions (with near-empty blocks the
  per-edge header push costs more than a handful of full-block transfers —
  which is exactly why BIP 152 matters for megabyte blocks);
* headers-first sync catches a lagging node up for fewer bytes per block than
  flood's tip-first orphan walk once the gap exceeds the orphan pool (the
  walk evicts tip-side orphans and re-downloads their bodies on the next
  announcement; headers-first fetches each body exactly once, in order);
* adaptive relay ends up announcing transactions to fewer peers than its
  degree (and therefore spends fewer INV messages than flood) once redundant
  INV crossfire has driven the fan-out down.

The wall-clock bounds are generous so a runtime regression in the relay path
fails loudly without tying CI to machine speed.
"""

from __future__ import annotations

import time

from repro.experiments.api import run_experiment
from repro.protocol.mining import MiningProcess, equal_hash_power
from repro.protocol.node import NodeConfig
from repro.workloads.generators import fund_nodes
from repro.workloads.network_gen import NetworkParameters, build_network

#: Generous upper bound (each run takes a few seconds on any recent machine).
WALL_CLOCK_BOUND_S = 60.0

#: Transactions per block: enough that a full block dwarfs the compact
#: header+short-id announcement even at benchmark scale.
TXS_PER_BLOCK = 40

#: Catch-up guard: blocks the lagging node is behind by.  Deliberately larger
#: than ``CATCHUP_ORPHAN_POOL`` so flood's tip-first walk overflows the pool.
CATCHUP_GAP = 24

#: Catch-up guard: orphan-pool cap for the lagging node.
CATCHUP_ORPHAN_POOL = 8


def _mine_at(simulated, winner_id):
    """Mine one block at ``winner_id`` from its own mempool."""
    mining = MiningProcess(
        simulated.simulator,
        simulated.nodes,
        equal_hash_power(simulated.node_ids()),
        simulated.simulator.random.stream("mining"),
    )
    block = mining.mine_one_block(winner_id=winner_id)
    assert block is not None
    return block


def test_relay_comparison_end_to_end_quickly(bench_config):
    config = bench_config.with_overrides(
        node_count=60,
        runs=1,
        seeds=bench_config.seeds[:1],
        measuring_nodes=1,
        funding_outputs_per_node=4,
    )
    start = time.perf_counter()
    run = run_experiment(
        "relay_comparison",
        config,
        # The full five-strategy default sweep is exercised (more cheaply) by
        # the experiment tests; this guard pins the compact-vs-flood headline
        # numbers at benchmark scale, so the sweep is pinned explicitly.
        {"blocks": 2, "txs_per_block": TXS_PER_BLOCK, "relays": ("flood", "compact", "push")},
    )
    elapsed = time.perf_counter() - start
    results = run.payload

    assert set(results) == {
        f"{relay}/{protocol}"
        for relay in ("flood", "compact", "push")
        for protocol in ("bitcoin", "lbc", "bcbpt")
    }
    for key, result in results.items():
        assert result.blocks_measured == 2, f"{key} lost a block"
        assert result.mean_coverage() == 1.0, f"{key} did not reach every node"
        assert len(result.delays) > 0

    for protocol in ("bitcoin", "lbc", "bcbpt"):
        flood = results[f"flood/{protocol}"]
        compact = results[f"compact/{protocol}"]
        # The headline reductions: fewer relay messages per block, and fewer
        # block-payload bytes on the wire, on the same seed and overlay.
        assert compact.messages_per_block() < flood.messages_per_block(), protocol
        assert compact.block_payload_bytes_per_block() < flood.block_payload_bytes_per_block(), protocol
        # Compact also wins latency: one hop sheds a request round-trip.
        assert compact.delays.mean() < flood.delays.mean(), protocol

    # The compact machinery actually ran: blocks were rebuilt from mempools.
    assert results["compact/bcbpt"].compact_blocks_reconstructed > 0
    # Push relay exercised its unsolicited path on the clustered overlays.
    assert results["push/bcbpt"].blocks_pushed > 0

    assert run.verdicts["compact_fewer_messages_per_block"]
    assert run.verdicts["compact_faster_block_propagation"]

    print()
    print(run.render())
    assert elapsed < WALL_CLOCK_BOUND_S, (
        f"relay comparison run regressed: {elapsed:.1f}s (bound {WALL_CLOCK_BOUND_S}s)"
    )


def _run_catchup(relay: str) -> tuple[float, int]:
    """Sync a node ``CATCHUP_GAP`` blocks behind a live miner.

    Returns ``(bytes_per_synced_block, blocks_synced)`` for the whole
    catch-up, measured from the moment the lagging node connects.  The miner
    keeps producing blocks after the connection — exactly the situation a
    rejoining node faces — which is also what lets flood's walk resume after
    each orphan-pool overflow (the next tip INV restarts it).
    """
    config = NodeConfig(
        relay_strategy=relay,
        resync_on_reconnect=True,
        max_orphan_blocks=CATCHUP_ORPHAN_POOL,
    )
    simulated = build_network(
        NetworkParameters(node_count=2, seed=11, node_config=config)
    )
    network = simulated.network
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=2)
    for _ in range(CATCHUP_GAP):
        _mine_at(simulated, 0)  # no connections yet: announcements go nowhere

    bytes_before = sum(network.bytes_sent.values())
    network.connect(0, 1)
    simulated.simulator.run(until=10.0)
    now = 10.0
    for _ in range(6):  # the network stays live while node 1 catches up
        _mine_at(simulated, 0)
        now += 10.0
        simulated.simulator.run(until=now)
    simulated.simulator.run(until=now + 60.0)

    miner, behind = simulated.node(0), simulated.node(1)
    assert behind.blockchain.tip.block_hash == miner.blockchain.tip.block_hash, (
        f"{relay}: lagging node never caught up "
        f"(height {behind.blockchain.height} vs {miner.blockchain.height})"
    )
    blocks_synced = behind.blockchain.height - 1  # genesis excluded
    total_bytes = sum(network.bytes_sent.values()) - bytes_before
    return total_bytes / blocks_synced, blocks_synced


def test_headers_sync_cheaper_than_flood_catchup():
    """Headers-first spends no more bytes per block than flood at sync.

    With the gap (24 blocks) larger than the orphan pool (8), flood's
    tip-first walk stashes bodies it must evict and re-download on later
    walks; headers-first learns the whole missing range from one GETHEADERS
    round-trip and fetches each body once, bottom-up, so nothing is ever
    orphaned.
    """
    start = time.perf_counter()
    flood_bytes, flood_synced = _run_catchup("flood")
    headers_bytes, headers_synced = _run_catchup("headers")
    elapsed = time.perf_counter() - start

    # Both runs synced the same chain, so bytes-per-block is comparable.
    assert flood_synced == headers_synced == CATCHUP_GAP + 6
    print(
        f"\ncatch-up bytes/block: flood={flood_bytes:.0f} headers={headers_bytes:.0f}"
    )
    assert headers_bytes <= flood_bytes, (
        f"headers-first sync regressed: {headers_bytes:.0f} bytes/block vs "
        f"flood's {flood_bytes:.0f}"
    )
    assert elapsed < WALL_CLOCK_BOUND_S


def _run_tx_waves(relay: str) -> object:
    """Drive four waves of transaction gossip through a degree-6 overlay."""
    config = NodeConfig(relay_strategy=relay)
    simulated = build_network(
        NetworkParameters(node_count=30, seed=12, node_config=config)
    )
    network = simulated.network
    ids = simulated.node_ids()
    for index, node_id in enumerate(ids):
        for chord in (1, 2, 3):  # ring + chords: every node has degree 6
            network.connect(node_id, ids[(index + chord) % len(ids)])
    fund_nodes(list(simulated.nodes.values()), outputs_per_node=4)

    now = 0.0
    txids = []
    for wave in range(4):
        for creator in (0, 7, 14, 21):
            tx = simulated.node(creator).create_transaction([(f"w{wave}-{creator}", 100)])
            txids.append(tx.txid)
        now += 20.0
        simulated.simulator.run(until=now)
    simulated.simulator.run(until=now + 40.0)

    # Liveness floor: narrowing must not strand transactions.
    for node in simulated.nodes.values():
        for txid in txids:
            assert txid in node.mempool or node.blockchain.contains_transaction(txid), (
                f"{relay}: tx {txid[:12]} stranded at node {node.node_id}"
            )
    return simulated


def test_adaptive_fanout_narrower_than_flood():
    """Adaptive relay converges to a narrower tx fan-out than its degree, and
    therefore spends fewer INV messages than flood on the same workload."""
    start = time.perf_counter()
    flood = _run_tx_waves("flood")
    adaptive = _run_tx_waves("adaptive")
    elapsed = time.perf_counter() - start

    narrowed = sum(n.stats.adaptive_fanout_narrowed for n in adaptive.nodes.values())
    assert narrowed > 0, "no node ever narrowed its fan-out"
    fanouts = [
        (node.relay.effective_fanout(), adaptive.network.topology.degree(node.node_id))
        for node in adaptive.nodes.values()
    ]
    assert any(width < degree for width, degree in fanouts)
    mean_fanout = sum(width for width, _ in fanouts) / len(fanouts)
    mean_degree = sum(degree for _, degree in fanouts) / len(fanouts)
    assert mean_fanout < mean_degree, (
        f"adaptive fan-out did not narrow: mean {mean_fanout:.2f} "
        f"vs degree {mean_degree:.2f}"
    )

    flood_invs = flood.network.messages_sent["inv"]
    adaptive_invs = adaptive.network.messages_sent["inv"]
    print(f"\ntx-wave INVs: flood={flood_invs} adaptive={adaptive_invs}")
    assert adaptive_invs < flood_invs, (
        f"adaptive spent {adaptive_invs} INVs vs flood's {flood_invs}"
    )
    assert elapsed < WALL_CLOCK_BOUND_S
