"""Ext-1 benchmark — fine-grained latency-threshold sweep (extends Fig. 4)."""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment

SWEEP_THRESHOLDS_MS = (15, 25, 50, 100, 200)


@pytest.fixture(scope="module")
def sweep_run(quick_config):
    return run_experiment(
        "threshold_sweep", quick_config, {"thresholds_ms": SWEEP_THRESHOLDS_MS}
    )


@pytest.fixture(scope="module")
def sweep_points(sweep_run):
    return sweep_run.payload


def test_bench_threshold_sweep(benchmark, quick_config, sweep_run):
    """Time a single-threshold evaluation and report the full sweep table."""

    def single_threshold():
        return run_experiment(
            "threshold_sweep",
            quick_config.with_overrides(seeds=quick_config.seeds[:1], runs=2),
            {"thresholds_ms": (25,)},
        )

    benchmark.pedantic(single_threshold, rounds=1, iterations=1)
    print()
    print(sweep_run.render())


def test_sweep_cluster_count_decreases_with_threshold(sweep_points):
    """Larger thresholds merge clusters: cluster count must not increase."""
    counts = [point.cluster_count for point in sweep_points]
    assert all(later <= earlier + 1e-9 for earlier, later in zip(counts, counts[1:]))


def test_sweep_cluster_size_increases_with_threshold(sweep_points):
    sizes = [point.mean_cluster_size for point in sweep_points]
    assert sizes[-1] >= sizes[0]


def test_sweep_delay_worsens_toward_large_thresholds(sweep_points):
    """The extremes tell the Fig. 4 story: 200 ms is clearly worse than 25 ms."""
    by_threshold = {round(p.threshold_s * 1000): p for p in sweep_points}
    assert by_threshold[200].variance_s2 > by_threshold[25].variance_s2
    assert by_threshold[200].mean_delay_s > by_threshold[25].mean_delay_s
