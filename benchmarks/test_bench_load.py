"""Traffic-plane regression guards: long-horizon load cell, memory + throughput.

Quick-lane (``-m "not slow"``): one sustained-load cell — open-loop Poisson
traffic, fee-priority mempools, byte-capped mining, streamed P² confirmation
quantiles — runs a ten-minute simulated horizon (~85 blocks) and must
stay under a *generous* traced-allocation ceiling and over a *generous*
events/second floor.  The memory bound is what the streaming design exists
for: confirmation latency is summarised in constant space and the backlog
curve is resampled to ~100 points, so the cell's footprint must not scale
with the number of transactions confirmed.  The bounds are an order of
magnitude away from current numbers, so they only trip on real regressions:
a per-sample latency series sneaking back in, the backlog sampler recording
every event, or the traffic/mempool hot path slowing by 10x.
"""

from __future__ import annotations

import time
import tracemalloc

from repro.experiments.config import ExperimentConfig
from repro.experiments.load_frontier import run_load_seed
from repro.experiments.parallel import LoadJob

NODE_COUNT = 20

#: Simulated seconds of sustained load: ~85 blocks at the 7 s interval.
HORIZON_S = 600.0

#: Offered load, deliberately above the ~1.7 tx/s block capacity so the cell
#: exercises full blocks and fee eviction, not just the happy path.
OFFERED_TPS = 2.5

#: Generous ceiling on the cell's peak traced allocations.
PEAK_TRACED_BOUND_MB = 80.0

#: Generous floor on simulation throughput.
EVENTS_PER_S_FLOOR = 2_000.0

CONFIG = ExperimentConfig(
    node_count=NODE_COUNT, runs=1, seeds=(3,), measuring_nodes=1
)


def _job() -> LoadJob:
    return LoadJob(
        protocol="bcbpt",
        offered_tps=OFFERED_TPS,
        profile_kind="constant",
        seed=3,
        horizon_s=HORIZON_S,
        block_interval_s=7.0,
        max_block_bytes=3_000,
        mempool_max_size=150,
        confirmation_depth=3,
        mean_fee_satoshi=250.0,
        funding_outputs=8,
        threshold_s=CONFIG.latency_threshold_s,
        config=CONFIG,
    )


def test_load_cell_streams_in_bounded_memory():
    assert not tracemalloc.is_tracing()
    tracemalloc.start()
    try:
        result = run_load_seed(_job())
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    peak_mb = peak / 1e6

    # The cell really sustained load: dozens of byte-capped blocks, a
    # working fee market, and a steady confirmation stream.
    assert result.blocks_mined >= 50
    assert result.full_blocks_mined > 0
    assert result.fee_evictions > 0
    assert result.txs_confirmed > 100
    # Streaming contract: the curve is resampled, never one point per event.
    assert len(result.backlog_curve) <= 101
    assert peak_mb < PEAK_TRACED_BOUND_MB, (
        f"load cell memory regressed: peak {peak_mb:.1f} MB traced over "
        f"{result.txs_confirmed} confirmations (bound {PEAK_TRACED_BOUND_MB} MB)"
    )


def test_load_cell_throughput_over_floor():
    start = time.perf_counter()
    result = run_load_seed(_job())
    elapsed = time.perf_counter() - start
    events_per_s = result.events / elapsed
    assert events_per_s > EVENTS_PER_S_FLOOR, (
        f"load cell throughput regressed: {events_per_s:.0f} events/s "
        f"({result.events} events in {elapsed:.1f}s wall, floor "
        f"{EVENTS_PER_S_FLOOR:.0f})"
    )
