"""Ext-3 benchmark — eclipse and partition attack susceptibility."""

from __future__ import annotations

import pytest
#: Full figure/extension regeneration; skipped in the quick CI lane.
pytestmark = pytest.mark.slow


from repro.experiments.api import run_experiment


@pytest.fixture(scope="module")
def attacks_run(quick_config):
    return run_experiment("attacks", quick_config, {"adversary_fraction": 0.15})


@pytest.fixture(scope="module")
def eclipse_results(attacks_run):
    return attacks_run.payload.eclipse


@pytest.fixture(scope="module")
def partition_results(attacks_run):
    return attacks_run.payload.partition


def test_bench_attacks(benchmark, quick_config, attacks_run):
    """Time one eclipse evaluation and report both attack analyses."""

    def bcbpt_only():
        return run_experiment(
            "attacks",
            quick_config.with_overrides(seeds=quick_config.seeds[:1]),
            {"adversary_fraction": 0.15, "protocols": ("bcbpt",)},
        )

    benchmark.pedantic(bcbpt_only, rounds=1, iterations=1)
    print()
    print(attacks_run.render())


def test_eclipse_proximity_clustering_raises_exposure(eclipse_results):
    """The paper's concern: an adversary that concentrates peers near the
    victim captures a larger share of its connections under proximity
    clustering than under random selection."""
    by_name = {r.protocol: r for r in eclipse_results}
    assert by_name["bcbpt"].eclipsed_fraction >= by_name["bitcoin"].eclipsed_fraction


def test_eclipse_fractions_in_range(eclipse_results):
    for result in eclipse_results:
        assert 0.0 <= result.eclipsed_fraction <= 1.0
        assert result.victim_connection_count > 0


def test_partition_clustered_topologies_have_thinner_boundaries(partition_results):
    """Isolating a cluster requires severing a smaller fraction of all links
    than isolating a comparable region of the random topology."""
    by_name = {r.protocol: r for r in partition_results}
    assert by_name["bcbpt"].boundary_fraction <= by_name["bitcoin"].boundary_fraction


def test_partition_reports_are_complete(partition_results):
    for result in partition_results:
        assert result.total_links > 0
        assert result.target_group_size > 0
        assert 0.0 < result.largest_component_fraction <= 1.0
